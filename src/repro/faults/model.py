"""Fault specifications for the instrumented matmul kernel (Algorithm 3).

The paper's fault-injection routine passes these parameters to the GPU
kernel (Section VI-C):

* the **processor-ID** of the targeted streaming multiprocessor;
* the **fault type** — whether an addition or multiplication is hit; the
  kernel performs additions at two points (inner-loop accumulation and the
  final merge) and multiplications in the inner loop only;
* the **module-ID** selecting which of the ``RX x RY`` adders/multipliers
  (i.e. which element of the thread's register tile) is affected;
* the **error vector** as an XOR bit mask;
* **kInjection**, the point in time (inner-loop iteration) of the strike.

:class:`FaultSpec` captures exactly those parameters; the injector resolves
the SM id to a concrete thread block at launch time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import FaultSpecError
from ..fp.errorvec import ErrorVector

__all__ = ["FaultSite", "FaultSpec"]


class FaultSite(enum.Enum):
    """Which floating-point operation of Algorithm 3 is struck."""

    #: Multiplication inside the inner loop (``rA * rB``).
    INNER_MUL = "inner_mul"
    #: Accumulation addition inside the inner loop (``accum += ...``).
    INNER_ADD = "inner_add"
    #: Final addition when the accumulators are merged into ``C``.
    MERGE_ADD = "merge_add"


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault injection.

    Attributes
    ----------
    sm_id:
        Targeted streaming multiprocessor (the injector picks one of the
        thread blocks scheduled there).
    site:
        The struck operation (:class:`FaultSite`).
    module_row / module_col:
        Which element of the thread's register tile is affected — in the
        simulator's block-granular model this selects the element offset
        within the ``BS x BS`` result block.
    error_vector:
        The XOR mask applied to the operation's output.
    k_injection:
        Inner-loop iteration (0-based index into the inner dimension) at
        which the strike occurs.  Ignored for :attr:`FaultSite.MERGE_ADD`,
        which happens once at the end.
    """

    sm_id: int
    site: FaultSite
    module_row: int
    module_col: int
    error_vector: ErrorVector
    k_injection: int = 0

    def __post_init__(self) -> None:
        if self.sm_id < 0:
            raise FaultSpecError(f"sm_id must be non-negative, got {self.sm_id}")
        if self.module_row < 0 or self.module_col < 0:
            raise FaultSpecError(
                f"module offsets must be non-negative, got "
                f"({self.module_row}, {self.module_col})"
            )
        if self.k_injection < 0:
            raise FaultSpecError(
                f"k_injection must be non-negative, got {self.k_injection}"
            )

    def describe(self) -> str:
        """One-line description for campaign logs."""
        return (
            f"{self.site.value} on SM{self.sm_id} "
            f"module ({self.module_row},{self.module_col}) "
            f"k={self.k_injection} "
            f"flips {self.error_vector.field}{list(self.error_vector.bit_indices)}"
        )
