"""Fault-injection campaigns (paper Section VI-C, Figure 4).

A campaign injects one fault per (simulated) matrix multiplication and asks
two questions per injection:

1. **Ground truth** — is the error the fault induced in the affected result
   element *critical*?  The baseline is the probabilistic model of that
   element's own rounding error: errors beyond ``omega * sigma`` are
   intolerable critical compute errors, smaller ones are tolerable/rounding
   (Section VI-C).
2. **Detection** — does each ABFT scheme's checksum comparison flag the
   fault?  A-ABFT and SEA-ABFT tolerances are evaluated side by side on the
   identical fault, exactly like the paper's comparison.

The runner exploits the locality of a single injected fault: the fault-free
full-checksum result, the per-comparison tolerance arrays and the signed
fault-free checksum differences are computed once per workload; each
injection then only replays the affected element's sequential accumulation
(with the strike applied) and updates the two checksum comparisons the
element participates in.  This is numerically identical to re-running the
whole pipeline per fault and makes thousand-fault campaigns tractable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..abft.classify import Classification, ErrorClassifier
from ..abft.encoding import (
    encode_partitioned_columns,
    encode_partitioned_rows,
)
from ..abft.providers import AABFTEpsilonProvider, SEAEpsilonProvider
from ..bounds.probabilistic import ProbabilisticBound
from ..bounds.sea import SEABound
from ..bounds.upper_bound import determine_upper_bound, top_p_of_columns, top_p_of_rows
from ..errors import ConfigurationError
from ..gpusim.device import DeviceSpec, K20C
from ..gpusim.kernel import Dim3, LaunchConfig
from ..gpusim.scheduler import BlockScheduler
# Module (not name) import: repro.kernels may still be mid-initialisation
# when this module loads through kernels.matmul -> faults.injector; the
# attribute is resolved lazily at call time instead.
from ..kernels import matmul as _matmul_kernels
from ..telemetry import MetricsRegistry, get_registry, span
from ..workloads.suites import WorkloadSuite
from .injector import FaultInjector
from .model import FaultSite, FaultSpec
from .sampling import ALL_SITES, FaultSampler

__all__ = [
    "CampaignConfig",
    "InjectionRecord",
    "PairInjectionRecord",
    "CampaignResult",
    "FaultCampaign",
]


@dataclass(frozen=True)
class CampaignConfig:
    """Declarative description of one injection campaign.

    ``backend`` routes the fault-free reference multiplication through a
    named compute backend (see :mod:`repro.backends`), so injection sites
    land inside backend-dispatched tile compute and detection coverage can
    be reported per backend.  ``gemm_tile`` overrides the tile edge; by
    default a non-numpy backend tiles at ``block_size``, mapping the
    paper's grid of result blocks onto backend tiles.
    """

    n: int
    suite: WorkloadSuite
    num_injections: int
    block_size: int = 64
    p: int = 2
    omega: float = 3.0
    sites: tuple[FaultSite, ...] = ALL_SITES
    fields: tuple[str, ...] = ("mantissa",)
    num_flips: int = 1
    fault_model: str = "flip"
    schemes: tuple[str, ...] = ("aabft", "sea")
    seed: int = 0
    device: DeviceSpec = K20C
    backend: str = "numpy"
    gemm_tile: int | None = None

    def __post_init__(self) -> None:
        if self.n % self.block_size:
            raise ConfigurationError(
                f"matrix size {self.n} must be a multiple of block size "
                f"{self.block_size}"
            )
        if self.num_injections < 1:
            raise ConfigurationError("num_injections must be >= 1")
        unknown = set(self.schemes) - {"aabft", "sea"}
        if unknown:
            raise ConfigurationError(f"unknown schemes: {sorted(unknown)}")
        if not isinstance(self.backend, str) or not self.backend:
            raise ConfigurationError(
                f"backend must be a non-empty string, got {self.backend!r}"
            )
        if self.gemm_tile is not None and self.gemm_tile < 1:
            raise ConfigurationError(
                f"gemm_tile must be >= 1, got {self.gemm_tile}"
            )


@dataclass
class InjectionRecord:
    """One completed injection."""

    spec: FaultSpec
    encoded_row: int
    encoded_col: int
    delta: float
    classification: Classification
    detected: dict[str, bool]

    @property
    def is_critical(self) -> bool:
        return self.classification.is_critical


@dataclass
class PairInjectionRecord:
    """Two faults applied to one multiplication (double-fault extension).

    Attributes
    ----------
    first / second:
        The per-fault records (classification uses each element's own
        model, as for single faults).
    detected:
        Per-scheme combined detection over all affected comparisons —
        including partial cancellation when both faults alias into the
        same checksum.
    same_block:
        Whether both faults landed in the same result block (the
        location-ambiguity case of the classic ABFT model).
    """

    first: InjectionRecord
    second: InjectionRecord
    detected: dict[str, bool]
    same_block: bool

    @property
    def any_critical(self) -> bool:
        return self.first.is_critical or self.second.is_critical


@dataclass
class CampaignResult:
    """All records of a campaign plus derived rates."""

    config: CampaignConfig
    records: list[InjectionRecord] = field(default_factory=list)
    false_positive_free: dict[str, bool] = field(default_factory=dict)

    def critical_records(
        self, site: FaultSite | None = None
    ) -> list[InjectionRecord]:
        """Records whose induced error is critical (the Figure 4 denominator)."""
        out = [r for r in self.records if r.is_critical]
        if site is not None:
            out = [r for r in out if r.spec.site is site]
        return out

    def detection_rate(self, scheme: str, site: FaultSite | None = None) -> float:
        """Fraction of *critical* errors the scheme detected (NaN if none)."""
        critical = self.critical_records(site)
        if not critical:
            return float("nan")
        detected = sum(1 for r in critical if r.detected[scheme])
        return detected / len(critical)

    def num_critical(self, site: FaultSite | None = None) -> int:
        return len(self.critical_records(site))

    def summary(self) -> str:
        """Per-site detection-rate table (A-ABFT vs baselines)."""
        lines = [
            f"campaign: n={self.config.n} suite={self.config.suite.name} "
            f"injections={len(self.records)} "
            f"critical={self.num_critical()}"
        ]
        header = f"{'site':<12}" + "".join(
            f"{s:>12}" for s in self.config.schemes
        )
        lines.append(header)
        for site in self.config.sites:
            row = f"{site.value:<12}"
            for scheme in self.config.schemes:
                rate = self.detection_rate(scheme, site)
                row += f"{rate * 100.0:>11.1f}%" if not math.isnan(rate) else f"{'n/a':>12}"
            lines.append(row)
        return "\n".join(lines)


def _detection_outcome(detected: bool, is_critical: bool) -> str:
    """Label one (scheme, injection) pair for the campaign counters.

    ``detected``/``missed`` grade the scheme on critical errors (the
    Figure 4 numerator/denominator); flagging a non-critical error is a
    ``false_positive`` (the tolerance was too tight for that element),
    letting one pass silently is ``tolerated``.
    """
    if is_critical:
        return "detected" if detected else "missed"
    return "false_positive" if detected else "tolerated"


class FaultCampaign:
    """Prepares one workload and runs a batch of fault injections against it.

    Parameters
    ----------
    config:
        The declarative campaign description.
    registry:
        Telemetry target for the per-injection counters
        (``abft_campaign_*``, labelled by fault site, scheme and
        classification outcome — see ``docs/OBSERVABILITY.md``).  Defaults
        to the process-wide registry; pass
        :data:`repro.telemetry.NULL_REGISTRY` to run unmetered.
    """

    def __init__(
        self,
        config: CampaignConfig,
        *,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._prepared = False
        self.registry = registry if registry is not None else get_registry()
        self._m_injections = self.registry.counter(
            "abft_campaign_injections_total",
            "Faults injected, by struck operation site",
            ("site",),
        )
        self._m_outcomes = self.registry.counter(
            "abft_campaign_outcomes_total",
            "Per-scheme detection outcomes of injected faults",
            ("scheme", "site", "severity", "outcome", "backend"),
        )
        self._m_false_positive_baseline = self.registry.counter(
            "abft_campaign_baseline_false_positives_total",
            "Campaign workloads whose fault-free result failed a scheme's check",
            ("scheme",),
        )

    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Generate the workload, encode, multiply fault-free, and derive
        the per-comparison tolerance arrays of every evaluated scheme."""
        with span(
            "campaign.prepare",
            registry=self.registry,
            n=self.config.n,
            suite=self.config.suite.name,
        ):
            self._prepare()

    def _prepare(self) -> None:
        cfg = self.config
        pair = cfg.suite.generate(cfg.n, self._rng)
        bs = cfg.block_size

        self.a_cc, self.row_layout = encode_partitioned_columns(pair.a, bs)
        self.b_rc, self.col_layout = encode_partitioned_rows(pair.b, bs)
        self.c_fc = self._reference_multiply(self.a_cc, self.b_rc)
        self.inner_dim = pair.a.shape[1]

        self.row_tops = top_p_of_rows(self.a_cc, cfg.p)
        self.col_tops = top_p_of_columns(self.b_rc, cfg.p)

        providers: dict[str, object] = {}
        if "aabft" in cfg.schemes:
            providers["aabft"] = AABFTEpsilonProvider(
                scheme=ProbabilisticBound(omega=cfg.omega),
                row_tops=self.row_tops,
                col_tops=self.col_tops,
                row_layout=self.row_layout,
                col_layout=self.col_layout,
                inner_dim=self.inner_dim,
            )
        if "sea" in cfg.schemes:
            providers["sea"] = SEAEpsilonProvider(
                scheme=SEABound(),
                a_row_norms=np.linalg.norm(self.a_cc, axis=1),
                b_col_norms=np.linalg.norm(self.b_rc, axis=0),
                row_layout=self.row_layout,
                col_layout=self.col_layout,
                inner_dim=self.inner_dim,
            )

        # Signed fault-free checksum differences (reference - original).
        rows, cols = self.row_layout, self.col_layout
        self.col_diff = np.empty((rows.num_blocks, cols.encoded_rows))
        for blk in range(rows.num_blocks):
            data = self.c_fc[rows.data_indices(blk), :]
            self.col_diff[blk, :] = data.sum(axis=0) - self.c_fc[
                rows.checksum_index(blk), :
            ]
        self.row_diff = np.empty((rows.encoded_rows, cols.num_blocks))
        for blk in range(cols.num_blocks):
            data = self.c_fc[:, cols.data_indices(blk)]
            self.row_diff[:, blk] = data.sum(axis=1) - self.c_fc[
                :, cols.checksum_index(blk)
            ]

        # Tolerance arrays per scheme (fault-independent).
        self.col_eps: dict[str, np.ndarray] = {}
        self.row_eps: dict[str, np.ndarray] = {}
        for name, provider in providers.items():
            ce = np.empty_like(self.col_diff)
            for blk in range(rows.num_blocks):
                for col in range(cols.encoded_rows):
                    ce[blk, col] = provider.column_epsilon(blk, col)
            re = np.empty_like(self.row_diff)
            for blk in range(cols.num_blocks):
                for row in range(rows.encoded_rows):
                    re[row, blk] = provider.row_epsilon(row, blk)
            self.col_eps[name] = ce
            self.row_eps[name] = re

        # The fault-free result must pass every scheme's check — otherwise
        # the campaign would count false positives as detections.
        self.fault_free_pass = {
            name: bool(
                np.all(np.abs(self.col_diff) <= self.col_eps[name])
                and np.all(np.abs(self.row_diff) <= self.row_eps[name])
            )
            for name in providers
        }
        for name, passed in self.fault_free_pass.items():
            if not passed:
                self._m_false_positive_baseline.labels(scheme=name).inc()

        self.scheduler = BlockScheduler(cfg.device)
        self.launch = LaunchConfig(
            grid=Dim3(x=cols.num_blocks, y=rows.num_blocks),
            block=Dim3(x=cols.stride),
        )
        self.assignments = self.scheduler.assign(self.launch)
        self.classifier = ErrorClassifier(omega=cfg.omega)
        # Small launches occupy only the first few SMs (round-robin): the
        # strike must target an SM that actually executes a block.
        busy_sms = min(cfg.device.num_sms, rows.num_blocks * cols.num_blocks)
        self.sampler = FaultSampler(
            num_sms=busy_sms,
            inner_dim=self.inner_dim,
            block_rows=rows.stride,
            block_cols=cols.stride,
            sites=cfg.sites,
            fields=cfg.fields,
            num_flips=cfg.num_flips,
            fault_model=cfg.fault_model,
        )
        self._prepared = True

    def _reference_multiply(
        self, a_cc: np.ndarray, b_rc: np.ndarray
    ) -> np.ndarray:
        """Fault-free reference product, dispatched through the configured
        compute backend.

        A non-numpy backend tiles the result at ``gemm_tile`` (default:
        ``block_size``), so injection sites sit inside backend tile
        compute.  An unavailable backend falls back to numpy with the
        reason recorded on :attr:`backend_fallback` — never silently.
        """
        cfg = self.config
        self.backend_used = cfg.backend
        self.backend_fallback: str | None = None
        if cfg.backend == "numpy" and cfg.gemm_tile is None:
            return a_cc @ b_rc
        from ..backends import BackendUnavailable, default_registry

        tile = cfg.gemm_tile
        if tile is None and cfg.backend != "numpy":
            tile = cfg.block_size
        registry = default_registry()
        try:
            backend = registry.get(cfg.backend)
            available, reason = backend.availability()
            if not available:
                raise BackendUnavailable(reason or "unavailable")
            return backend.matmul(a_cc, b_rc, tile=tile)
        except Exception as exc:
            if cfg.backend == "numpy":
                raise
            self.backend_used = "numpy"
            self.backend_fallback = (
                f"campaign fell back from {cfg.backend!r} to 'numpy': "
                f"{exc}"
            )
            return registry.get("numpy").matmul(a_cc, b_rc, tile=tile)

    # ------------------------------------------------------------------
    def inject_one(self, spec: FaultSpec) -> InjectionRecord:
        """Apply one fault and evaluate classification + detection."""
        if not self._prepared:
            raise RuntimeError("call prepare() before injecting")
        rows, cols = self.row_layout, self.col_layout

        injector = FaultInjector(spec, self._rng)
        activation = injector.resolve(
            self.assignments, (rows.stride, cols.stride)
        )
        blk_linear = activation.linear_block_index
        blk_col, blk_row = (
            blk_linear % cols.num_blocks,
            blk_linear // cols.num_blocks,
        )
        r = blk_row * rows.stride + activation.element_row
        c = blk_col * cols.stride + activation.element_col

        a_vec = self.a_cc[r, :]
        b_vec = self.b_rc[:, c]
        baseline = _matmul_kernels.sequential_inner_product(a_vec, b_vec)
        faulty = _matmul_kernels.sequential_inner_product(a_vec, b_vec, injector)
        delta = faulty - baseline

        y_elem = determine_upper_bound(self.row_tops[r], self.col_tops[c])
        classification = self.classifier.classify(delta, self.inner_dim, y_elem)

        # The element participates in exactly one column check and one row
        # check; a data element shifts the reference sum, a checksum element
        # shifts the original checksum (opposite sign).
        col_sign = -1.0 if rows.is_checksum_index(r) else 1.0
        row_sign = -1.0 if cols.is_checksum_index(c) else 1.0
        new_col = self.col_diff[blk_row, c] + col_sign * delta
        new_row = self.row_diff[r, blk_col] + row_sign * delta

        detected = {}
        for name in self.col_eps:
            col_hit = not math.isfinite(new_col) or abs(new_col) > self.col_eps[
                name
            ][blk_row, c]
            row_hit = not math.isfinite(new_row) or abs(new_row) > self.row_eps[
                name
            ][r, blk_col]
            detected[name] = bool(col_hit or row_hit)

        record = InjectionRecord(
            spec=spec,
            encoded_row=r,
            encoded_col=c,
            delta=delta,
            classification=classification,
            detected=detected,
        )
        site = spec.site.value
        severity = classification.error_class.value
        self._m_injections.labels(site=site).inc()
        for scheme, hit in detected.items():
            self._m_outcomes.labels(
                scheme=scheme,
                site=site,
                severity=severity,
                outcome=_detection_outcome(hit, record.is_critical),
                backend=self.backend_used,
            ).inc()
        return record

    # ------------------------------------------------------------------
    def inject_pair(self, spec_a: FaultSpec, spec_b: FaultSpec) -> "PairInjectionRecord":
        """Apply two faults to one multiplication (beyond the paper's
        single-fault model) and evaluate combined detection.

        Each fault perturbs one element; the two deltas are folded into the
        checksum comparisons they touch — including the aliasing case where
        both land in the same comparison and partially cancel.
        """
        if not self._prepared:
            raise RuntimeError("call prepare() before injecting")
        rows, cols = self.row_layout, self.col_layout

        singles = [self.inject_one(spec_a), self.inject_one(spec_b)]

        # Fold both deltas into the affected comparisons.
        col_adjust: dict[tuple[int, int], float] = {}
        row_adjust: dict[tuple[int, int], float] = {}
        for rec in singles:
            r, c = rec.encoded_row, rec.encoded_col
            blk_row = r // rows.stride
            blk_col = c // cols.stride
            col_sign = -1.0 if rows.is_checksum_index(r) else 1.0
            row_sign = -1.0 if cols.is_checksum_index(c) else 1.0
            key_c = (blk_row, c)
            key_r = (r, blk_col)
            col_adjust[key_c] = col_adjust.get(key_c, 0.0) + col_sign * rec.delta
            row_adjust[key_r] = row_adjust.get(key_r, 0.0) + row_sign * rec.delta

        detected: dict[str, bool] = {}
        for name in self.col_eps:
            hit = False
            for (blk_row, c), adj in col_adjust.items():
                value = self.col_diff[blk_row, c] + adj
                if not math.isfinite(value) or abs(value) > self.col_eps[name][
                    blk_row, c
                ]:
                    hit = True
            for (r, blk_col), adj in row_adjust.items():
                value = self.row_diff[r, blk_col] + adj
                if not math.isfinite(value) or abs(value) > self.row_eps[name][
                    r, blk_col
                ]:
                    hit = True
            detected[name] = hit

        same_block = (
            singles[0].encoded_row // rows.stride
            == singles[1].encoded_row // rows.stride
        ) and (
            singles[0].encoded_col // cols.stride
            == singles[1].encoded_col // cols.stride
        )
        return PairInjectionRecord(
            first=singles[0],
            second=singles[1],
            detected=detected,
            same_block=same_block,
        )

    def run_pairs(self, num_pairs: int) -> list["PairInjectionRecord"]:
        """Inject ``num_pairs`` double faults (two per multiplication)."""
        if not self._prepared:
            self.prepare()
        records = []
        for _ in range(num_pairs):
            spec_a = self.sampler.sample(self._rng)
            spec_b = self.sampler.sample(self._rng)
            records.append(self.inject_pair(spec_a, spec_b))
        return records

    # ------------------------------------------------------------------
    def run(self) -> CampaignResult:
        """Prepare (if needed) and execute the configured injections."""
        if not self._prepared:
            self.prepare()
        result = CampaignResult(
            config=self.config, false_positive_free=dict(self.fault_free_pass)
        )
        with span(
            "campaign.run",
            registry=self.registry,
            injections=self.config.num_injections,
        ):
            for spec in self.sampler.sample_many(
                self.config.num_injections, self._rng
            ):
                result.records.append(self.inject_one(spec))
        return result
