"""Runtime fault injection into the simulated matmul kernel.

The :class:`FaultInjector` is handed to the instrumented matrix-
multiplication kernel (:mod:`repro.kernels.matmul`).  At launch time it
resolves the targeted SM to one of the thread blocks scheduled there (the
paper "randomly selects a streaming multiprocessor" — the block choice on
that SM is likewise random) and during execution answers the kernel's
hook queries: *does a fault strike this (block, element, k, site)?*

The injector also records exactly where the strike landed (activation
record), which the campaign uses for ground-truth classification.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FaultSpecError
from ..gpusim.scheduler import BlockAssignment
from .model import FaultSite, FaultSpec

__all__ = ["FaultActivation", "FaultInjector"]


@dataclass
class FaultActivation:
    """Where a planned fault actually landed."""

    spec: FaultSpec
    linear_block_index: int
    element_row: int  # row offset within the result block
    element_col: int  # column offset within the result block
    fired: bool = False
    original_value: float = 0.0
    faulty_value: float = 0.0


class FaultInjector:
    """Resolves a :class:`FaultSpec` against a launch and applies the flips.

    Parameters
    ----------
    spec:
        The planned fault.
    rng:
        Randomness for the block choice on the targeted SM.
    """

    def __init__(self, spec: FaultSpec, rng: np.random.Generator) -> None:
        self.spec = spec
        self._rng = rng
        self.activation: FaultActivation | None = None

    # ------------------------------------------------------------------
    # Launch-time resolution
    # ------------------------------------------------------------------
    def resolve(
        self, assignments: list[BlockAssignment], block_shape: tuple[int, int]
    ) -> FaultActivation:
        """Pick the concrete target block/element for this launch.

        Parameters
        ----------
        assignments:
            The launch's block-to-SM schedule.
        block_shape:
            ``(rows, cols)`` of one result block, bounding the module
            offsets.
        """
        candidates = [a for a in assignments if a.sm_id == self.spec.sm_id]
        if not candidates:
            raise FaultSpecError(
                f"no thread blocks scheduled on SM {self.spec.sm_id} "
                f"for this launch ({len(assignments)} blocks total)"
            )
        choice = candidates[int(self._rng.integers(len(candidates)))]
        rows, cols = block_shape
        self.activation = FaultActivation(
            spec=self.spec,
            linear_block_index=choice.linear_index,
            element_row=self.spec.module_row % rows,
            element_col=self.spec.module_col % cols,
        )
        return self.activation

    def resolve_direct(
        self, element_row: int = 0, element_col: int = 0
    ) -> FaultActivation:
        """Arm the injector without a launch schedule.

        Used when replaying a single element's sequential accumulation
        outside a kernel (tests, standalone analysis); the block index is a
        sentinel since no block targeting takes place.
        """
        self.activation = FaultActivation(
            spec=self.spec,
            linear_block_index=-1,
            element_row=element_row,
            element_col=element_col,
        )
        return self.activation

    # ------------------------------------------------------------------
    # Kernel-side hooks
    # ------------------------------------------------------------------
    def targets_block(self, linear_block_index: int) -> bool:
        """Whether this launch's strike lands in the given block."""
        return (
            self.activation is not None
            and self.activation.linear_block_index == linear_block_index
        )

    def strikes(self, site: FaultSite, k: int | None = None) -> bool:
        """Whether the strike hits ``site`` at inner-loop step ``k``.

        ``k`` is ignored for the merge addition (it happens once).
        """
        if self.activation is None or self.spec.site is not site:
            return False
        if site is FaultSite.MERGE_ADD:
            return True
        return k == self.spec.k_injection

    def apply(self, value: float) -> float:
        """XOR the error vector into ``value`` and record the activation."""
        faulty = float(self.spec.error_vector.apply(value))
        if self.activation is not None:
            self.activation.fired = True
            self.activation.original_value = float(value)
            self.activation.faulty_value = faulty
        return faulty
