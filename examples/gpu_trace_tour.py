"""Tour of the GPU simulator: profiling, tracing, occupancy.

Runs the A-ABFT pipeline on the simulated K20c, prints the profiler's
per-kernel summary, shows the stream-overlap structure (the top-p reduction
hiding behind the matmul, paper Section V-A), writes a Chrome trace you can
open in chrome://tracing or Perfetto, and uses the occupancy calculator to
reason about kernel launch shapes.

Usage::

    python examples/gpu_trace_tour.py [output.trace.json]
"""

import sys

import numpy as np

from repro import AABFTPipeline, GpuSimulator
from repro.gpusim import occupancy, trace_from_streams


def main(trace_path: str = "aabft_pipeline.trace.json") -> None:
    rng = np.random.default_rng(9)
    n = 512
    a = rng.uniform(-1.0, 1.0, (n, n))
    b = rng.uniform(-1.0, 1.0, (n, n))

    sim = GpuSimulator()  # a Tesla K20c — the paper's device
    pipeline = AABFTPipeline(sim, block_size=64, p=2)
    result = pipeline.run(a, b)
    assert not result.detected

    print("=== profiler: per-kernel summary ===")
    print(sim.profiler.summary())

    print("\n=== stream overlap (Section V-A) ===")
    trace = trace_from_streams(sim.stream("compute"), sim.stream("reduce"))
    print(trace.summary())
    reduction = sum(e.duration_us for e in trace.events_on("reduce"))
    wall = trace.wall_us
    print(
        f"the top-p reduction ({reduction:.1f} us) hides entirely behind the "
        f"compute stream ({wall:.1f} us wall)"
    )

    with open(trace_path, "w") as fh:
        fh.write(trace.to_chrome_trace())
    print(f"\nChrome trace written to {trace_path} (open in chrome://tracing)")

    print("\n=== occupancy: why the efficiency constants differ ===")
    dgemm = occupancy(256, registers_per_thread=40, shared_bytes_per_block=8192)
    reduce_k = occupancy(32, registers_per_thread=24)
    print(
        f"DGEMM-shaped launch (256 thr, 8 KiB shared): "
        f"{dgemm.percent:.0f}% occupancy, limited by {dgemm.limiter}"
    )
    print(
        f"reduction-shaped launch (32 thr):            "
        f"{reduce_k.percent:.0f}% occupancy, limited by {reduce_k.limiter}"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "aabft_pipeline.trace.json")
