"""Tour of the extended protection schemes built on the A-ABFT machinery.

Beyond the paper's offline checked multiplication, the library provides
three schemes that reuse the same autonomous bound determination:

1. **weighted checksums** (Jou/Abraham): locate the erroneous row from
   column-side encoding alone via the weighted/plain discrepancy ratio;
2. **online ABFT** (after Ding et al.): check between inner-dimension
   panels — early detection, block-granular recovery in flight;
3. **checksum LU** (Huang/Abraham): protect a factorisation through the
   row-sum invariant, with the error scale tracked during elimination.

Usage::

    python examples/resilient_linear_algebra.py
"""

import numpy as np

from repro.abft.lu import protected_lu
from repro.abft.online import online_abft_matmul
from repro.abft.weighted import weighted_abft_matmul


def weighted_demo(rng) -> None:
    print("=== weighted checksums: row location without row encoding ===")
    a = rng.uniform(-1.0, 1.0, (96, 128))
    b = rng.uniform(-1.0, 1.0, (128, 96))
    result, checker = weighted_abft_matmul(a, b)
    print(f"fault-free: detected={result.detected}")

    corrupted = result.c_wc.copy()
    corrupted[37, 11] += 1e-3
    rechecked = checker.check(corrupted)
    outcome = rechecked.flagged_columns[0]
    print(
        f"corrupted (37, 11): flagged column {outcome.column}, "
        f"ratio located row {outcome.located_row} "
        f"(weighted/plain = {outcome.weighted_discrepancy / outcome.plain_discrepancy:.3f})"
    )
    fixed = rechecked.correct()
    print(f"corrected, matches numpy: {np.allclose(fixed, a @ b, rtol=1e-10)}\n")


def online_demo(rng) -> None:
    print("=== online ABFT: panel-wise checking with in-flight recovery ===")
    a = rng.uniform(-1.0, 1.0, (128, 256))
    b = rng.uniform(-1.0, 1.0, (256, 128))

    def strike(panel, c_fc):
        if panel == 1:
            c_fc[10, 20] += 5e-3  # silent corruption during panel 1

    result = online_abft_matmul(
        a, b, block_size=32, num_panels=4, corrupt_hook=strike
    )
    print(f"fault struck in panel 1, detected at panel {result.detection_panel}")
    print(
        f"recovered blocks: {result.events[result.detection_panel].recovered_blocks}"
    )
    print(f"final result correct: {np.allclose(result.c, a @ b, rtol=1e-10)}\n")


def lu_demo(rng) -> None:
    print("=== checksum LU: protecting a factorisation ===")
    n = 64
    a = rng.uniform(-1.0, 1.0, (n, n))
    a += np.diag(np.sign(np.diag(a)) * (np.abs(a).sum(axis=1) + 1.0))

    clean = protected_lu(a)
    print(
        f"fault-free: detected={clean.detected}, "
        f"max row discrepancy {clean.report.discrepancies.max():.2e} "
        f"vs tolerance {clean.report.epsilons.min():.2e}"
    )
    print(f"factors reconstruct A: {np.allclose(clean.l @ clean.u, a, rtol=1e-9)}")

    def strike(k, work):
        if k == n // 2:
            work[40, 50] += 1e-4

    faulty = protected_lu(a, fault_hook=strike)
    print(
        f"mid-factorisation strike: detected={faulty.detected}, "
        f"first failed row {faulty.report.failed_rows[:1]}"
    )


def main() -> None:
    rng = np.random.default_rng(42)
    weighted_demo(rng)
    online_demo(rng)
    lu_demo(rng)


if __name__ == "__main__":
    main()
