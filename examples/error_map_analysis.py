"""Rounding-error analysis maps — the paper's Section I by-product.

A-ABFT's runtime data (the top-p sets) doubles as a per-element rounding
error analysis of the whole multiplication: expectation, standard deviation
and confidence bound for every result element, before the product is even
computed.  This example builds the map for a matrix with one "hot" row,
shows the error landscape following the data, and validates the map against
exact measured errors.

Usage::

    python examples/error_map_analysis.py
"""

import numpy as np

from repro import rounding_error_map
from repro.exact.compensated import exact_dot_errors


def main() -> None:
    rng = np.random.default_rng(11)
    m, n, q = 24, 512, 24
    a = rng.uniform(-1.0, 1.0, (m, n))
    a[7, :] *= 1e3  # a hot row: one badly scaled input region
    b = rng.uniform(-1.0, 1.0, (n, q))

    emap = rounding_error_map(a, b, p=2, omega=3.0)
    print(emap.summary())
    print("\nworst elements (row, col, bound):")
    for row, col, eps in emap.worst_elements(5):
        print(f"  ({row:2d}, {col:2d})  {eps:.3e}")
    hot_rows = {row for row, _, _ in emap.worst_elements(5)}
    print(f"\nthe hot input row dominates the error landscape: {hot_rows == {7}}")

    # Validate: measured exact rounding errors must sit inside the map.
    c = a @ b
    violations = 0
    for j in range(q):
        rhs = np.ascontiguousarray(np.broadcast_to(b[:, j], (m, n)))
        errors = np.abs(exact_dot_errors(a, rhs, c[:, j]))
        violations += int(np.sum(errors > emap.epsilon[:, j]))
    print(f"elements whose exact error exceeds the 3-sigma map: {violations}/{m * q}")

    ratio = emap.sigma[7, :].mean() / emap.sigma[0, :].mean()
    print(f"predicted sigma ratio hot/normal row: {ratio:.0f}x (input scale 1000x)")

    # Section IV-D: FMA removes the multiplication rounding terms.  At this
    # n the summation variance dominates, so sigma barely changes, but the
    # expectation (bias) term vanishes entirely.
    fma = rounding_error_map(a, b, fma=True)
    print(
        "FMA pipeline: sigma ratio "
        f"{float(np.mean(emap.sigma / fma.sigma)):.6f}, "
        f"bias {emap.expectation.max():.2e} -> {fma.expectation.max():.2e}"
    )


if __name__ == "__main__":
    main()
