"""Regenerate the paper's Table I performance comparison.

Prints the modelled GFLOPS of fixed-bound ABFT, A-ABFT, SEA-ABFT and TMR
over the paper's matrix sizes next to the published values, then
cross-validates the analytic model against the functional simulator's
kernel counters at a small size.

Usage::

    python examples/performance_table.py
"""

import numpy as np

from repro import AABFTPipeline, GpuSimulator
from repro.experiments import overhead_summary, render_table1, run_table1
from repro.perfmodel import aabft_timing


def main() -> None:
    rows = run_table1()
    print(render_table1(rows))
    print()
    print(overhead_summary(rows))

    # Cross-validation: the analytic model's matmul flop count must equal
    # what the functional simulator actually executes.
    n = 256
    rng = np.random.default_rng(1)
    sim = GpuSimulator()
    pipeline = AABFTPipeline(sim, block_size=64, p=2)
    pipeline.run(rng.uniform(-1, 1, (n, n)), rng.uniform(-1, 1, (n, n)))
    simulated = {r.kernel_name: r.stats.flops for r in sim.profiler.records}
    modelled = {c.name: c.flops for c in aabft_timing(n).costs}
    print("\ncross-validation (analytic model vs functional simulator, n=256):")
    print(f"  matmul flops   model={modelled['matmul']:.3e} "
          f"sim={simulated['matmul_block']:.3e}")
    assert modelled["matmul"] == simulated["matmul_block"]
    print("  matmul operation counts agree exactly")


if __name__ == "__main__":
    main()
