"""Bound-quality study: how tight are the autonomous bounds? (Tables II-IV)

For each input class the script measures, against the exact (GMP-substitute)
reference arithmetic:

* the average exact rounding error of the checksum elements,
* the average A-ABFT tolerance (p = 2, omega = 3),
* the average SEA-ABFT tolerance,

and prints them next to the paper's published values, plus the tightness
ratios behind the "two orders of magnitude closer" claim.

Usage::

    python examples/bound_quality_study.py [sizes...]
"""

import sys

import numpy as np

from repro.analysis.stats import order_of_magnitude_gap
from repro.experiments import (
    TABLE2_UNIT,
    TABLE3_HUNDRED,
    TABLE4_DYNAMIC,
    measure_bound_quality,
    render_bound_table,
)
from repro.workloads import SUITE_DYNAMIC_K2, SUITE_HUNDRED, SUITE_UNIT


def main(sizes: tuple[int, ...] = (512, 1024)) -> None:
    rng = np.random.default_rng(2014)
    for suite, paper, label in (
        (SUITE_UNIT, TABLE2_UNIT, "Table II — inputs U(-1, 1)"),
        (SUITE_HUNDRED, TABLE3_HUNDRED, "Table III — inputs U(-100, 100)"),
        (SUITE_DYNAMIC_K2, TABLE4_DYNAMIC, "Table IV — Eq. 47 (alpha=0, kappa=2)"),
    ):
        rows = [
            measure_bound_quality(suite, n, rng, num_samples=96) for n in sizes
        ]
        print(render_bound_table(rows, paper, title=label))
        for row in rows:
            gap = order_of_magnitude_gap(row.sea_tightness, row.aabft_tightness)
            print(
                f"  n={row.n}: A-ABFT is {row.aabft_tightness:.0f}x the actual "
                f"error, SEA is {row.sea_tightness:.0f}x — A-ABFT is "
                f"{gap:.1f} orders of magnitude closer"
            )
        print()


if __name__ == "__main__":
    sizes = tuple(int(s) for s in sys.argv[1:]) or (512, 1024)
    main(sizes)
