"""ABFT-protected Jacobi solver — dependable scientific computing.

The paper's motivation is large-scale scientific computing on GPUs where
silent data corruption must not reach the final result.  This example runs
a Jacobi iteration for a 2-D Poisson problem whose matrix-vector products
are protected by A-ABFT, injects a fault mid-solve, and shows the solver
detecting and correcting it instead of silently converging to a wrong
answer.

It is also the engine API's home turf: the iteration matrix ``R`` is
constant, so it is encoded **once** via :meth:`MatmulEngine.encode` and the
resulting handle reused for every product — no per-iteration re-encoding,
and the execution plan (layouts, padding, bound scheme) is cached across
all 300 iterations.

Usage::

    python examples/iterative_solver.py
"""

import numpy as np

from repro import AbftConfig, MatmulEngine, correct_single_error
from repro.abft.checking import check_partitioned


def poisson_matrix(grid: int) -> np.ndarray:
    """Dense 2-D Poisson (5-point stencil) matrix on a grid x grid mesh."""
    n = grid * grid
    m = np.zeros((n, n))
    for i in range(grid):
        for j in range(grid):
            k = i * grid + j
            m[k, k] = 4.0
            for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                ni, nj = i + di, j + dj
                if 0 <= ni < grid and 0 <= nj < grid:
                    m[k, ni * grid + nj] = -1.0
    return m


def protected_matvec(engine, r_handle, x, corrupt=False):
    """One protected product R @ x, optionally with a simulated strike."""
    result = engine.matmul(r_handle, x)
    if corrupt:
        # Simulate a silent data corruption in the result of this product.
        c_fc = result.c_fc.copy()
        c_fc[3, 0] += 10.0
        report = check_partitioned(
            c_fc, result.row_layout, result.col_layout, result.provider
        )
        assert report.error_detected, "corruption slipped through!"
        fix = correct_single_error(
            c_fc, report, result.row_layout, result.col_layout, result.provider
        )
        print(
            f"    [ABFT] detected corruption at {fix.position}, "
            f"magnitude {fix.magnitude:+.2e}; corrected and continuing"
        )
        data = fix.corrected[
            np.ix_(
                result.row_layout.all_data_indices(),
                result.col_layout.all_data_indices(),
            )
        ]
        return np.ascontiguousarray(data[: x.shape[0], :1])
    return result.c


def main() -> None:
    grid = 8
    a = poisson_matrix(grid)
    n = a.shape[0]
    rng = np.random.default_rng(3)
    b = rng.uniform(-1.0, 1.0, (n, 1))

    # Jacobi: x_{k+1} = D^-1 (b - (A - D) x_k) = R x_k + c.
    d_inv = 1.0 / np.diag(a)
    r = -(a - np.diag(np.diag(a))) * d_inv[:, None]
    c = (b.ravel() * d_inv)[:, None]

    # The iteration matrix never changes: encode it once, reuse the handle.
    engine = MatmulEngine(AbftConfig(block_size=32))
    r_handle = engine.encode(r, side="a")

    x = np.zeros((n, 1))
    exact = np.linalg.solve(a, b)
    print(f"Jacobi on {grid}x{grid} Poisson ({n} unknowns), ABFT-protected:")
    for it in range(1, 301):
        strike = it == 40  # silent corruption mid-solve
        x = protected_matvec(engine, r_handle, x, corrupt=strike) + c
        if it % 60 == 0 or strike:
            err = float(np.linalg.norm(x - exact) / np.linalg.norm(exact))
            print(f"  iter {it:3d}: relative error {err:.3e}")
    final = float(np.linalg.norm(x - exact) / np.linalg.norm(exact))
    print(f"converged with relative error {final:.3e} despite the strike")
    assert final < 1e-6

    stats = engine.stats()
    print(
        f"engine: {stats.calls} protected products, "
        f"{stats.encode_reuses} handle reuses, "
        f"plan hit rate {stats.plan_hit_rate:.1%}"
    )


if __name__ == "__main__":
    main()
