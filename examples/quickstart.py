"""Quickstart: protected matrix multiplication with autonomous error bounds.

Runs the A-ABFT scheme on a random double-precision multiplication, shows
that fault-free runs pass the check (no calibration, no user-set
tolerances), then corrupts one result element and watches the scheme
detect, locate and correct it.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import aabft_matmul, correct_single_error
from repro.abft.checking import check_partitioned


def main() -> None:
    rng = np.random.default_rng(7)
    n = 512
    a = rng.uniform(-1.0, 1.0, (n, n))
    b = rng.uniform(-1.0, 1.0, (n, n))

    # --- protected multiplication: everything autonomous --------------
    result = aabft_matmul(a, b, block_size=64, p=2, omega=3.0)
    print(f"result matches numpy:   {np.allclose(result.c, a @ b)}")
    print(f"fault-free check flags: {result.detected} (expect False)")
    print(f"checks performed:       {result.report.num_checks}")

    # --- corrupt one element of the full-checksum result --------------
    corrupted = result.c_fc.copy()
    corrupted[100, 200] += 1e-6  # far above rounding noise
    report = check_partitioned(
        corrupted, result.row_layout, result.col_layout, result.provider
    )
    print(f"\ninjected corruption detected: {report.error_detected}")
    print(f"located at (encoded coords):  {report.located_errors}")

    # --- locate + correct ----------------------------------------------
    fix = correct_single_error(
        corrupted, report, result.row_layout, result.col_layout, result.provider
    )
    print(f"corrected magnitude:          {fix.magnitude:.3e}")
    restored = fix.corrected[100, 200]
    # Correction recovers the value up to the rounding noise of the
    # checksum sums (last few ulps).
    print(
        "element restored:             "
        f"{np.isclose(restored, result.c_fc[100, 200], rtol=1e-12)}"
    )


if __name__ == "__main__":
    main()
