"""Fault-injection campaign: A-ABFT vs. SEA-ABFT detection (paper Fig. 4).

Injects single-bit mantissa flips into the simulated GPU's floating-point
operations (inner-loop multiply, inner-loop add, final merge add) during
matrix multiplications over the paper's three input classes, and reports
the percentage of *critical* errors each scheme detects.

Usage::

    python examples/fault_injection_campaign.py [n] [injections]
"""

import sys

from repro import CampaignConfig, FaultCampaign
from repro.analysis.metrics import detection_metrics
from repro.workloads import SUITE_DYNAMIC_K65536, SUITE_HUNDRED, SUITE_UNIT


def main(n: int = 256, injections: int = 300) -> None:
    for suite in (SUITE_UNIT, SUITE_HUNDRED, SUITE_DYNAMIC_K65536):
        config = CampaignConfig(
            n=n,
            suite=suite,
            num_injections=injections,
            block_size=64,
            p=2,
            omega=3.0,
            seed=2014,
        )
        result = FaultCampaign(config).run()
        assert all(result.false_positive_free.values()), "false positives!"
        print(f"\n=== {suite.description} ===")
        print(result.summary())
        for scheme in ("aabft", "sea"):
            m = detection_metrics(result, scheme)
            print(
                f"{scheme:>6}: {m.detected_critical}/{m.critical} critical "
                f"detected ({100 * m.detection_rate:.1f}%), "
                f"{m.false_negatives} missed"
            )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    injections = int(sys.argv[2]) if len(sys.argv) > 2 else 300
    main(n, injections)
