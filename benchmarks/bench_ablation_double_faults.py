"""Ablation — double faults per multiplication (beyond the paper's model).

ABFT's single-error model guarantees detection *and* location for one
fault; with two faults detection usually still works (four checksum
comparisons are perturbed) but location can become ambiguous and, in the
aliasing corner case, two deltas in the same comparison can partially
cancel.  This bench measures those rates.
"""

from repro.analysis.tables import render_table
from repro.faults.campaign import CampaignConfig, FaultCampaign
from repro.workloads import SUITE_UNIT

from conftest import FULL, INJECTIONS_PER_CELL

N = 512 if FULL else 256


class TestDoubleFaults:
    def test_double_fault_detection(self, benchmark, record_table):
        def run():
            campaign = FaultCampaign(
                CampaignConfig(
                    n=N,
                    suite=SUITE_UNIT,
                    num_injections=1,
                    block_size=64,
                    seed=71,
                )
            )
            campaign.prepare()
            pairs = campaign.run_pairs(INJECTIONS_PER_CELL)
            return pairs

        pairs = benchmark.pedantic(run, rounds=1, iterations=1)
        critical = [p for p in pairs if p.any_critical]
        detected = sum(1 for p in critical if p.detected["aabft"])
        same_block = sum(1 for p in pairs if p.same_block)
        both_critical = [
            p for p in pairs if p.first.is_critical and p.second.is_critical
        ]
        detected_both = sum(1 for p in both_critical if p.detected["aabft"])

        record_table(
            render_table(
                ["metric", "value"],
                [
                    ["pairs injected", len(pairs)],
                    ["pairs with >=1 critical fault", len(critical)],
                    ["  ... detected (A-ABFT)", f"{detected} ({100*detected/max(len(critical),1):.1f}%)"],
                    ["pairs with 2 critical faults", len(both_critical)],
                    ["  ... detected (A-ABFT)", f"{detected_both}"],
                    ["pairs landing in one block (ambiguous location)", same_block],
                ],
                title=f"Double faults per multiplication (n={N}, U(-1,1))",
            )
        )
        # Two faults give the check more chances: the detection rate over
        # >=1-critical pairs must not fall below the single-fault regime.
        if critical:
            assert detected / len(critical) > 0.75
        # Pairs where both faults are critical are detected essentially
        # always (cancellation across distinct comparisons is impossible;
        # within one comparison it requires near-equal opposite deltas).
        if both_critical:
            assert detected_both / len(both_critical) > 0.9
