"""Extension — online (panel-wise) ABFT: detection latency vs. overhead.

The online variant checks after every inner-dimension panel instead of once
at the end: detection latency drops from "the whole multiplication" to one
panel, at the cost of repeated checking work.  This bench sweeps the panel
count and reports both sides of the trade.
"""

import numpy as np

from repro.abft.online import online_abft_matmul
from repro.analysis.tables import render_table

from conftest import FULL

N = 1024 if FULL else 512
PANEL_COUNTS = (1, 2, 4, 8)


class TestOnlineAbft:
    def test_latency_vs_panels(self, benchmark, record_table):
        rng = np.random.default_rng(29)
        a = rng.uniform(-1.0, 1.0, (N, N))
        b = rng.uniform(-1.0, 1.0, (N, N))
        strike_panel_fraction = 0.55  # strike just past the midpoint

        def run():
            out = []
            for panels in PANEL_COUNTS:
                strike_at = min(int(strike_panel_fraction * panels), panels - 1)

                def hook(panel, c_fc, strike_at=strike_at):
                    if panel == strike_at:
                        c_fc[3, 7] += 1e-2

                result = online_abft_matmul(
                    a, b, block_size=64, num_panels=panels, corrupt_hook=hook
                )
                out.append((panels, strike_at, result))
            return out

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        body = []
        for panels, strike_at, result in results:
            latency = result.events[result.detection_panel].processed_inner
            body.append(
                [
                    panels,
                    strike_at,
                    result.detection_panel,
                    f"{latency}/{N}",
                    len(result.events),  # checks performed
                    "yes" if np.allclose(result.c, a @ b, rtol=1e-10) else "NO",
                ]
            )
        record_table(
            render_table(
                [
                    "panels",
                    "struck at",
                    "detected at",
                    "inner work at detection",
                    "checks",
                    "healed",
                ],
                body,
                title=f"Online ABFT: detection latency vs panel count (n={N})",
            )
        )
        for panels, strike_at, result in results:
            assert result.detection_panel == strike_at
            assert np.allclose(result.c, a @ b, rtol=1e-10)
        # More panels -> strictly less inner-dimension work at detection
        # for the same (fractional) strike point.
        latencies = [
            r.events[r.detection_panel].processed_inner for _, _, r in results
        ]
        assert latencies[-1] < latencies[0]
