"""Throughput of the plan-caching engine vs the seed per-call path.

The engine redesign's acceptance benchmark: 100 repeated same-shape
256 x 256 A-ABFT multiplications through a warm :class:`repro.engine.
MatmulEngine` must run at least 2x the throughput of the pre-engine
per-call implementation (re-derived here verbatim from the repository's
primitives: pad -> encode -> top-p -> matmul -> scalar partitioned check
-> extract).  Also measures the batched and encoded-handle paths and
verifies all of them bitwise against the baseline, plus single-fault
detection through the handle path.

Run directly::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py

Results are written to ``BENCH_engine.json`` at the repository root.

CI runs the smoke variant, which never rewrites the committed baseline —
it loads it and fails when the warm per-call time regresses past the
tolerance (generous by default so shared-runner noise doesn't flap)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py \
        --quick --compare --tolerance 0.30
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.abft.checking import check_partitioned
from repro.abft.encoding import (
    encode_partitioned_columns,
    encode_partitioned_rows,
    pad_to_block_multiple,
    strip_encoding,
)
from repro.abft.providers import AABFTEpsilonProvider
from repro.abft.result import AbftResult
from repro.bounds.probabilistic import ProbabilisticBound
from repro.bounds.upper_bound import top_p_of_columns, top_p_of_rows
from repro.engine import AbftConfig, ExecutionPolicy, MatmulEngine
from repro.fp.constants import format_for_dtype

SIZE = 256
REPEATS = 100
QUICK_REPEATS = 20
BLOCK_SIZE = 64
P = 2
DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def seed_per_call_matmul(a: np.ndarray, b: np.ndarray) -> AbftResult:
    """The pre-engine ``aabft_matmul``: all setup and checking per call.

    Mirrors the seed implementation exactly — plans, layouts and bound
    scheme rebuilt every call, tolerances evaluated one scalar comparison
    at a time through ``check_partitioned``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    a_pad, (rows_added, _) = pad_to_block_multiple(a, BLOCK_SIZE, axis=0)
    b_pad, (_, cols_added) = pad_to_block_multiple(b, BLOCK_SIZE, axis=1)
    a_cc, row_layout = encode_partitioned_columns(a_pad, BLOCK_SIZE)
    b_rc, col_layout = encode_partitioned_rows(b_pad, BLOCK_SIZE)
    row_tops = top_p_of_rows(a_cc, P)
    col_tops = top_p_of_columns(b_rc, P)
    c_fc = a_cc @ b_rc
    provider = AABFTEpsilonProvider(
        scheme=ProbabilisticBound(
            omega=3.0, fma=False, fmt=format_for_dtype(c_fc.dtype)
        ),
        row_tops=row_tops,
        col_tops=col_tops,
        row_layout=row_layout,
        col_layout=col_layout,
        inner_dim=a_pad.shape[1],
    )
    report = check_partitioned(c_fc, row_layout, col_layout, provider)
    c = strip_encoding(c_fc, row_layout, col_layout, rows_added, cols_added)
    return AbftResult(
        c=c,
        c_fc=c_fc,
        report=report,
        row_layout=row_layout,
        col_layout=col_layout,
        provider=provider,
    )


def timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Warm-engine throughput benchmark (engine vs seed path)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"reduced scale: {QUICK_REPEATS} repeats instead of {REPEATS}",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="smoke mode: compare against the committed baseline instead of "
        "rewriting it; exits 1 on a warm-path regression past --tolerance",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline JSON for --compare (default: repo BENCH_engine.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed warm per-call slowdown vs the baseline (default 0.30)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    repeats = QUICK_REPEATS if args.quick else REPEATS

    rng = np.random.default_rng(20140623)  # DSN 2014
    a = rng.uniform(-1, 1, (SIZE, SIZE))
    bs = [rng.uniform(-1, 1, (SIZE, SIZE)) for _ in range(repeats)]

    config = AbftConfig(block_size=BLOCK_SIZE, p=P)
    engine = MatmulEngine(config)
    engine.matmul(a, bs[0])  # warm the plan cache

    print(f"{repeats} x A-ABFT matmul, {SIZE}x{SIZE}, BS={BLOCK_SIZE}, p={P}")

    baseline_seconds, baseline_results = timed(
        lambda: [seed_per_call_matmul(a, b) for b in bs]
    )
    print(f"  seed per-call path : {baseline_seconds:8.2f} s "
          f"({baseline_seconds / repeats * 1e3:7.1f} ms/call)")

    engine_seconds, engine_results = timed(
        lambda: [engine.matmul(a, b) for b in bs]
    )
    print(f"  warm engine        : {engine_seconds:8.2f} s "
          f"({engine_seconds / repeats * 1e3:7.1f} ms/call)")

    pairs = [(a, b) for b in bs]
    batched_seconds, batched_results = timed(
        lambda: engine.execute_batch(
            pairs, policy=ExecutionPolicy(mode="serial")
        )
    )
    print(f"  serial batch       : {batched_seconds:8.2f} s "
          f"({batched_seconds / repeats * 1e3:7.1f} ms/call)")

    pipelined_seconds, pipelined_results = timed(
        lambda: engine.execute_batch(
            pairs, policy=ExecutionPolicy(mode="pipelined")
        )
    )
    print(f"  pipelined batch    : {pipelined_seconds:8.2f} s "
          f"({pipelined_seconds / repeats * 1e3:7.1f} ms/call)")

    handle = engine.encode(a, side="a")
    handle_seconds, handle_results = timed(
        lambda: [engine.matmul(handle, b) for b in bs]
    )
    print(f"  encoded handle     : {handle_seconds:8.2f} s "
          f"({handle_seconds / repeats * 1e3:7.1f} ms/call)")

    # --- correctness: every path bitwise equal to the seed path ---------
    for name, results in (
        ("engine", engine_results),
        ("batched", batched_results),
        ("pipelined", pipelined_results),
        ("handle", handle_results),
    ):
        for ref, res in zip(baseline_results, results):
            assert np.array_equal(ref.c, res.c), f"{name} path diverged"
            assert ref.detected == res.detected == False  # noqa: E712
    print("  all paths bitwise identical to the seed per-call path")

    # --- a single injected fault must still be detected ------------------
    faulty = engine.matmul(handle, bs[0])
    faulty.c_fc[17, 23] += 2.0 ** -10
    report = check_partitioned(
        faulty.c_fc, faulty.row_layout, faulty.col_layout, faulty.provider
    )
    assert report.error_detected, "injected fault went undetected"
    assert (17, 23) in report.located_errors
    print("  injected single fault detected and located")

    speedup = baseline_seconds / engine_seconds

    if args.compare:
        if not args.baseline.exists():
            print(f"FAIL: baseline {args.baseline} not found", file=sys.stderr)
            return 1
        committed = json.loads(args.baseline.read_text())
        committed_per_call = committed["engine_seconds"] / committed["repeats"]
        measured_per_call = engine_seconds / repeats
        limit = committed_per_call * (1.0 + args.tolerance)
        print(
            f"  warm path vs baseline: {measured_per_call * 1e3:.2f} ms/call "
            f"vs {committed_per_call * 1e3:.2f} ms/call "
            f"(limit {limit * 1e3:.2f} ms/call = +{args.tolerance:.0%})"
        )
        if measured_per_call > limit:
            print(
                "FAIL: warm-path throughput regressed past the tolerance",
                file=sys.stderr,
            )
            return 1
        print("  warm-path throughput within tolerance")
        return 0

    payload = {
        "size": SIZE,
        "repeats": repeats,
        "block_size": BLOCK_SIZE,
        "p": P,
        "baseline_seconds": baseline_seconds,
        "engine_seconds": engine_seconds,
        "batched_seconds": batched_seconds,
        "pipelined_seconds": pipelined_seconds,
        "handle_seconds": handle_seconds,
        "speedup_engine": speedup,
        "speedup_batched": baseline_seconds / batched_seconds,
        "speedup_pipelined": baseline_seconds / pipelined_seconds,
        "speedup_handle": baseline_seconds / handle_seconds,
        "engine_stats": engine.stats().as_dict(),
        "bitwise_identical": True,
        "fault_detected": True,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  speedup (warm engine vs seed): {speedup:.1f}x -> {out.name}")

    if speedup < 2.0:
        print("FAIL: speedup below the 2x acceptance threshold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
