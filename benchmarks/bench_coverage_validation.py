"""Validation — empirical coverage of the confidence intervals.

Not a paper table, but the quantitative backing for two of its claims: the
3-sigma setting produces no false positives (coverage must be 100 %), and
the partial-sum variance model is conservative (the measured worst
error/sigma ratio shows the actual slack on every input class).
"""

import numpy as np

from repro.experiments.coverage import measure_coverage, render_coverage
from repro.workloads import SUITE_DYNAMIC_K2, SUITE_HUNDRED, SUITE_UNIT

from conftest import BOUND_SAMPLES, BOUND_SIZES


class TestCoverageValidation:
    def test_interval_coverage(self, benchmark, record_table):
        def run():
            rng = np.random.default_rng(2014)
            rows = []
            for suite in (SUITE_UNIT, SUITE_HUNDRED, SUITE_DYNAMIC_K2):
                for n in BOUND_SIZES:
                    rows.append(
                        measure_coverage(suite, n, rng, num_samples=BOUND_SAMPLES)
                    )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        record_table(render_coverage(rows))
        for row in rows:
            assert row.covered_at(3.0) == 1.0
            assert row.effective_omega < 1.0
