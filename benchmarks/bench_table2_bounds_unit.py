"""Table II — bound quality for inputs U(-1, 1).

Regenerates the paper's Table II: average exact rounding error of the
checksum elements vs. the average A-ABFT and SEA-ABFT tolerances, for the
uniform unit input class.  Published values are printed alongside.
"""

import numpy as np

from repro.experiments.bound_quality import measure_bound_quality, render_bound_table
from repro.experiments.paper_data import TABLE2_UNIT
from repro.workloads import SUITE_UNIT

from conftest import BOUND_SAMPLES, BOUND_SIZES


class TestTable2:
    def test_regenerate_table2(self, benchmark, record_table):
        rng = np.random.default_rng(2014)

        def run():
            return [
                measure_bound_quality(
                    SUITE_UNIT, n, rng, num_samples=BOUND_SAMPLES
                )
                for n in BOUND_SIZES
            ]

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        record_table(
            render_bound_table(rows, TABLE2_UNIT, "Table II — inputs U(-1, 1)")
        )
        for row in rows:
            # The defining orderings of the table.
            assert row.avg_rounding_error < row.avg_aabft_bound < row.avg_sea_bound
            # Within half an order of magnitude of the published values.
            paper = TABLE2_UNIT.get(row.n)
            if paper:
                assert 0.2 < row.avg_aabft_bound / paper[1] < 5.0
                assert 0.2 < row.avg_sea_bound / paper[2] < 5.0
