"""Shared configuration for the benchmark harness.

Every paper table/figure has one benchmark module.  The default sizes keep
a full ``pytest benchmarks/ --benchmark-only`` run in the minutes range on
a laptop; set ``AABFT_FULL=1`` to sweep the paper's complete 512..8192 grid
(hours: exact arithmetic + functional simulation on a CPU).

Each benchmark prints the regenerated table rows (run with ``-s`` to see
them inline) and stores them in ``benchmark.extra_info["table"]`` so they
are preserved in ``--benchmark-json`` output.
"""

from __future__ import annotations

import os

import pytest

FULL = os.environ.get("AABFT_FULL", "0") not in ("", "0", "false", "no")

#: Sizes for bound-quality and detection sweeps.
BOUND_SIZES = (512, 1024, 2048, 3072, 4096, 5120, 6144, 7168, 8192) if FULL else (
    512,
    1024,
)
DETECT_SIZES = (512, 1024, 2048, 4096, 8192) if FULL else (256, 512)
BOUND_SAMPLES = 128 if FULL else 48
INJECTIONS_PER_CELL = 300 if FULL else 90


@pytest.fixture
def record_table(benchmark):
    """Attach a rendered table to the benchmark record and echo it."""

    def _record(text: str) -> None:
        benchmark.extra_info["table"] = text
        print("\n" + text)

    return _record
