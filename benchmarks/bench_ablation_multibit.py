"""Ablation — multi-bit flips (paper Section VI-C).

The paper injected 1-, 3- and 5-bit flips and found "the trend in the
results was consistent across all experiments".  This bench reruns the
mantissa campaign at each flip count and checks that consistency.
"""

from repro.analysis.tables import render_table
from repro.faults.campaign import CampaignConfig, FaultCampaign
from repro.workloads import SUITE_UNIT

from conftest import FULL, INJECTIONS_PER_CELL

FLIP_COUNTS = (1, 3, 5)
N = 512 if FULL else 256


class TestMultibitAblation:
    def test_detection_vs_flip_count(self, benchmark, record_table):
        def run():
            out = []
            for flips in FLIP_COUNTS:
                config = CampaignConfig(
                    n=N,
                    suite=SUITE_UNIT,
                    num_injections=INJECTIONS_PER_CELL,
                    block_size=64,
                    num_flips=flips,
                    seed=53,
                )
                out.append((flips, FaultCampaign(config).run()))
            return out

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        body = [
            [
                flips,
                result.num_critical(),
                f"{100 * result.detection_rate('aabft'):.1f}%",
                f"{100 * result.detection_rate('sea'):.1f}%",
            ]
            for flips, result in results
        ]
        record_table(
            render_table(
                ["flips", "#critical", "A-ABFT", "SEA-ABFT"],
                body,
                title=f"Ablation: multi-bit mantissa flips (n={N}, U(-1,1))",
            )
        )
        for _, result in results:
            # The paper's consistency claim: the A-ABFT >= SEA ordering and
            # high detection hold at every flip count.
            assert result.detection_rate("aabft") >= result.detection_rate("sea") - 0.02
            assert result.detection_rate("aabft") > 0.75
