"""Ablation — the confidence scale omega (paper Section VI-B).

The paper evaluates with the conservative 3-sigma setting and remarks that
1-sigma / 2-sigma bounds "are typically within the same order of magnitude".
This bench verifies that and measures the detection-rate / false-positive
trade-off across omega.
"""

from repro.analysis.tables import render_table
from repro.faults.campaign import CampaignConfig, FaultCampaign
from repro.workloads import SUITE_UNIT

from conftest import FULL, INJECTIONS_PER_CELL

OMEGAS = (1.0, 2.0, 3.0, 5.0)
N = 512 if FULL else 256


class TestOmegaAblation:
    def test_detection_vs_omega(self, benchmark, record_table):
        def run():
            out = []
            for omega in OMEGAS:
                config = CampaignConfig(
                    n=N,
                    suite=SUITE_UNIT,
                    num_injections=INJECTIONS_PER_CELL,
                    block_size=64,
                    omega=omega,
                    seed=31,
                )
                out.append((omega, FaultCampaign(config).run()))
            return out

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        body = []
        for omega, result in results:
            body.append(
                [
                    f"{omega:.0f}",
                    "yes" if result.false_positive_free["aabft"] else "NO",
                    f"{100 * result.detection_rate('aabft'):.1f}%",
                    result.num_critical(),
                ]
            )
        record_table(
            render_table(
                ["omega", "FP-free", "A-ABFT detection", "#critical"],
                body,
                title=f"Ablation: omega sweep (n={N}, U(-1,1))",
            )
        )
        # 3-sigma is the paper's setting: fault-free runs must pass there.
        by_omega = dict(results)
        assert by_omega[3.0].false_positive_free["aabft"]
        assert by_omega[5.0].false_positive_free["aabft"]

    def test_bounds_within_one_order_across_omega(self, benchmark):
        """Section VI-B: sigma..3-sigma bounds stay within one order."""
        from repro.bounds.base import BoundContext
        from repro.bounds.probabilistic import ProbabilisticBound

        def run():
            ctx = BoundContext(n=N, m=64, upper_bound=10.0)
            return {
                w: ProbabilisticBound(omega=w).epsilon(ctx) for w in (1.0, 2.0, 3.0)
            }

        eps = benchmark(run)
        assert eps[3.0] / eps[1.0] < 10.0
