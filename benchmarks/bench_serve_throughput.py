"""Throughput of the micro-batching serving layer vs a serial loop.

The serving layer's acceptance benchmark: 256 shared-weight requests
(one 256 x 256 ``A`` against 256 x 16 activations) pushed through a
:class:`repro.serve.MatmulServer` at concurrency 32 must run at least 2x
the throughput of a serial one-request-at-a-time
:meth:`~repro.engine.MatmulEngine.matmul` loop over the same workload.
The served measurement runs once per execution policy (fused and
pipelined); the stage-pipelined row is primary and must additionally
beat the barriered fused row by 1.3x.  Every served result is verified
bitwise against its serial counterpart, and the run must coalesce real
micro-batches (max batch > 1).

Run directly::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py

Results are written to ``BENCH_serve.json`` at the repository root.

CI runs the smoke variant, which never rewrites the committed baseline —
it loads it and fails when the served per-request time regresses past
the tolerance (wide, because the quick smoke amortises warmup over 4x
fewer requests than the committed full-run baseline)::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py \
        --quick --compare --tolerance 1.50
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.serve.bench import (
    PIPELINE_SPEEDUP_FLOOR,
    QUICK_REQUESTS,
    REQUESTS,
    SPEEDUP_FLOOR,
    compare_to_baseline,
    run_serve_benchmark,
)

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Serving-layer throughput benchmark (micro-batching vs serial)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"reduced scale: {QUICK_REQUESTS} requests instead of {REQUESTS}",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="smoke mode: compare against the committed baseline instead of "
        "rewriting it; exits 1 on a regression past --tolerance",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline JSON for --compare (default: repo BENCH_serve.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.50,
        help="allowed served per-request slowdown vs the baseline (default 0.50)",
    )
    parser.add_argument(
        "--policy",
        choices=("fused", "pipelined", "serial", "auto"),
        default=None,
        help="measure only this execution policy (default: fused AND "
        "pipelined, pipelined primary)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    requests = QUICK_REQUESTS if args.quick else REQUESTS

    kwargs = {} if args.policy is None else {"policies": (args.policy,)}
    payload = run_serve_benchmark(requests=requests, **kwargs)
    per_serial = payload["serial_seconds"] / requests * 1e3
    print(
        f"{requests} x shared-weight A-ABFT requests, "
        f"{payload['m']}x{payload['n']}x{payload['q']}, "
        f"concurrency {payload['concurrency']}"
    )
    print(f"  serial loop : {payload['serial_seconds']:8.2f} s "
          f"({per_serial:7.2f} ms/req)")
    for mode, row in payload["policies"].items():
        per_served = row["serve_seconds"] / requests * 1e3
        print(f"  served [{mode:>9s}]: {row['serve_seconds']:8.2f} s "
              f"({per_served:7.2f} ms/req, max batch "
              f"{row['max_batch_size']}, p50 {row['latency_p50_ms']:.1f} ms, "
              f"p99 {row['latency_p99_ms']:.1f} ms)")
    if "bubble_fraction" in payload:
        print(f"  pipeline bubble fraction: {payload['bubble_fraction']:.3f}")
    print("  all served results bitwise identical to the serial loop")

    if args.compare:
        if not args.baseline.exists():
            print(f"FAIL: baseline {args.baseline} not found", file=sys.stderr)
            return 1
        passed, detail = compare_to_baseline(
            payload, json.loads(args.baseline.read_text()), args.tolerance
        )
        print(f"  {detail}")
        if not passed:
            print(
                "FAIL: served throughput regressed past the tolerance",
                file=sys.stderr,
            )
            return 1
        print("  served throughput within tolerance")
        return 0

    out = DEFAULT_BASELINE
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  speedup (served vs serial): {payload['speedup']:.2f}x -> {out.name}")

    if payload["speedup"] < SPEEDUP_FLOOR:
        print(
            f"FAIL: speedup below the {SPEEDUP_FLOOR}x acceptance threshold",
            file=sys.stderr,
        )
        return 1
    if "pipelined_speedup_vs_fused" in payload:
        ratio = payload["pipelined_speedup_vs_fused"]
        print(f"  speedup (pipelined vs fused): {ratio:.2f}x")
        if ratio < PIPELINE_SPEEDUP_FLOOR:
            print(
                f"FAIL: pipelined below the {PIPELINE_SPEEDUP_FLOOR}x "
                f"floor over the fused baseline",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
