"""Throughput of the micro-batching serving layer vs a serial loop.

The serving layer's acceptance benchmark: 256 shared-weight requests
(one 256 x 256 ``A`` against 256 x 16 activations) pushed through a
:class:`repro.serve.MatmulServer` at concurrency 32 must run at least 2x
the throughput of a serial one-request-at-a-time
:meth:`~repro.engine.MatmulEngine.matmul` loop over the same workload.
The served measurement runs once per execution policy (fused and
pipelined); the stage-pipelined row is primary and must additionally
beat the barriered fused row by 1.3x on multi-CPU hosts (on a single
CPU stage overlap cannot reliably materialise, so parity is recorded
with a note instead of failed).  Every served result is verified
bitwise against its serial counterpart, and the run must coalesce real
micro-batches (max batch > 1).

Full baseline runs additionally measure the **cluster row**: the same
workload at concurrency 256 through a sharded multi-process
``ClusterFrontend`` next to a single-process pipelined server, with the
throughput ratio recorded in the baseline.  On multi-CPU hosts the
cluster must win (ratio >= 1); a single-CPU host cannot materialise
process parallelism, so parity there is recorded, not failed.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py

Results are written to ``BENCH_serve.json`` at the repository root.

CI runs the smoke variant, which never rewrites the committed baseline —
it loads it and fails when the served per-request time regresses past
the tolerance (wide, because the quick smoke amortises warmup over 4x
fewer requests than the committed full-run baseline)::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py \
        --quick --compare --tolerance 1.50
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.serve.bench import (
    CLUSTER_CONCURRENCY,
    CLUSTER_WORKERS,
    PIPELINE_SPEEDUP_FLOOR,
    QUICK_REQUESTS,
    REQUESTS,
    SPEEDUP_FLOOR,
    compare_to_baseline,
    run_serve_benchmark,
)

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Serving-layer throughput benchmark (micro-batching vs serial)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"reduced scale: {QUICK_REQUESTS} requests instead of {REQUESTS}",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="smoke mode: compare against the committed baseline instead of "
        "rewriting it; exits 1 on a regression past --tolerance",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline JSON for --compare (default: repo BENCH_serve.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.50,
        help="allowed served per-request slowdown vs the baseline (default 0.50)",
    )
    parser.add_argument(
        "--policy",
        choices=("fused", "pipelined", "serial", "auto"),
        default=None,
        help="measure only this execution policy (default: fused AND "
        "pipelined, pipelined primary)",
    )
    parser.add_argument(
        "--cluster-workers",
        type=int,
        default=None,
        metavar="N",
        help="also measure an N-worker multi-process cluster against a "
        f"single-process pipelined server at concurrency "
        f"{CLUSTER_CONCURRENCY} (default: {CLUSTER_WORKERS} on full "
        "baseline runs, skipped in --compare smoke mode; 0 disables)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    requests = QUICK_REQUESTS if args.quick else REQUESTS

    kwargs = {} if args.policy is None else {"policies": (args.policy,)}
    cluster_workers = args.cluster_workers
    if cluster_workers is None:
        # Full baseline runs measure the cluster row by default; the CI
        # smoke (--compare) skips the process spawns unless asked.
        cluster_workers = 0 if args.compare else CLUSTER_WORKERS
    if cluster_workers:
        kwargs["cluster_workers"] = cluster_workers
    payload = run_serve_benchmark(requests=requests, **kwargs)
    per_serial = payload["serial_seconds"] / requests * 1e3
    print(
        f"{requests} x shared-weight A-ABFT requests, "
        f"{payload['m']}x{payload['n']}x{payload['q']}, "
        f"concurrency {payload['concurrency']}"
    )
    print(f"  serial loop : {payload['serial_seconds']:8.2f} s "
          f"({per_serial:7.2f} ms/req)")
    for mode, row in payload["policies"].items():
        per_served = row["serve_seconds"] / requests * 1e3
        print(f"  served [{mode:>9s}]: {row['serve_seconds']:8.2f} s "
              f"({per_served:7.2f} ms/req, max batch "
              f"{row['max_batch_size']}, p50 {row['latency_p50_ms']:.1f} ms, "
              f"p99 {row['latency_p99_ms']:.1f} ms)")
    if "bubble_fraction" in payload:
        print(f"  pipeline bubble fraction: {payload['bubble_fraction']:.3f}")
    if "cluster" in payload:
        row = payload["cluster"]
        print(
            f"  cluster x{row['workers']} @ concurrency {row['concurrency']}: "
            f"{row['cluster_throughput_rps']:.0f} req/s vs single-process "
            f"pipelined {row['pipelined_throughput_rps']:.0f} req/s "
            f"({row['speedup_vs_pipelined']:.2f}x, p99 "
            f"{row['latency_p99_ms']:.1f} ms, {row['requeued']} requeued, "
            f"{row['host_cpus']} host cpu(s))"
        )
    print("  all served results bitwise identical to the serial loop")

    if args.compare:
        if not args.baseline.exists():
            print(f"FAIL: baseline {args.baseline} not found", file=sys.stderr)
            return 1
        passed, detail = compare_to_baseline(
            payload, json.loads(args.baseline.read_text()), args.tolerance
        )
        print(f"  {detail}")
        if not passed:
            print(
                "FAIL: served throughput regressed past the tolerance",
                file=sys.stderr,
            )
            return 1
        print("  served throughput within tolerance")
        return 0

    out = DEFAULT_BASELINE
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  speedup (served vs serial): {payload['speedup']:.2f}x -> {out.name}")

    if payload["speedup"] < SPEEDUP_FLOOR:
        print(
            f"FAIL: speedup below the {SPEEDUP_FLOOR}x acceptance threshold",
            file=sys.stderr,
        )
        return 1
    if "cluster" in payload:
        ratio = payload["cluster"]["speedup_vs_pipelined"]
        print(f"  speedup (cluster vs single-process pipelined): {ratio:.2f}x")
        if ratio < 1.0:
            msg = (
                f"cluster throughput ratio {ratio:.2f}x below 1.0 vs the "
                "single-process pipelined server at the same concurrency"
            )
            if (payload["cluster"]["host_cpus"] or 1) > 1:
                print(f"FAIL: {msg}", file=sys.stderr)
                return 1
            # One CPU = no process parallelism to win with; record the
            # honest parity instead of failing the whole baseline run.
            print(f"  note: {msg} — expected on a single-CPU host")
    if "pipelined_speedup_vs_fused" in payload:
        ratio = payload["pipelined_speedup_vs_fused"]
        print(f"  speedup (pipelined vs fused): {ratio:.2f}x")
        if ratio < PIPELINE_SPEEDUP_FLOOR:
            msg = (
                f"pipelined below the {PIPELINE_SPEEDUP_FLOOR}x floor "
                f"over the fused baseline"
            )
            if (payload.get("host_cpus") or 1) > 1:
                print(f"FAIL: {msg}", file=sys.stderr)
                return 1
            # Stage overlap needs a second core to reliably materialise;
            # on one CPU the two policies land near parity, so record the
            # honest ratio instead of failing the baseline run.
            print(f"  note: {msg} — expected on a single-CPU host")
    return 0


if __name__ == "__main__":
    sys.exit(main())
