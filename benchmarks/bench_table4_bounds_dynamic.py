"""Table IV — bound quality for high value-range-dynamic inputs (Eq. 47).

The Eq. 47 generator (alpha = 0, kappa = 2, Gaussian factors — see
DESIGN.md on the interpretation) produces matrices whose element magnitudes
grow with sqrt(n); both the rounding errors and the bounds grow one power
of n faster than in Table II, which the assertions check.
"""

import numpy as np

from repro.experiments.bound_quality import measure_bound_quality, render_bound_table
from repro.experiments.paper_data import TABLE4_DYNAMIC
from repro.workloads import SUITE_DYNAMIC_K2

from conftest import BOUND_SAMPLES, BOUND_SIZES


class TestTable4:
    def test_regenerate_table4(self, benchmark, record_table):
        rng = np.random.default_rng(2016)

        def run():
            return [
                measure_bound_quality(
                    SUITE_DYNAMIC_K2, n, rng, num_samples=BOUND_SAMPLES
                )
                for n in BOUND_SIZES
            ]

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        record_table(
            render_bound_table(
                rows, TABLE4_DYNAMIC, "Table IV — Eq. 47 (alpha=0, kappa=2)"
            )
        )
        for row in rows:
            assert row.avg_rounding_error < row.avg_aabft_bound < row.avg_sea_bound
            paper = TABLE4_DYNAMIC.get(row.n)
            if paper:
                assert 0.1 < row.avg_aabft_bound / paper[1] < 10.0
        if len(rows) >= 2 and rows[1].n == 2 * rows[0].n:
            # Faster-than-Table-II growth: ~4x per size doubling.
            growth = rows[1].avg_rounding_error / rows[0].avg_rounding_error
            assert growth > 2.5
