"""Ablation — the number p of tracked largest absolute values (Sec. IV-E).

The paper: "The quality of the error bound can be improved by increasing
the number p of considered largest absolute values.  However, this also
increases the computational overhead."  This bench sweeps p and reports
both effects: bound tightness (vs. the exact rounding error) and the
modelled preprocessing overhead.
"""

import numpy as np

from repro.analysis.tables import format_sci, render_table
from repro.experiments.bound_quality import measure_bound_quality
from repro.perfmodel.schemes import aabft_timing
from repro.gpusim.device import K20C
from repro.workloads import SUITE_UNIT

from conftest import BOUND_SAMPLES, FULL

P_VALUES = (1, 2, 4, 8, 16)
N = 1024 if FULL else 512


class TestPAblation:
    def test_bound_quality_vs_p(self, benchmark, record_table):
        def run():
            rows = []
            for p in P_VALUES:
                rng = np.random.default_rng(99)  # same workload per p
                rows.append(
                    (p, measure_bound_quality(
                        SUITE_UNIT, N, rng, p=p, num_samples=BOUND_SAMPLES
                    ))
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        body = []
        for p, row in rows:
            overhead = aabft_timing(N, p=p).seconds(K20C)
            body.append(
                [
                    p,
                    format_sci(row.avg_rounding_error),
                    format_sci(row.avg_aabft_bound),
                    f"{row.aabft_tightness:.0f}x",
                    f"{overhead * 1e3:.2f}",
                ]
            )
        record_table(
            render_table(
                ["p", "avg rnd err", "avg A-ABFT", "tightness", "model ms"],
                body,
                title=f"Ablation: bound quality vs p (n={N}, U(-1,1))",
            )
        )
        # Larger p never loosens the bound (three-case rule monotonicity)...
        bounds = [row.avg_aabft_bound for _, row in rows]
        assert all(b2 <= b1 * 1.001 for b1, b2 in zip(bounds, bounds[1:]))
        # ...and the modelled preprocessing cost grows with p.
        costs = [aabft_timing(N, p=p).seconds(K20C) for p in P_VALUES]
        assert costs[-1] > costs[0]
