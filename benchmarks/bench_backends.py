"""Backend autotuner benchmark: the winner is never slower than numpy.

The backend subsystem's acceptance benchmark.  For a spread of GEMM
shapes it runs the :class:`repro.backends.Autotuner` against a fresh
cache and asserts the selected ``(backend, tile)`` never loses to the
plain numpy reference past the hysteresis margin — by construction the
tuner only leaves ``numpy`` when a candidate *beats* it, so a slower
winner is a bug, not noise.  It also exercises the never-silent fallback
path (a pinned-but-unavailable backend must be recorded on the result
and counted in telemetry) and verifies cross-backend bitwise identity
at the tuned tile.

Run directly::

    PYTHONPATH=src python benchmarks/bench_backends.py

Results are written to ``BENCH_backends.json`` at the repository root.

CI runs the smoke variant, which never rewrites the committed baseline —
it re-checks the invariants (never-slower, fallback visible, bitwise
identity) at reduced scale::

    PYTHONPATH=src python benchmarks/bench_backends.py --quick --compare
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.backends import Autotuner, AutotuneCache, default_registry
from repro.engine import AbftConfig, MatmulEngine
from repro.telemetry import MetricsRegistry

SHAPES = [(128, 128, 128), (256, 256, 128), (256, 192, 256)]
QUICK_SHAPES = [(128, 128, 64)]
BLOCK_SIZE = 64
P = 2
DEFAULT_BASELINE = (
    Path(__file__).resolve().parent.parent / "BENCH_backends.json"
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Backend autotuner benchmark (never-slower + fallback)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced scale: one shape, one timing repeat",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="smoke mode: re-check the invariants without rewriting the "
        "committed BENCH_backends.json; exits 1 when one fails",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline JSON for --compare (default: repo BENCH_backends.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        help="allowed winner slowdown vs its numpy baseline (default 0: the "
        "hysteresis already guarantees never-slower deterministically)",
    )
    return parser


def tune_shapes(shapes, repeats, registry, tmp_cache):
    """Autotune each shape against a fresh cache; return per-shape rows."""
    config = AbftConfig(block_size=BLOCK_SIZE, p=P)
    tuner = Autotuner(
        AutotuneCache(tmp_cache), repeats=repeats, metrics_registry=registry
    )
    rows = []
    for m, n, q in shapes:
        choice = tuner.tune(m, n, q, config=config)
        rows.append(
            {
                "shape": f"{m}x{n}x{q}",
                "backend": choice.backend,
                "tile": choice.tile,
                "per_call_s": choice.per_call_s,
                "numpy_per_call_s": choice.baseline_per_call_s,
                "speedup": choice.speedup,
            }
        )
        print(
            f"  {m}x{n}x{q}: winner backend={choice.backend!r} "
            f"tile={choice.tile} "
            f"{choice.per_call_s * 1e3:7.2f} ms/call "
            f"(numpy {choice.baseline_per_call_s * 1e3:.2f} ms/call, "
            f"{choice.speedup:.2f}x)"
        )
    return rows


def exercise_fallback(registry: MetricsRegistry) -> dict:
    """Pin an unavailable backend; the fallback must be loud everywhere."""
    engine = MatmulEngine(
        AbftConfig(block_size=BLOCK_SIZE, p=P), registry=registry
    )
    rng = np.random.default_rng(20140623)
    a = rng.uniform(-1, 1, (128, 128))
    b = rng.uniform(-1, 1, (128, 128))
    cupy_available, _ = default_registry().get("cupy").availability()
    if cupy_available:  # pragma: no cover - CUDA host
        print("  cupy is available here; fallback exercised via a fake pin")
        pinned = "definitely-not-a-backend"
    else:
        pinned = "cupy"
    result = engine.matmul(a, b, config=AbftConfig(backend=pinned))
    assert result.backend == "numpy", "fallback must land on numpy"
    assert result.backend_fallback, "fallback must be recorded on the result"
    fallbacks = registry.counter(
        "abft_backend_fallbacks_total", labelnames=("backend", "reason")
    )
    counted = fallbacks.labels(backend=pinned, reason="selection").get()
    assert counted >= 1.0, "fallback must be visible in telemetry"
    # The fallback product is still the canonical numpy bytes.
    reference = MatmulEngine(AbftConfig(block_size=BLOCK_SIZE, p=P)).matmul(
        a, b
    )
    assert result.c_fc.tobytes() == reference.c_fc.tobytes()
    print(
        f"  fallback exercised: pinned {pinned!r} -> "
        f"{result.backend!r} ({result.backend_fallback})"
    )
    return {
        "fallback_exercised": True,
        "pinned": pinned,
        "served_by": result.backend,
        "recorded": result.backend_fallback,
        "counted_in_telemetry": counted,
    }


def check_bitwise_identity(rows) -> None:
    """numpy and blocked agree bitwise at every tuned tile."""
    rng = np.random.default_rng(7)
    engine = MatmulEngine(AbftConfig(block_size=BLOCK_SIZE, p=P))
    for row in rows:
        m, n, q = (int(part) for part in row["shape"].split("x"))
        a = rng.uniform(-1, 1, (m, n))
        b = rng.uniform(-1, 1, (n, q))
        tile = row["tile"]
        r_np = engine.matmul(
            a, b, config=AbftConfig(backend="numpy", gemm_tile=tile)
        )
        r_bl = engine.matmul(
            a, b, config=AbftConfig(backend="blocked", gemm_tile=tile)
        )
        assert r_np.c_fc.tobytes() == r_bl.c_fc.tobytes(), (
            f"bitwise divergence at {row['shape']} tile={tile}"
        )
    print("  numpy and blocked bitwise identical at every tuned tile")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    shapes = QUICK_SHAPES if args.quick else SHAPES
    repeats = 1 if args.quick else 3

    import tempfile

    registry = MetricsRegistry()
    print(f"autotuning {len(shapes)} shape(s), BS={BLOCK_SIZE}, p={P}")
    with tempfile.TemporaryDirectory() as tmp:
        rows = tune_shapes(
            shapes, repeats, registry, Path(tmp) / "autotune.json"
        )

    slower = [
        row
        for row in rows
        if row["per_call_s"]
        > row["numpy_per_call_s"] * (1.0 + args.tolerance)
    ]
    if slower:
        for row in slower:
            print(
                f"FAIL: winner slower than numpy at {row['shape']}: "
                f"{row['per_call_s']:.6f}s vs {row['numpy_per_call_s']:.6f}s",
                file=sys.stderr,
            )
        return 1
    print("  autotuner never selected a slower-than-numpy winner")

    fallback = exercise_fallback(registry)
    check_bitwise_identity(rows)

    if args.compare:
        if not args.baseline.exists():
            print(f"FAIL: baseline {args.baseline} not found", file=sys.stderr)
            return 1
        committed = json.loads(args.baseline.read_text())
        if not committed.get("fallback", {}).get("fallback_exercised"):
            print(
                "FAIL: committed baseline never exercised the fallback",
                file=sys.stderr,
            )
            return 1
        print("  committed baseline invariants intact")
        return 0

    payload = {
        "block_size": BLOCK_SIZE,
        "p": P,
        "repeats": repeats,
        "shapes": rows,
        "never_slower_than_numpy": True,
        "bitwise_identical": True,
        "fallback": fallback,
        "available_backends": [
            row["name"]
            for row in default_registry().describe()
            if row["available"]
        ],
    }
    out = DEFAULT_BASELINE
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  -> {out.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
