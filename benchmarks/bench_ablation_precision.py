"""Ablation — single vs. double precision (binary32 vs binary64).

GPUs of the paper's era had 2-8x higher single-precision throughput; the
A-ABFT model is parametric in the significand width ``t``, so the whole
scheme runs in float32 with ``t = 24``.  This bench compares the two
precisions: bound magnitudes scale by ~2^(53-24), the relative tightness
(bound / actual error) stays in the same regime, and fault-free runs pass
in both.
"""

import numpy as np

from repro.abft.multiply import aabft_matmul
from repro.analysis.tables import format_sci, render_table
from repro.exact.compensated import exact_dot_errors

from conftest import FULL

N = 512 if FULL else 256


def _measure(dtype):
    rng = np.random.default_rng(19)
    a = rng.uniform(-1.0, 1.0, (N, N)).astype(dtype)
    b = rng.uniform(-1.0, 1.0, (N, N)).astype(dtype)
    result = aabft_matmul(a, b, block_size=64)
    assert not result.detected

    # Measured rounding errors of a sample of checksum elements.
    layout = result.row_layout
    a64 = a.astype(np.float64)
    b64 = b.astype(np.float64)
    cs_row = layout.checksum_index(0)
    lhs = np.broadcast_to(a64[: layout.block_size].sum(axis=0), (32, N)).copy()
    rhs = b64[:, :32].T.copy()
    computed = result.c_fc[cs_row, :32].astype(np.float64)
    errors = np.abs(exact_dot_errors(lhs, rhs, computed))
    eps = np.array([result.provider.column_epsilon(0, j) for j in range(32)])
    return float(errors.mean()), float(eps.mean())


class TestPrecisionAblation:
    def test_float32_vs_float64(self, benchmark, record_table):
        def run():
            return {"float64": _measure(np.float64), "float32": _measure(np.float32)}

        measured = benchmark.pedantic(run, rounds=1, iterations=1)
        body = [
            [
                name,
                format_sci(err),
                format_sci(eps),
                f"{eps / err:.0f}x",
            ]
            for name, (err, eps) in measured.items()
        ]
        record_table(
            render_table(
                ["precision", "avg rnd err", "avg A-ABFT bound", "tightness"],
                body,
                title=f"Ablation: precision (n={N}, U(-1,1))",
            )
        )
        err64, eps64 = measured["float64"]
        err32, eps32 = measured["float32"]
        # Bounds scale with 2^-t: ~2^29 between the formats.
        assert 1e7 < eps32 / eps64 < 1e10
        # Actual errors scale similarly; relative tightness stays in the
        # same regime (the model is precision-consistent).
        assert 0.02 < (eps32 / err32) / (eps64 / err64) < 50.0
