"""Model-workload benchmark: planner-mixed vs all-full vs unchecked ABFT.

The acceptance benchmark for per-layer protection planning: a 6-layer MLP
is executed through :class:`repro.models.ModelRunner` three times — under
the intensity-mixed :class:`repro.models.ProtectionPlanner` plan, under an
all-full-A-ABFT plan, and fully unchecked — and the committed
``BENCH_models.json`` records that the mixed plan is measurably faster
than all-full while still meeting its end-to-end coverage target.

Run directly (rewrites the committed baseline)::

    PYTHONPATH=src python benchmarks/bench_models.py

CI runs the smoke variant, which never rewrites the baseline — it loads
it and fails when the mixed-plan pass time regresses past the tolerance,
or when the mixed plan is no longer faster than all-full::

    PYTHONPATH=src python benchmarks/bench_models.py \
        --quick --compare --tolerance 0.50
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.models.bench import (
    QUICK_REPEATS,
    REPEATS,
    compare_to_baseline,
    run_model_benchmark,
)

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_models.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Model-workload benchmark (mixed vs all-full vs unchecked)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"reduced scale: {QUICK_REPEATS} repeats instead of {REPEATS}",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="smoke mode: compare against the committed baseline instead of "
        "rewriting it; exits 1 on regression past --tolerance",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline JSON for --compare (default: repo BENCH_models.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.50,
        help="allowed mixed-plan pass slowdown vs the baseline (default 0.50)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    repeats = QUICK_REPEATS if args.quick else REPEATS

    payload = run_model_benchmark(repeats=repeats)
    model = payload["model"]
    print(
        f"{repeats} x forward pass, {model['name']} "
        f"({len(model['layers'])} layers, batch={model['batch']})"
    )
    print(f"  mixed plan    : {payload['mixed_seconds'] * 1e3:8.2f} ms/pass "
          f"(coverage {payload['coverage']['mixed']:.2%})")
    print(f"  all-full plan : {payload['full_seconds'] * 1e3:8.2f} ms/pass")
    print(f"  unchecked     : {payload['unchecked_seconds'] * 1e3:8.2f} ms/pass")
    print(f"  mixed/full latency ratio: {payload['mixed_vs_full_ratio']:.2f}")

    if args.compare:
        if not args.baseline.exists():
            print(f"FAIL: baseline {args.baseline} not found", file=sys.stderr)
            return 1
        baseline = json.loads(args.baseline.read_text())
        passed, detail = compare_to_baseline(payload, baseline, args.tolerance)
        print(f"  {detail}")
        if not passed:
            print("FAIL: model benchmark regressed", file=sys.stderr)
            return 1
        print("  model benchmark within tolerance")
        return 0

    if payload["mixed_vs_full_ratio"] >= 1.0:
        print(
            "FAIL: mixed plan not faster than all-full protection",
            file=sys.stderr,
        )
        return 1
    if payload["coverage"]["mixed"] < payload["coverage"]["target"]:
        print("FAIL: mixed plan misses its coverage target", file=sys.stderr)
        return 1

    DEFAULT_BASELINE.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"  mixed plan {1 - payload['mixed_vs_full_ratio']:.0%} faster than "
        f"all-full -> {DEFAULT_BASELINE.name}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
