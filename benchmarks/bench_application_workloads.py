"""Validation — realistic scientific operators (beyond the paper's inputs).

The paper evaluates on synthetic input classes; a downstream user feeds the
scheme PDE stencils, graph Laplacians and covariance matrices.  This bench
runs the full protect/detect cycle on those operators: zero false
positives, and critical-fault detection comparable to the synthetic suites.
"""

from repro.analysis.tables import render_table
from repro.faults.campaign import CampaignConfig, FaultCampaign
from repro.workloads.applications import APPLICATION_SUITES

from conftest import FULL, INJECTIONS_PER_CELL

N = 512 if FULL else 256


class TestApplicationWorkloads:
    def test_detection_on_realistic_operators(self, benchmark, record_table):
        def run():
            out = []
            for suite in APPLICATION_SUITES:
                config = CampaignConfig(
                    n=N,
                    suite=suite,
                    num_injections=INJECTIONS_PER_CELL,
                    block_size=64,
                    seed=61,
                )
                out.append((suite, FaultCampaign(config).run()))
            return out

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        body = []
        for suite, result in results:
            body.append(
                [
                    suite.name,
                    "yes" if result.false_positive_free["aabft"] else "NO",
                    result.num_critical(),
                    f"{100 * result.detection_rate('aabft'):.1f}%",
                    f"{100 * result.detection_rate('sea'):.1f}%",
                ]
            )
        record_table(
            render_table(
                ["workload", "FP-free", "#critical", "A-ABFT", "SEA-ABFT"],
                body,
                title=f"Application operators (n={N}, single-bit mantissa flips)",
            )
        )
        for suite, result in results:
            assert result.false_positive_free["aabft"], suite.name
            assert result.false_positive_free["sea"], suite.name
            if result.num_critical() > 10:
                assert result.detection_rate("aabft") > 0.6, suite.name
