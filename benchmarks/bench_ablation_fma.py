"""Ablation — fused multiply-add pipelines (paper Section IV-D).

On FMA hardware the multiplication contributes no rounding error, so the
probabilistic bound keeps only the summation terms.  This bench quantifies
the tightening and verifies that the FMA bound still covers the errors an
FMA-style accumulation actually produces (simulated with error-free
two_prod: the product enters the sum exactly, only the additions round).
"""

import math

import numpy as np

from repro.analysis.tables import format_sci, render_table
from repro.bounds.base import BoundContext
from repro.bounds.probabilistic import ProbabilisticBound
from repro.exact.compensated import exact_dot_float, two_prod
from repro.bounds.upper_bound import exact_upper_bound

from conftest import FULL

N = 1024 if FULL else 256
TRIALS = 200 if FULL else 80


def _fma_dot(a: np.ndarray, b: np.ndarray) -> float:
    """Sequential accumulation where each product is exact (FMA model).

    A real FMA rounds fl(a*b + s) once; feeding the two_prod expansion into
    the running sum reproduces "multiplication contributes no error" while
    keeping one rounding per accumulation step — the Section IV-D model.
    """
    s = 0.0
    for x, y in zip(a.tolist(), b.tolist()):
        p, e = two_prod(x, y)
        s = s + p
        s = s + e
    return s


class TestFmaAblation:
    def test_fma_bound_tighter_and_valid(self, benchmark, record_table):
        rng = np.random.default_rng(13)

        def run():
            worst_plain = 0.0
            worst_fma = 0.0
            y_max = 0.0
            for _ in range(TRIALS):
                a = rng.uniform(-1.0, 1.0, N)
                b = rng.uniform(-1.0, 1.0, N)
                exact = exact_dot_float(a, b)
                plain = 0.0
                for x, yv in zip(a.tolist(), b.tolist()):
                    plain += x * yv
                worst_plain = max(worst_plain, abs(plain - exact))
                worst_fma = max(worst_fma, abs(_fma_dot(a, b) - exact))
                y_max = max(y_max, exact_upper_bound(a, b))
            return worst_plain, worst_fma, y_max

        worst_plain, worst_fma, y_max = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        ctx = BoundContext(n=N, m=1, upper_bound=y_max)
        eps_plain = ProbabilisticBound(omega=3.0, fma=False).epsilon(ctx)
        eps_fma = ProbabilisticBound(omega=3.0, fma=True).epsilon(ctx)

        record_table(
            render_table(
                ["pipeline", "worst observed err", "3-sigma bound", "headroom"],
                [
                    [
                        "mul+add",
                        format_sci(worst_plain),
                        format_sci(eps_plain),
                        f"{eps_plain / worst_plain:.0f}x",
                    ],
                    [
                        "fma",
                        format_sci(worst_fma),
                        format_sci(eps_fma),
                        f"{eps_fma / max(worst_fma, 1e-300):.0f}x",
                    ],
                ],
                title=f"Ablation: FMA pipeline (n={N}, {TRIALS} trials)",
            )
        )
        # The FMA bound is strictly tighter but still covers FMA errors.
        assert eps_fma < eps_plain
        assert worst_fma <= eps_fma
        assert worst_plain <= eps_plain
        # Eq. 45 vs Eq. 28: the ratio approaches sqrt of the variance-term
        # ratio, close to 1 for large n (the sum term dominates) — but the
        # mean term vanishes entirely under FMA.
        assert math.isfinite(eps_fma / eps_plain)
