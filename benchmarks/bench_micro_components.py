"""Micro-benchmarks of the library's hot components.

Not a paper table — these track the host-side cost of the pieces the
experiments lean on (encoding, top-p determination, checking, exact
reference arithmetic, sequential replay) so performance regressions in the
reproduction itself are visible.
"""

import numpy as np
import pytest

from repro.abft.encoding import encode_partitioned_columns
from repro.abft.multiply import aabft_matmul
from repro.bounds.upper_bound import top_p_of_rows
from repro.exact.compensated import exact_dot_float
from repro.exact.fraction_ops import exact_dot
from repro.kernels.matmul import sequential_inner_product

from conftest import FULL

N = 1024 if FULL else 512


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(5)
    return rng.uniform(-1, 1, (N, N)), rng.uniform(-1, 1, (N, N))


class TestMicro:
    def test_partitioned_encoding(self, benchmark, operands):
        a, _ = operands
        out, layout = benchmark(encode_partitioned_columns, a, 64)
        assert out.shape == (layout.encoded_rows, N)

    def test_top_p_determination(self, benchmark, operands):
        a, _ = operands
        a_cc, _ = encode_partitioned_columns(a, 64)
        tops = benchmark(top_p_of_rows, a_cc, 2)
        assert len(tops) == a_cc.shape[0]

    def test_protected_matmul_host(self, benchmark, operands):
        a, b = operands
        result = benchmark.pedantic(
            aabft_matmul, args=(a, b), kwargs={"block_size": 64}, rounds=2
        )
        assert not result.detected

    def test_exact_dot_compensated(self, benchmark, operands):
        a, b = operands
        value = benchmark(exact_dot_float, a[0], b[:, 0])
        assert np.isfinite(value)

    def test_exact_dot_fraction_oracle(self, benchmark, operands):
        a, b = operands
        # The oracle is O(100x) slower; keep the vector short.
        value = benchmark(exact_dot, a[0, :64], b[:64, 0])
        assert value is not None

    def test_sequential_replay(self, benchmark, operands):
        a, b = operands
        value = benchmark(sequential_inner_product, a[0], b[:, 0])
        assert np.isfinite(value)

    def test_unprotected_reference(self, benchmark, operands):
        a, b = operands
        c = benchmark(np.matmul, a, b)
        assert c.shape == (N, N)
