"""Ablation — partitioned-encoding block size BS (paper Section II).

BS trades error-location granularity and checksum magnitude against
overhead: smaller blocks mean more checksum rows/columns (more encode and
check work, more storage) but finer location and smaller checksum-row
magnitudes (tighter y, hence tighter bounds).  This bench sweeps BS and
reports bound tightness, detection rate and modelled overhead.
"""

import numpy as np

from repro.analysis.tables import format_sci, render_table
from repro.experiments.bound_quality import measure_bound_quality
from repro.faults.campaign import CampaignConfig, FaultCampaign
from repro.gpusim.device import K20C
from repro.perfmodel.schemes import aabft_timing
from repro.workloads import SUITE_UNIT

from conftest import BOUND_SAMPLES, FULL, INJECTIONS_PER_CELL

BLOCK_SIZES = (16, 32, 64, 128)
N = 512 if FULL else 256


class TestBlockSizeAblation:
    def test_bounds_and_detection_vs_block_size(self, benchmark, record_table):
        def run():
            out = []
            for bs in BLOCK_SIZES:
                rng = np.random.default_rng(7)
                quality = measure_bound_quality(
                    SUITE_UNIT, N, rng, block_size=bs, num_samples=BOUND_SAMPLES
                )
                campaign = FaultCampaign(
                    CampaignConfig(
                        n=N,
                        suite=SUITE_UNIT,
                        num_injections=INJECTIONS_PER_CELL,
                        block_size=bs,
                        seed=17,
                    )
                ).run()
                out.append((bs, quality, campaign))
            return out

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        body = []
        for bs, quality, campaign in results:
            overhead = aabft_timing(N, block_size=bs).seconds(K20C)
            body.append(
                [
                    bs,
                    format_sci(quality.avg_aabft_bound),
                    f"{quality.aabft_tightness:.0f}x",
                    f"{100 * campaign.detection_rate('aabft'):.1f}%",
                    "yes" if campaign.false_positive_free["aabft"] else "NO",
                    f"{overhead * 1e3:.2f}",
                ]
            )
        record_table(
            render_table(
                ["BS", "avg bound", "tightness", "detection", "FP-free", "model ms"],
                body,
                title=f"Ablation: block size (n={N}, U(-1,1))",
            )
        )
        # Smaller blocks -> smaller checksum magnitudes -> tighter bounds.
        bounds = [q.avg_aabft_bound for _, q, _ in results]
        assert bounds[0] < bounds[-1]
        # No configuration may produce false positives.
        assert all(c.false_positive_free["aabft"] for _, _, c in results)
