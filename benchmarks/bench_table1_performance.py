"""Table I — performance of ABFT / A-ABFT / SEA-ABFT / TMR (GFLOPS).

Regenerates the paper's Table I from the calibrated analytic K20c model and
benchmarks the functional pipeline underlying it.  The printed table carries
the modelled GFLOPS next to the published values; the pytest-benchmark
timings measure the *host* cost of the simulation itself (not a GPU).
"""

import numpy as np
import pytest

from repro import AABFTPipeline, GpuSimulator
from repro.experiments.table1 import overhead_summary, render_table1, run_table1
from repro.kernels.tmr import run_tmr_matmul

from conftest import FULL


class TestTable1:
    def test_regenerate_table1(self, benchmark, record_table):
        """The headline table: modelled GFLOPS per scheme and size."""
        rows = benchmark(run_table1)
        record_table(render_table1(rows) + "\n" + overhead_summary(rows))
        # Shape assertions double as regression guards for the calibration.
        last = rows[-1]
        assert last.abft > last.aabft > last.sea > last.tmr

    @pytest.mark.parametrize("scheme", ["aabft", "sea", "fixed"])
    def test_simulated_pipeline_run(self, benchmark, scheme):
        """Functional-simulator cost of one protected multiplication."""
        n = 512 if FULL else 256
        rng = np.random.default_rng(1)
        a = rng.uniform(-1.0, 1.0, (n, n))
        b = rng.uniform(-1.0, 1.0, (n, n))

        def run():
            sim = GpuSimulator()
            pipeline = AABFTPipeline(
                sim,
                block_size=64,
                scheme=scheme,
                fixed_epsilon=1e-9 if scheme == "fixed" else None,
            )
            result = pipeline.run(a, b)
            assert not result.detected
            return result.modelled_seconds

        modelled = benchmark.pedantic(run, rounds=2, iterations=1)
        benchmark.extra_info["modelled_gpu_seconds"] = modelled

    def test_simulated_tmr_run(self, benchmark):
        n = 512 if FULL else 256
        rng = np.random.default_rng(2)
        a = rng.uniform(-1.0, 1.0, (n, n))
        b = rng.uniform(-1.0, 1.0, (n, n))

        def run():
            sim = GpuSimulator()
            outcome = run_tmr_matmul(sim, a, b, tile=64)
            assert not outcome.error_detected
            return sim.stream("compute").seconds

        modelled = benchmark.pedantic(run, rounds=2, iterations=1)
        benchmark.extra_info["modelled_gpu_seconds"] = modelled
