"""Figure 4 — percentage of detected errors per operation.

Regenerates the paper's detection experiment: single-bit mantissa flips
into the three floating-point operations of the matmul kernel, over the
three input classes and a size sweep; A-ABFT vs. SEA-ABFT per cell.  Also
runs the sign/exponent campaign (paper: 100% detected) and checks the
qualitative claims of Section VI-C.
"""

import numpy as np

from repro.experiments.figure4 import render_figure4, run_figure4
from repro.faults.campaign import CampaignConfig, FaultCampaign
from repro.workloads import DETECTION_SUITES, SUITE_UNIT

from conftest import DETECT_SIZES, INJECTIONS_PER_CELL

DETECT_SUITES = DETECTION_SUITES


class TestFigure4:
    def test_regenerate_figure4(self, benchmark, record_table):
        def run():
            return run_figure4(
                suites=DETECT_SUITES,
                sizes=DETECT_SIZES,
                injections_per_cell=INJECTIONS_PER_CELL,
                seed=2014,
            )

        cells = benchmark.pedantic(run, rounds=1, iterations=1)
        record_table(render_figure4(cells))

        # Qualitative claims of Section VI-C:
        # (1) A-ABFT >= SEA in aggregate per suite;
        for suite in DETECT_SUITES:
            mine = [c for c in cells if c.suite == suite.name and c.num_critical]
            aabft = np.average(
                [c.rate_aabft for c in mine], weights=[c.num_critical for c in mine]
            )
            sea = np.average(
                [c.rate_sea for c in mine], weights=[c.num_critical for c in mine]
            )
            assert aabft >= sea - 0.02, (suite.name, aabft, sea)
            # (2) "well over 90%" territory for A-ABFT in aggregate.
            assert aabft > 0.8, (suite.name, aabft)

    def test_sign_and_exponent_flips_fully_detected(self, benchmark, record_table):
        """Paper: 'A-ABFT, as well as SEA-ABFT detected all faults that have
        been injected into the sign bit or the exponent.'"""

        def run():
            config = CampaignConfig(
                n=DETECT_SIZES[0],
                suite=SUITE_UNIT,
                num_injections=INJECTIONS_PER_CELL,
                block_size=64,
                fields=("sign", "exponent"),
                seed=77,
            )
            return FaultCampaign(config).run()

        result = benchmark.pedantic(run, rounds=1, iterations=1)
        record_table(result.summary())
        assert result.detection_rate("aabft") == 1.0
        assert result.detection_rate("sea") == 1.0
