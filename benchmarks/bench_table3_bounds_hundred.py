"""Table III — bound quality for inputs U(-100, 100).

Same measurement as Table II on the scaled input class; every quantity
shifts by ~1e4 (products scale with 100^2), which the assertions check.
"""

import numpy as np

from repro.experiments.bound_quality import measure_bound_quality, render_bound_table
from repro.experiments.paper_data import TABLE3_HUNDRED
from repro.workloads import SUITE_HUNDRED

from conftest import BOUND_SAMPLES, BOUND_SIZES


class TestTable3:
    def test_regenerate_table3(self, benchmark, record_table):
        rng = np.random.default_rng(2015)

        def run():
            return [
                measure_bound_quality(
                    SUITE_HUNDRED, n, rng, num_samples=BOUND_SAMPLES
                )
                for n in BOUND_SIZES
            ]

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        record_table(
            render_bound_table(
                rows, TABLE3_HUNDRED, "Table III — inputs U(-100, 100)"
            )
        )
        for row in rows:
            assert row.avg_rounding_error < row.avg_aabft_bound < row.avg_sea_bound
            paper = TABLE3_HUNDRED.get(row.n)
            if paper:
                assert 0.2 < row.avg_aabft_bound / paper[1] < 5.0
                assert 0.2 < row.avg_sea_bound / paper[2] < 5.0
