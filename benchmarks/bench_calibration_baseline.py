"""Baseline — calibration-run bounds and their fragility (paper Sec. III).

The oldest tolerance-determination approach learns a constant from repeated
fault-free runs.  The paper dismisses it as non-autonomous and fragile;
this bench measures that fragility head to head with A-ABFT: the learned
constant is applied (a) where it was calibrated, (b) after a distribution
shift, (c) after a size shift — while A-ABFT re-derives its tolerance from
the actual inputs every time.
"""

import numpy as np

from repro.abft.checking import check_partitioned
from repro.abft.encoding import (
    encode_partitioned_columns,
    encode_partitioned_rows,
)
from repro.abft.multiply import aabft_matmul
from repro.abft.providers import ConstantEpsilonProvider
from repro.analysis.tables import render_table
from repro.bounds.calibrated import calibrate
from repro.workloads import SUITE_HUNDRED, SUITE_UNIT

from conftest import FULL

N = 512 if FULL else 256


def _false_positives(bound_value, suite, n, rng):
    pair = suite.generate(n, rng)
    a_cc, rows = encode_partitioned_columns(pair.a, 64)
    b_rc, cols = encode_partitioned_rows(pair.b, 64)
    report = check_partitioned(
        a_cc @ b_rc, rows, cols, ConstantEpsilonProvider(bound_value)
    )
    return report.num_failed, report.num_checks


class TestCalibrationBaseline:
    def test_fragility_matrix(self, benchmark, record_table):
        def run():
            rng = np.random.default_rng(41)
            bound = calibrate(SUITE_UNIT, N, rng, runs=5)
            cells = []
            for label, suite, n in (
                ("calibrated setting", SUITE_UNIT, N),
                ("distribution shift (x100)", SUITE_HUNDRED, N),
                ("size shift (16x)", SUITE_UNIT, 16 * N),
            ):
                failed, total = _false_positives(bound.value, suite, n, rng)
                aabft = aabft_matmul(
                    suite.generate(n, rng).a,
                    suite.generate(n, rng).b,
                    block_size=64,
                )
                cells.append((label, failed, total, aabft.detected))
            return bound, cells

        bound, cells = benchmark.pedantic(run, rounds=1, iterations=1)
        body = [
            [
                label,
                f"{failed}/{total}",
                "yes" if failed == 0 else "NO",
                "yes" if not aabft_flagged else "NO",
            ]
            for label, failed, total, aabft_flagged in cells
        ]
        record_table(
            render_table(
                ["setting", "calibrated-bound FPs", "calibrated OK", "A-ABFT OK"],
                body,
                title=(
                    f"Calibration baseline fragility "
                    f"(learned on U(-1,1) at n={N}: eps={bound.value:.2e})"
                ),
            )
        )
        by_label = {label: failed for label, failed, _, _ in cells}
        assert by_label["calibrated setting"] == 0
        assert by_label["distribution shift (x100)"] > 50
        assert by_label["size shift (16x)"] > 0  # paper: "dependent on the problem size"
        # A-ABFT stays clean in every setting.
        assert all(not flagged for _, _, _, flagged in cells)
