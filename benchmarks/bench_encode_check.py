"""Encode/check stage cost: fused vectorised kernels vs the loop references.

The perf PR's acceptance benchmark.  The committed ``BENCH_engine.json``
baseline spent ``encode_seconds = 2.47`` and ``check_seconds = 0.81``
against ``multiply_seconds = 0.30`` — the ABFT bookkeeping cost 10x the
BLAS work it protects.  This benchmark replays the exact engine workload
of ``bench_engine_throughput.py`` (warm per-call loop, serial
``execute_batch``, encoded-handle loop) and reads the stage seconds off
the engine's own ``abft_engine_stage_seconds_total`` counters, then
verifies the fast kernels bitwise against the reference implementations:

* ``fused_encode`` output == ``encode_partitioned_*_reference`` (the old
  per-block loop / transpose kernels, kept as oracles);
* the grid-based check == ``check_partitioned(..., use_grids=False)``
  (the scalar per-comparison tolerance loop) — discrepancies, findings
  and located errors;
* an injected fault is still detected and located.

Acceptance: warm per-call encode+check time at most ~1/3 of the
``BENCH_engine.json`` stage baseline.

The fused-online row (PR 9) times the same warm encoded-handle loop at
``FUSED_SIZE``² in float32 with ``fusion="separate"`` vs ``fusion="fused"``
(degenerate single-tile mode — identical GEMM bytes), after verifying the
fused result and discrepancy grids bitwise against the separate path.  The
fused in-loop check reduces the float32 result with a float64 accumulator
instead of materialising two full float64 casts, so the per-call
encode+check cost must beat the separate path by ``FUSED_FLOOR`` — and the
autotuner must demonstrably pick ``fused`` for the float32 shape where it
wins (float64 is check-parity, recorded alongside).

Run directly::

    PYTHONPATH=src python benchmarks/bench_encode_check.py

Results are written to ``BENCH_encode.json`` at the repository root.

CI runs the smoke variant, which never rewrites the committed baseline —
it loads it and fails when the per-call encode+check time regresses past
the tolerance (generous by default so shared-runner noise doesn't flap)::

    PYTHONPATH=src python benchmarks/bench_encode_check.py \
        --quick --compare --tolerance 0.50
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.abft.checking import check_partitioned
from repro.abft.encoding import (
    encode_partitioned_columns_reference,
    encode_partitioned_rows_reference,
)
from repro.abft.providers import AABFTEpsilonProvider
from repro.backends.autotune import Autotuner, AutotuneCache
from repro.bounds.probabilistic import ProbabilisticBound
from repro.bounds.upper_bound import top_p_of_columns, top_p_of_rows
from repro.engine import AbftConfig, ExecutionPolicy, MatmulEngine
from repro.fp.constants import format_for_dtype
from repro.kernels import fused_encode

SIZE = 256
REPEATS = 100
QUICK_REPEATS = 20
BLOCK_SIZE = 64
P = 2
REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_encode.json"
ENGINE_BASELINE = REPO_ROOT / "BENCH_engine.json"
TARGET_RATIO = 1.0 / 3.0
FUSED_SIZE = 1024
FUSED_REPEATS = 30
FUSED_QUICK_REPEATS = 8
FUSED_FLOOR = 1.25


def reference_stage_times(a, bs) -> tuple[float, float]:
    """Stage seconds of the pre-PR kernels on the same workload.

    Encode: the per-block loop / transpose reference kernels plus the
    per-vector top-p objects.  Check: the scalar per-comparison tolerance
    loop.  Multiplications run untimed in between — only the two ABFT
    stages are measured.
    """
    encode_seconds = 0.0
    check_seconds = 0.0
    for b in bs:
        t0 = time.perf_counter()
        a_cc, row_layout = encode_partitioned_columns_reference(a, BLOCK_SIZE)
        b_rc, col_layout = encode_partitioned_rows_reference(b, BLOCK_SIZE)
        row_tops = top_p_of_rows(a_cc, P)
        col_tops = top_p_of_columns(b_rc, P)
        encode_seconds += time.perf_counter() - t0
        c_fc = a_cc @ b_rc
        provider = AABFTEpsilonProvider(
            scheme=ProbabilisticBound(
                omega=3.0, fma=False, fmt=format_for_dtype(c_fc.dtype)
            ),
            row_tops=row_tops,
            col_tops=col_tops,
            row_layout=row_layout,
            col_layout=col_layout,
            inner_dim=a.shape[1],
        )
        t0 = time.perf_counter()
        report = check_partitioned(
            c_fc, row_layout, col_layout, provider, use_grids=False
        )
        check_seconds += time.perf_counter() - t0
        assert not report.error_detected
    return encode_seconds, check_seconds


def verify_bitwise(engine, a, b) -> None:
    """Fast kernels must reproduce the reference kernels bit for bit."""
    # Fused encode vs the loop/transpose reference kernels.
    fa = fused_encode(a, "a", BLOCK_SIZE, p=P)
    ra, _ = encode_partitioned_columns_reference(a, BLOCK_SIZE)
    assert np.array_equal(fa.encoded, ra), "fused A encode diverged"
    fb = fused_encode(b, "b", BLOCK_SIZE, p=P)
    rb, _ = encode_partitioned_rows_reference(b, BLOCK_SIZE)
    assert np.array_equal(fb.encoded, rb), "fused B encode diverged"

    # Engine (grid) check vs the scalar per-comparison reference loop.
    res = engine.matmul(a, b)
    ref = check_partitioned(
        res.c_fc, res.row_layout, res.col_layout, res.provider, use_grids=False
    )
    eng = res.report
    assert np.array_equal(eng.column_disc, ref.column_disc)
    assert np.array_equal(eng.row_disc, ref.row_disc)
    assert eng.findings == ref.findings
    assert eng.located_errors == ref.located_errors
    assert eng.num_checks == ref.num_checks

    # The grid path of check_partitioned itself agrees with the scalar loop.
    grid = check_partitioned(
        res.c_fc, res.row_layout, res.col_layout, res.provider, use_grids=True
    )
    assert grid.findings == ref.findings

    # An injected single fault is still detected and located.
    faulty = res.c_fc.copy()
    faulty[17, 23] += 2.0 ** -10
    report = check_partitioned(
        faulty, res.row_layout, res.col_layout, res.provider
    )
    assert report.error_detected, "injected fault went undetected"
    assert (17, 23) in report.located_errors


def stage_delta(engine, before: dict) -> dict:
    after = engine.stats().as_dict()
    return {
        key: after[key] - before.get(key, 0.0)
        for key in ("encode_seconds", "check_seconds", "multiply_seconds", "calls")
    }


def fused_stage_times(repeats: int) -> dict:
    """Warm encoded-handle loop at ``FUSED_SIZE``² float32: separate vs fused.

    Operands are encoded once per engine, so the per-call ABFT cost is the
    check stage the fused path targets.  Both engines run the identical
    workload interleaved (drift cancels), after the fused result bytes and
    discrepancy grids are verified bitwise against the separate path.
    """
    rng = np.random.default_rng(20140623)
    a = rng.uniform(-1, 1, (FUSED_SIZE, FUSED_SIZE)).astype(np.float32)
    b = rng.uniform(-1, 1, (FUSED_SIZE, FUSED_SIZE)).astype(np.float32)
    engines = {}
    for fusion in ("separate", "fused"):
        engine = MatmulEngine(
            AbftConfig(
                block_size=BLOCK_SIZE, p=P,
                fusion=fusion, fused_tile_blocks=None,
            )
        )
        ha = engine.encode(a, side="a")
        hb = engine.encode(b, side="b")
        res = engine.matmul(ha, hb)  # warm + reconciliation sample
        engine.matmul(ha, hb)
        engines[fusion] = (engine, ha, hb, res)

    sep_res = engines["separate"][3]
    fus_res = engines["fused"][3]
    assert fus_res.fused, "fused engine fell back to the separate path"
    assert np.array_equal(sep_res.c_fc, fus_res.c_fc), "fused bytes diverged"
    assert np.array_equal(
        sep_res.report.column_disc, fus_res.report.column_disc
    ), "fused column grid diverged"
    assert np.array_equal(
        sep_res.report.row_disc, fus_res.report.row_disc
    ), "fused row grid diverged"

    for engine, *_ in engines.values():
        engine.reset_stats()
    for _ in range(repeats):
        for engine, ha, hb, _ in engines.values():
            engine.matmul(ha, hb)
    per_call = {}
    for fusion, (engine, *_) in engines.items():
        stats = engine.stats().as_dict()
        per_call[fusion] = (
            stats["encode_seconds"] + stats["check_seconds"]
        ) / repeats
    return {
        "separate_per_call": per_call["separate"],
        "fused_per_call": per_call["fused"],
        "speedup": per_call["separate"] / per_call["fused"],
    }


def fused_autotune_evidence() -> dict:
    """Tuned fusion decisions at the fused bench shape.

    The autotuner must choose ``fused`` for the float32 shape where the
    in-loop check wins; the float64 decision (check-parity on this stack,
    so the never-slower hysteresis keeps ``separate``) is recorded as the
    only-where-it-wins evidence.
    """
    cfg = AbftConfig(block_size=BLOCK_SIZE, p=P)
    with tempfile.TemporaryDirectory() as tmp:
        tuner = Autotuner(cache=AutotuneCache(Path(tmp) / "autotune.json"))
        f32 = tuner.tune(
            FUSED_SIZE, FUSED_SIZE, FUSED_SIZE, dtype=np.float32, config=cfg
        )
        f64 = tuner.tune(
            FUSED_SIZE, FUSED_SIZE, FUSED_SIZE, dtype=np.float64, config=cfg
        )
    return {
        "float32_fusion": f32.fusion,
        "float32_tile_blocks": f32.fused_tile_blocks,
        "float64_fusion": f64.fusion,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Encode/check stage benchmark (fused kernels vs references)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"reduced scale: {QUICK_REPEATS} repeats instead of {REPEATS}",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="smoke mode: compare against the committed baseline instead of "
        "rewriting it; exits 1 on an encode+check regression past --tolerance",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline JSON for --compare (default: repo BENCH_encode.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.50,
        help="allowed per-call encode+check slowdown vs the baseline "
        "(default 0.50)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    repeats = QUICK_REPEATS if args.quick else REPEATS

    rng = np.random.default_rng(20140623)  # DSN 2014
    a = rng.uniform(-1, 1, (SIZE, SIZE))
    bs = [rng.uniform(-1, 1, (SIZE, SIZE)) for _ in range(repeats)]

    config = AbftConfig(block_size=BLOCK_SIZE, p=P)
    engine = MatmulEngine(config)
    engine.matmul(a, bs[0])  # warm the plan cache

    print(f"{repeats} x A-ABFT matmul, {SIZE}x{SIZE}, BS={BLOCK_SIZE}, p={P}")

    verify_bitwise(engine, a, bs[0])
    print("  fast kernels bitwise identical to the reference kernels")

    # The same engine workload bench_engine_throughput.py times, so the
    # stage counters are comparable to the BENCH_engine.json baseline:
    # warm per-call loop, serial execute_batch, encoded-handle loop.
    before = engine.stats().as_dict()
    for b in bs:
        engine.matmul(a, b)
    engine.execute_batch(
        [(a, b) for b in bs], policy=ExecutionPolicy(mode="serial")
    )
    handle = engine.encode(a, side="a")
    for b in bs:
        engine.matmul(handle, b)
    delta = stage_delta(engine, before)

    calls = delta["calls"]
    encode_seconds = delta["encode_seconds"]
    check_seconds = delta["check_seconds"]
    per_call = (encode_seconds + check_seconds) / calls
    print(f"  engine encode stage: {encode_seconds:8.2f} s over {calls} calls")
    print(f"  engine check stage : {check_seconds:8.2f} s")
    print(f"  engine multiply    : {delta['multiply_seconds']:8.2f} s")
    print(f"  encode+check       : {per_call * 1e3:8.2f} ms/call")

    ref_encode, ref_check = reference_stage_times(a, bs)
    ref_per_call = (ref_encode + ref_check) / repeats
    print(f"  reference encode   : {ref_encode:8.2f} s over {repeats} calls")
    print(f"  reference check    : {ref_check:8.2f} s")
    speedup = ref_per_call / per_call
    print(f"  speedup vs reference kernels: {speedup:.1f}x per call")

    if args.compare:
        if not args.baseline.exists():
            print(f"FAIL: baseline {args.baseline} not found", file=sys.stderr)
            return 1
        committed = json.loads(args.baseline.read_text())
        committed_per_call = (
            committed["engine_encode_seconds"] + committed["engine_check_seconds"]
        ) / committed["engine_calls"]
        limit = committed_per_call * (1.0 + args.tolerance)
        print(
            f"  encode+check vs baseline: {per_call * 1e3:.2f} ms/call "
            f"vs {committed_per_call * 1e3:.2f} ms/call "
            f"(limit {limit * 1e3:.2f} ms/call = +{args.tolerance:.0%})"
        )
        if per_call > limit:
            print(
                "FAIL: encode+check stage time regressed past the tolerance",
                file=sys.stderr,
            )
            return 1
        print("  encode+check stage time within tolerance")

        if "fused_speedup_vs_separate" not in committed:
            print(
                "FAIL: committed baseline has no fused-online row "
                "(regenerate BENCH_encode.json)",
                file=sys.stderr,
            )
            return 1
        fused = fused_stage_times(
            FUSED_QUICK_REPEATS if args.quick else FUSED_REPEATS
        )
        print(
            f"  fused-online ({FUSED_SIZE}² float32 handles): "
            f"{fused['fused_per_call'] * 1e3:.2f} ms/call vs separate "
            f"{fused['separate_per_call'] * 1e3:.2f} ms/call "
            f"({fused['speedup']:.2f}x, floor {FUSED_FLOOR:.2f}x, "
            f"baseline {committed['fused_speedup_vs_separate']:.2f}x)"
        )
        if fused["speedup"] < FUSED_FLOOR:
            print(
                "FAIL: fused-online encode+check speedup fell below the "
                f"{FUSED_FLOOR:.2f}x floor",
                file=sys.stderr,
            )
            return 1
        print("  fused-online speedup above the floor")
        return 0

    # Fused-online row: the in-loop check must beat the separate
    # encode+check path on the warm large-shape workload, and the
    # autotuner must pick fusion for the shape where it wins.
    fused = fused_stage_times(FUSED_QUICK_REPEATS if args.quick else FUSED_REPEATS)
    print(
        f"  fused-online ({FUSED_SIZE}² float32 handles): "
        f"{fused['fused_per_call'] * 1e3:.2f} ms/call vs separate "
        f"{fused['separate_per_call'] * 1e3:.2f} ms/call "
        f"({fused['speedup']:.2f}x, floor {FUSED_FLOOR:.2f}x)"
    )
    tune_evidence = fused_autotune_evidence()
    print(
        f"  autotune fusion decisions: float32={tune_evidence['float32_fusion']}"
        f" (tile_blocks={tune_evidence['float32_tile_blocks']}),"
        f" float64={tune_evidence['float64_fusion']}"
    )

    # Acceptance: at most ~1/3 of the committed pre-PR stage baseline.
    payload = {
        "size": SIZE,
        "repeats": repeats,
        "block_size": BLOCK_SIZE,
        "p": P,
        "engine_calls": calls,
        "engine_encode_seconds": encode_seconds,
        "engine_check_seconds": check_seconds,
        "engine_multiply_seconds": delta["multiply_seconds"],
        "reference_encode_seconds": ref_encode,
        "reference_check_seconds": ref_check,
        "speedup_vs_reference": speedup,
        "bitwise_identical": True,
        "fault_detected": True,
        "fused_size": FUSED_SIZE,
        "fused_dtype": "float32",
        "fused_repeats": FUSED_QUICK_REPEATS if args.quick else FUSED_REPEATS,
        "fused_separate_per_call_seconds": fused["separate_per_call"],
        "fused_per_call_seconds": fused["fused_per_call"],
        "fused_speedup_vs_separate": fused["speedup"],
        "fused_floor": FUSED_FLOOR,
        "fused_bitwise_identical": True,
        "fused_autotune_float32": tune_evidence["float32_fusion"],
        "fused_autotune_float32_tile_blocks": tune_evidence["float32_tile_blocks"],
        "fused_autotune_float64": tune_evidence["float64_fusion"],
    }
    if ENGINE_BASELINE.exists():
        base = json.loads(ENGINE_BASELINE.read_text())["engine_stats"]
        base_per_call = (
            base["encode_seconds"] + base["check_seconds"]
        ) / base["calls"]
        ratio = per_call / base_per_call
        payload["baseline_encode_seconds"] = base["encode_seconds"]
        payload["baseline_check_seconds"] = base["check_seconds"]
        payload["ratio_vs_engine_baseline"] = ratio
        print(
            f"  vs BENCH_engine.json stage baseline: "
            f"{per_call * 1e3:.2f} ms/call vs {base_per_call * 1e3:.2f} ms/call "
            f"({ratio:.2f}x, target <= {TARGET_RATIO:.2f}x)"
        )

    out = REPO_ROOT / "BENCH_encode.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  -> {out.name}")

    if ENGINE_BASELINE.exists() and ratio > TARGET_RATIO:
        print(
            "FAIL: encode+check stage time above 1/3 of the pre-PR baseline",
            file=sys.stderr,
        )
        return 1
    if fused["speedup"] < FUSED_FLOOR:
        print(
            f"FAIL: fused-online encode+check speedup below the "
            f"{FUSED_FLOOR:.2f}x floor",
            file=sys.stderr,
        )
        return 1
    if tune_evidence["float32_fusion"] != "fused":
        print(
            "FAIL: autotuner did not choose fusion for the float32 shape "
            "where it wins",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
