"""Error-free transformations: validated against the rational oracle."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact.compensated import (
    compensated_dot,
    exact_dot_errors,
    exact_dot_float,
    fast_two_sum,
    split,
    two_prod,
    two_sum,
)
from repro.exact.fraction_ops import exact_dot

# two_prod/split are error-free only while no intermediate underflows or
# overflows (Dekker's classical domain); the library's workloads stay far
# inside it, and the strategies below mirror that.
_magnitude = st.floats(min_value=1e-100, max_value=1e12)
_sign = st.sampled_from([-1.0, 1.0])
moderate = st.builds(lambda s, m: s * m, _sign, _magnitude) | st.just(0.0)


class TestTwoSum:
    @given(moderate, moderate)
    def test_error_free(self, a, b):
        s, e = two_sum(a, b)
        assert Fraction(a) + Fraction(b) == Fraction(s) + Fraction(e)
        assert s == a + b

    @given(moderate, moderate)
    def test_fast_two_sum_when_ordered(self, a, b):
        hi, lo = (a, b) if abs(a) >= abs(b) else (b, a)
        s, e = fast_two_sum(hi, lo)
        assert Fraction(hi) + Fraction(lo) == Fraction(s) + Fraction(e)


class TestSplit:
    @given(moderate)
    def test_split_reconstructs(self, a):
        hi, lo = split(a)
        assert hi + lo == a
        assert Fraction(hi) + Fraction(lo) == Fraction(a)

    def test_halves_fit_in_26_bits(self):
        hi, lo = split(1.0 + 2.0**-40)
        # hi has at most 26 significant bits: hi * 2**26 must be an integer
        # after scaling by its exponent — verify via exact reconstruction
        # and the classic property |lo| <= |hi| * 2**-26 (roughly).
        assert abs(lo) <= abs(hi) * 2.0**-25


class TestTwoProd:
    @given(moderate, moderate)
    def test_error_free(self, a, b):
        p, e = two_prod(a, b)
        assert Fraction(a) * Fraction(b) == Fraction(p) + Fraction(e)
        assert p == a * b

    def test_zero_operand(self):
        assert two_prod(0.0, 3.5) == (0.0, 0.0)


class TestExactDotFloat:
    @settings(max_examples=40)
    @given(st.integers(1, 40), st.integers(0, 2**32 - 1))
    def test_matches_fraction_oracle(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.uniform(-100, 100, n)
        b = rng.uniform(-100, 100, n)
        assert exact_dot_float(a, b) == float(exact_dot(a, b))

    def test_cancellation_heavy_case(self):
        a = np.array([1e15, 1.0, -1e15, 1e-8])
        b = np.array([1.0, 1.0, 1.0, 1.0])
        assert exact_dot_float(a, b) == float(exact_dot(a, b))

    def test_empty_vectors(self):
        assert exact_dot_float(np.array([]), np.array([])) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            exact_dot_float(np.ones(3), np.ones(4))


class TestExactDotErrors:
    def test_batch_matches_oracle(self, rng):
        k, n = 8, 64
        a = rng.uniform(-1, 1, (k, n))
        b = rng.uniform(-1, 1, (k, n))
        computed = np.einsum("ij,ij->i", a, b)
        errors = exact_dot_errors(a, b, computed)
        for i in range(k):
            exact = exact_dot(a[i], b[i])
            expected = float(Fraction(float(computed[i])) - exact)
            assert errors[i] == pytest.approx(expected, rel=1e-12, abs=5e-324)

    def test_zero_error_for_exact_dot(self):
        a = np.array([[1.0, 2.0]])
        b = np.array([[4.0, 8.0]])
        errors = exact_dot_errors(a, b, np.array([20.0]))
        assert errors[0] == 0.0

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            exact_dot_errors(rng.random((2, 3)), rng.random((2, 3)), np.zeros(3))


class TestCompensatedDot:
    def test_more_accurate_than_naive(self, rng):
        # An ill-conditioned dot product: the compensated result must land
        # within a few ulps of exact while naive summation drifts.
        n = 2000
        a = rng.uniform(-1, 1, n) * 10.0 ** rng.integers(-8, 8, n)
        b = rng.uniform(-1, 1, n) * 10.0 ** rng.integers(-8, 8, n)
        exact = float(exact_dot(a, b))
        comp_err = abs(compensated_dot(a, b) - exact)
        naive = 0.0
        for x, y in zip(a, b):
            naive += x * y
        naive_err = abs(naive - exact)
        assert comp_err <= naive_err
        assert comp_err <= 4 * np.spacing(abs(exact)) + 5e-324

    def test_empty(self):
        assert compensated_dot([], []) == 0.0
