"""The ExactReference engine (GMP substitute): both paths agree."""

import numpy as np
import pytest

from repro.abft.encoding import (
    encode_partitioned_columns,
    encode_partitioned_rows,
)
from repro.exact.reference import ExactReference


@pytest.fixture(params=["compensated", "fraction"])
def engine(request):
    return ExactReference(method=request.param)


class TestSingleElement:
    def test_exact_inner_product(self, engine, rng):
        a = rng.uniform(-1, 1, 50)
        b = rng.uniform(-1, 1, 50)
        value = engine.exact_inner_product(a, b)
        # Exactly rounded result differs from np.dot by at most 1 ulp-ish
        # but equals the Fraction-rounded value.
        from repro.exact.fraction_ops import exact_dot

        assert value == float(exact_dot(a, b))

    def test_rounding_error_of_exact_value(self, engine):
        a = np.array([1.0, 2.0, 4.0])
        b = np.array([8.0, 16.0, 32.0])
        computed = float(a @ b)
        assert engine.rounding_error(a, b, computed) == 0.0

    def test_rounding_error_detects_perturbation(self, engine, rng):
        a = rng.uniform(-1, 1, 32)
        b = rng.uniform(-1, 1, 32)
        computed = float(a @ b) + 1e-6
        err = engine.rounding_error(a, b, computed)
        assert err == pytest.approx(1e-6, rel=1e-6)


class TestMethodsAgree:
    def test_paths_bit_identical(self, rng):
        comp = ExactReference("compensated")
        frac = ExactReference("fraction")
        for _ in range(10):
            a = rng.uniform(-100, 100, 40)
            b = rng.uniform(-100, 100, 40)
            assert comp.exact_inner_product(a, b) == frac.exact_inner_product(a, b)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            ExactReference("gmp")


class TestChecksumErrors:
    def test_column_checksum_errors_magnitude(self, rng):
        a = rng.uniform(-1, 1, (64, 64))
        b = rng.uniform(-1, 1, (64, 64))
        a_cc, _ = encode_partitioned_columns(a, 32)
        b_rc, _ = encode_partitioned_rows(b, 32)
        c_fc = a_cc @ b_rc
        ref = ExactReference()
        # Checksum row of the first block is encoded row 32.
        sample = ref.column_checksum_errors(
            a_cc[: 32 + 1, :], b_rc, c_fc[: 32 + 1, :], columns=np.arange(8)
        )
        assert sample.errors.shape == (8,)
        # Rounding errors of length-64 double dot products: tiny but
        # generally non-zero.
        assert sample.max_abs < 1e-12
        assert sample.mean_abs >= 0.0
        assert sample.rms <= sample.max_abs

    def test_inner_dim_mismatch(self, rng):
        ref = ExactReference()
        with pytest.raises(ValueError, match="inner dimensions"):
            ref.column_checksum_errors(
                rng.random((5, 4)), rng.random((3, 3)), rng.random((5, 3))
            )


class TestDiscrepancies:
    def test_fault_free_discrepancies_are_rounding_level(self, rng):
        a = rng.uniform(-1, 1, (33, 32))  # 32 data rows + checksum row
        a[32] = a[:32].sum(axis=0)
        b = rng.uniform(-1, 1, (32, 33))
        b[:, 32] = b[:, :32].sum(axis=1)
        c = a @ b
        ref = ExactReference()
        col = ref.checksum_discrepancies(c, axis="column")
        row = ref.checksum_discrepancies(c, axis="row")
        assert col.shape == (32,)
        assert row.shape == (32,)
        assert np.max(col) < 1e-12
        assert np.max(row) < 1e-12

    def test_injected_error_shows_up(self, rng):
        a = rng.uniform(-1, 1, (33, 32))
        a[32] = a[:32].sum(axis=0)
        b = rng.uniform(-1, 1, (32, 33))
        b[:, 32] = b[:, :32].sum(axis=1)
        c = a @ b
        c[3, 5] += 1.0
        ref = ExactReference()
        assert ref.checksum_discrepancies(c, "column")[5] == pytest.approx(1.0)
        assert ref.checksum_discrepancies(c, "row")[3] == pytest.approx(1.0)

    def test_bad_axis(self, rng):
        ref = ExactReference()
        with pytest.raises(ValueError, match="axis"):
            ref.checksum_discrepancies(np.zeros((3, 3)), "diagonal")
