"""Rational-arithmetic oracle: exactness and rounding-error measurement."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact.fraction_ops import (
    exact_dot,
    exact_rounding_error,
    exact_sum,
    round_fraction_to_float,
)

small_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)


class TestExactSum:
    def test_cancellation_is_exact(self):
        # Catastrophic cancellation in float, exact in rationals.
        values = [1e16, 1.0, -1e16]
        assert exact_sum(values) == Fraction(1)
        assert sum(values) == 0.0  # the float sum is wrong

    @given(st.lists(small_floats, min_size=1, max_size=30))
    def test_matches_fraction_sum(self, values):
        assert exact_sum(values) == sum(Fraction(v) for v in values)

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            exact_sum([1.0, float("inf")])


class TestExactDot:
    def test_simple(self):
        assert exact_dot([1.0, 2.0], [3.0, 4.0]) == Fraction(11)

    def test_products_are_exact(self):
        # 0.1 * 0.1 is not representable; the Fraction result is exact.
        result = exact_dot([0.1], [0.1])
        assert result == Fraction(0.1) * Fraction(0.1)
        assert float(result) != 0.1 * 0.1 or True  # conversion rounds once

    @given(
        st.lists(small_floats, min_size=1, max_size=15),
        st.data(),
    )
    def test_commutes(self, a, data):
        b = data.draw(st.lists(small_floats, min_size=len(a), max_size=len(a)))
        assert exact_dot(a, b) == exact_dot(b, a)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            exact_dot([1.0], [1.0, 2.0])

    def test_zero_terms_skipped(self):
        assert exact_dot([0.0, 2.0], [5.0, 3.0]) == Fraction(6)


class TestRoundingError:
    def test_correctly_rounded_float(self):
        exact = Fraction(1, 3)
        assert round_fraction_to_float(exact) == 1.0 / 3.0

    def test_error_of_exact_value_is_zero(self):
        assert exact_rounding_error(11.0, Fraction(11)) == 0.0

    def test_error_sign(self):
        # computed > exact  =>  positive error.
        assert exact_rounding_error(1.0, Fraction(1, 2)) == 0.5

    @settings(max_examples=30)
    @given(st.lists(small_floats, min_size=2, max_size=20), st.data())
    def test_numpy_dot_error_within_theory(self, a, data):
        b = data.draw(st.lists(small_floats, min_size=len(a), max_size=len(a)))
        a_arr, b_arr = np.array(a), np.array(b)
        computed = float(a_arr @ b_arr)
        exact = exact_dot(a_arr, b_arr)
        err = abs(exact_rounding_error(computed, exact))
        # Deterministic worst case: gamma_n * |a|.|b|.
        n = len(a)
        u = 2.0**-53
        bound = (n * u / (1 - n * u)) * float(np.abs(a_arr) @ np.abs(b_arr))
        assert err <= bound + 5e-324
