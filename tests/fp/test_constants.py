"""Format constants: IEEE-754 binary16/32/64 (+ gated bfloat16) invariants."""

import numpy as np
import pytest

from repro.fp.constants import (
    BFLOAT16,
    BINARY16,
    BINARY32,
    BINARY64,
    bfloat16_dtype,
    format_for_dtype,
    format_for_name,
    supported_storage_dtypes,
)


class TestFormats:
    def test_binary64_precision(self):
        assert BINARY64.t == 53
        assert BINARY64.mantissa_bits == 52
        assert BINARY64.exponent_bits == 11
        assert BINARY64.total_bits == 64

    def test_binary32_precision(self):
        assert BINARY32.t == 24
        assert BINARY32.mantissa_bits == 23
        assert BINARY32.exponent_bits == 8
        assert BINARY32.total_bits == 32

    def test_unit_roundoff_matches_numpy(self):
        # numpy's eps is 2**(1-t); the unit roundoff u is half of it.
        assert BINARY64.machine_epsilon == np.finfo(np.float64).eps
        assert BINARY64.unit_roundoff == np.finfo(np.float64).eps / 2
        assert BINARY32.machine_epsilon == np.finfo(np.float32).eps

    def test_exponent_bias(self):
        assert BINARY64.exponent_bias == 1023
        assert BINARY32.exponent_bias == 127

    def test_bit_field_layout_is_partition(self):
        for fmt in (BINARY32, BINARY64):
            fields = (
                {fmt.sign_bit_index}
                | set(fmt.exponent_bit_range)
                | set(fmt.mantissa_bit_range)
            )
            assert fields == set(range(fmt.total_bits))
            # Fields must not overlap.
            assert (
                1 + len(fmt.exponent_bit_range) + len(fmt.mantissa_bit_range)
                == fmt.total_bits
            )

    def test_max_finite(self):
        assert BINARY64.max_finite == np.finfo(np.float64).max


class TestFormatForDtype:
    def test_lookup_float64(self):
        assert format_for_dtype(np.float64) is BINARY64
        assert format_for_dtype(np.dtype("float64")) is BINARY64

    def test_lookup_float32(self):
        assert format_for_dtype(np.float32) is BINARY32

    def test_lookup_float16(self):
        assert format_for_dtype(np.float16) is BINARY16

    def test_unsupported_dtype_raises(self):
        with pytest.raises(KeyError, match="int32"):
            format_for_dtype(np.int32)


class TestLowPrecisionFormats:
    def test_binary16_precision(self):
        assert BINARY16.t == 11
        assert BINARY16.mantissa_bits == 10
        assert BINARY16.exponent_bits == 5
        assert BINARY16.total_bits == 16
        assert BINARY16.exponent_bias == 15
        assert BINARY16.machine_epsilon == np.finfo(np.float16).eps
        assert BINARY16.unit_roundoff == np.finfo(np.float16).eps / 2

    def test_bfloat16_gated_on_ml_dtypes(self):
        if bfloat16_dtype() is None:
            assert BFLOAT16 is None
            with pytest.raises(KeyError, match="ml_dtypes"):
                format_for_name("bfloat16")
            assert "bfloat16" not in supported_storage_dtypes()
        else:
            assert BFLOAT16 is not None
            assert BFLOAT16.t == 8
            assert BFLOAT16.exponent_bits == 8
            assert format_for_name("bfloat16") is BFLOAT16
            assert "bfloat16" in supported_storage_dtypes()

    def test_format_for_name_roundtrip(self):
        assert format_for_name("float16") is BINARY16
        assert format_for_name("float32") is BINARY32
        assert format_for_name("float64") is BINARY64
        with pytest.raises(KeyError, match="unknown"):
            format_for_name("float128")
