"""Format constants: IEEE-754 binary32/binary64 invariants."""

import numpy as np
import pytest

from repro.fp.constants import BINARY32, BINARY64, format_for_dtype


class TestFormats:
    def test_binary64_precision(self):
        assert BINARY64.t == 53
        assert BINARY64.mantissa_bits == 52
        assert BINARY64.exponent_bits == 11
        assert BINARY64.total_bits == 64

    def test_binary32_precision(self):
        assert BINARY32.t == 24
        assert BINARY32.mantissa_bits == 23
        assert BINARY32.exponent_bits == 8
        assert BINARY32.total_bits == 32

    def test_unit_roundoff_matches_numpy(self):
        # numpy's eps is 2**(1-t); the unit roundoff u is half of it.
        assert BINARY64.machine_epsilon == np.finfo(np.float64).eps
        assert BINARY64.unit_roundoff == np.finfo(np.float64).eps / 2
        assert BINARY32.machine_epsilon == np.finfo(np.float32).eps

    def test_exponent_bias(self):
        assert BINARY64.exponent_bias == 1023
        assert BINARY32.exponent_bias == 127

    def test_bit_field_layout_is_partition(self):
        for fmt in (BINARY32, BINARY64):
            fields = (
                {fmt.sign_bit_index}
                | set(fmt.exponent_bit_range)
                | set(fmt.mantissa_bit_range)
            )
            assert fields == set(range(fmt.total_bits))
            # Fields must not overlap.
            assert (
                1 + len(fmt.exponent_bit_range) + len(fmt.mantissa_bit_range)
                == fmt.total_bits
            )

    def test_max_finite(self):
        assert BINARY64.max_finite == np.finfo(np.float64).max


class TestFormatForDtype:
    def test_lookup_float64(self):
        assert format_for_dtype(np.float64) is BINARY64
        assert format_for_dtype(np.dtype("float64")) is BINARY64

    def test_lookup_float32(self):
        assert format_for_dtype(np.float32) is BINARY32

    def test_unsupported_dtype_raises(self):
        with pytest.raises(KeyError, match="float16"):
            format_for_dtype(np.float16)
