"""Bit-level float manipulation: roundtrips, flips, field extraction."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fp.bits import (
    bit_field_of_index,
    bits_to_float,
    compose_float,
    exponent_field,
    flip_bit,
    flip_bits,
    float_to_bits,
    get_bit,
    mantissa_field,
    sign_bit,
    xor_bits,
)
from repro.fp.constants import BINARY32

finite_doubles = st.floats(allow_nan=False, allow_infinity=False)


class TestRoundtrip:
    @given(finite_doubles)
    def test_bits_roundtrip_scalar(self, x):
        assert bits_to_float(float_to_bits(x)) == x or (x != x)

    def test_bits_roundtrip_array(self, rng):
        arr = rng.standard_normal(100)
        assert np.array_equal(bits_to_float(float_to_bits(arr)), arr)

    def test_float32_roundtrip(self, rng):
        arr = rng.standard_normal(50).astype(np.float32)
        out = bits_to_float(float_to_bits(arr), BINARY32)
        assert out.dtype == np.float32
        assert np.array_equal(out, arr)

    def test_known_pattern(self):
        # 1.0 in binary64 is 0x3FF0000000000000.
        assert int(float_to_bits(1.0)) == 0x3FF0000000000000
        assert bits_to_float(0x3FF0000000000000) == 1.0


class TestFlips:
    @given(finite_doubles, st.integers(0, 63))
    def test_double_flip_is_identity(self, x, bit):
        flipped = flip_bit(x, bit)
        restored = flip_bit(flipped, bit)
        assert float_to_bits(restored) == float_to_bits(x)

    def test_sign_flip_negates(self):
        assert flip_bit(3.5, 63) == -3.5
        assert flip_bit(-2.0, 63) == 2.0

    def test_lowest_mantissa_flip_is_one_ulp(self):
        x = 1.0
        flipped = float(flip_bit(x, 0))
        assert flipped == np.nextafter(1.0, 2.0)

    def test_exponent_flip_scales_by_power_of_two(self):
        # 1.0 has biased exponent 0b01111111111: its lowest exponent bit is
        # set, so flipping bit 52 halves the value; 2.0 (0b10000000000) has
        # it clear, so flipping doubles.
        assert float(flip_bit(1.0, 52)) == 0.5
        assert float(flip_bit(2.0, 52)) == 4.0

    def test_flip_bits_multiple(self):
        x = 1.0
        out = float(flip_bits(x, [63, 52]))
        assert out == -0.5

    def test_flip_bits_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            flip_bits(1.0, [64])

    def test_xor_bits_matches_flip(self):
        x = math.pi
        assert float(xor_bits(x, 1 << 17)) == float(flip_bit(x, 17))

    def test_xor_bits_array(self, rng):
        arr = rng.standard_normal(32)
        out = xor_bits(arr, 1 << 63)
        assert np.array_equal(out, -arr)


class TestFields:
    def test_sign_bit(self):
        assert sign_bit(-1.0) == 1
        assert sign_bit(1.0) == 0
        assert sign_bit(0.0) == 0
        assert sign_bit(-0.0) == 1

    def test_exponent_field_of_one(self):
        assert exponent_field(1.0) == 1023

    def test_mantissa_field_of_one_and_half(self):
        assert mantissa_field(1.0) == 0
        assert mantissa_field(1.5) == 1 << 51

    @given(finite_doubles)
    def test_compose_inverts_decompose(self, x):
        s = sign_bit(x)
        e = exponent_field(x)
        m = mantissa_field(x)
        assert float_to_bits(compose_float(s, e, m)) == float_to_bits(x)

    def test_compose_validates(self):
        with pytest.raises(ValueError):
            compose_float(2, 0, 0)
        with pytest.raises(ValueError):
            compose_float(0, 1 << 11, 0)
        with pytest.raises(ValueError):
            compose_float(0, 0, 1 << 52)

    def test_get_bit(self):
        assert get_bit(1.0, 62) == 0  # top exponent bit of 1.0 is 0
        assert get_bit(1.0, 61) == 1

    def test_bit_field_classification(self):
        assert bit_field_of_index(63) == "sign"
        assert bit_field_of_index(52) == "exponent"
        assert bit_field_of_index(62) == "exponent"
        assert bit_field_of_index(0) == "mantissa"
        assert bit_field_of_index(51) == "mantissa"
        with pytest.raises(ValueError):
            bit_field_of_index(64)

    def test_bit_field_classification_float32(self):
        assert bit_field_of_index(31, BINARY32) == "sign"
        assert bit_field_of_index(23, BINARY32) == "exponent"
        assert bit_field_of_index(22, BINARY32) == "mantissa"
