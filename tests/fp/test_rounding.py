"""Exponent/ulp helpers underlying the probabilistic error model."""

import math

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.fp.rounding import (
    decompose,
    mantissa_in_half_one,
    result_exponent,
    two_power_exponent,
    ulp,
)

nonzero_doubles = st.floats(
    allow_nan=False, allow_infinity=False, min_value=1e-300, max_value=1e300
)


class TestResultExponent:
    @given(nonzero_doubles)
    def test_normalisation_invariant(self, x):
        # value = mantissa * 2**E with mantissa in [1/2, 1).
        e = result_exponent(x)
        mant = x / math.ldexp(1.0, e)
        assert 0.5 <= mant < 1.0

    def test_specific_values(self):
        assert result_exponent(1.0) == 1  # 1.0 = 0.5 * 2**1
        assert result_exponent(0.75) == 0
        assert result_exponent(3.0) == 2
        assert result_exponent(-8.0) == 4

    def test_zero_maps_to_floor(self):
        assert result_exponent(0.0) == -1075
        assert two_power_exponent(0.0) == 0.0

    def test_nonfinite_maps_above_range(self):
        assert result_exponent(float("inf")) == 1025

    def test_array_agrees_with_scalar(self, rng):
        arr = rng.standard_normal(200) * 10.0**rng.integers(-5, 5, 200)
        vec = result_exponent(arr)
        for x, e in zip(arr, vec):
            assert result_exponent(float(x)) == e

    @given(nonzero_doubles)
    def test_two_power_consistency(self, x):
        assert two_power_exponent(x) == math.ldexp(1.0, result_exponent(x))


class TestUlp:
    def test_matches_math_ulp(self):
        for x in (1.0, 1.5, 1e10, 1e-10, 0.0):
            assert ulp(x) == math.ulp(x)

    def test_ulp_symmetric_in_sign(self):
        assert ulp(-3.7) == ulp(3.7)

    def test_array(self, rng):
        arr = rng.standard_normal(10)
        out = ulp(arr)
        assert out.shape == arr.shape
        assert np.all(out > 0)


class TestDecompose:
    @given(nonzero_doubles)
    def test_reconstruction(self, x):
        mant, e = decompose(x)
        assert math.ldexp(mant, e) == x
        assert 0.5 <= abs(mant) < 1.0

    def test_zero(self):
        assert decompose(0.0) == (0.0, 0)
        assert mantissa_in_half_one(0.0) == 0.0

    def test_mantissa_sign_preserved(self):
        assert mantissa_in_half_one(-1.0) == -0.5
