"""Stuck-at fault model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fp.bits import float_to_bits, get_bit
from repro.fp.stuckat import StuckAtVector, stuck_at_vector

finite = st.floats(allow_nan=False, allow_infinity=False)


class TestStuckAtVector:
    @given(finite, st.integers(0, 63), st.integers(0, 1))
    def test_bit_forced_to_level(self, x, bit, level):
        vec = StuckAtVector(mask=1 << bit, level=level, field="x", bit_indices=(bit,))
        out = float(vec.apply(x))
        assert get_bit(out, bit) == level

    @given(finite, st.integers(0, 63), st.integers(0, 1))
    def test_idempotent(self, x, bit, level):
        """Applying a permanent fault twice equals applying it once."""
        vec = StuckAtVector(mask=1 << bit, level=level, field="x", bit_indices=(bit,))
        once = vec.apply(x)
        twice = vec.apply(once)
        assert float_to_bits(once) == float_to_bits(twice)

    @given(finite, st.integers(0, 63))
    def test_stuck_matches_existing_bit_is_noop(self, x, bit):
        level = int(get_bit(x, bit))
        vec = StuckAtVector(mask=1 << bit, level=level, field="x", bit_indices=(bit,))
        assert float_to_bits(vec.apply(x)) == float_to_bits(x)
        assert not vec.corrupts(x)

    def test_corrupts_detects_change(self):
        vec = StuckAtVector(mask=1 << 63, level=1, field="sign", bit_indices=(63,))
        assert vec.corrupts(1.0)  # positive -> forced negative
        assert not vec.corrupts(-1.0)

    def test_level_validation(self):
        with pytest.raises(ValueError):
            StuckAtVector(mask=1, level=2, field="mantissa", bit_indices=(0,))

    def test_array_apply(self, rng):
        vec = StuckAtVector(mask=1 << 63, level=1, field="sign", bit_indices=(63,))
        arr = rng.uniform(-1, 1, 20)
        out = vec.apply(arr)
        assert np.all(out <= 0)
        assert np.allclose(np.abs(out), np.abs(arr))


class TestSampling:
    def test_positions_within_field(self, rng):
        for _ in range(50):
            vec = stuck_at_vector("mantissa", 1, rng)
            assert all(0 <= i < 52 for i in vec.bit_indices)
            assert vec.level == 1

    def test_multi_bit(self, rng):
        vec = stuck_at_vector("mantissa", 0, rng, num_bits=4)
        assert vec.num_flips == 4
        assert len(set(vec.bit_indices)) == 4

    def test_too_many_bits(self, rng):
        with pytest.raises(ValueError):
            stuck_at_vector("sign", 1, rng, num_bits=2)


class TestCampaignIntegration:
    def test_stuck_at_campaign_runs(self):
        """Stuck-at campaigns work through the whole stack; ~half of the
        strikes are no-ops (bit already at the stuck level), so the
        critical count is lower than for flips."""
        from repro.faults.campaign import CampaignConfig, FaultCampaign
        from repro.workloads import SUITE_UNIT

        flip = FaultCampaign(
            CampaignConfig(
                n=128, suite=SUITE_UNIT, num_injections=120, block_size=64, seed=3
            )
        ).run()
        stuck = FaultCampaign(
            CampaignConfig(
                n=128,
                suite=SUITE_UNIT,
                num_injections=120,
                block_size=64,
                fault_model="stuck1",
                seed=3,
            )
        ).run()
        assert stuck.num_critical() < flip.num_critical()
        assert stuck.num_critical() > 0
        # Detection quality for the errors that do manifest is comparable.
        assert stuck.detection_rate("aabft") > 0.6

    def test_invalid_model_rejected(self):
        from repro.faults.sampling import FaultSampler

        with pytest.raises(ValueError, match="fault_model"):
            FaultSampler(
                num_sms=4,
                inner_dim=8,
                block_rows=4,
                block_cols=4,
                fault_model="bridge",
            )
