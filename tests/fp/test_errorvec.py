"""Error-vector generation: field targeting and neighbourhood structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.bits import bit_field_of_index
from repro.fp.constants import BINARY32, BINARY64
from repro.fp.errorvec import (
    ErrorVector,
    multi_bit_vector,
    popcount,
    random_vector_for_field,
    single_bit_vector,
)


class TestPopcount:
    def test_values(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount(1 << 63) == 1


class TestSingleBit:
    @pytest.mark.parametrize("field", ["sign", "exponent", "mantissa"])
    def test_targets_requested_field(self, field, rng):
        for _ in range(50):
            vec = single_bit_vector(field, rng)
            assert vec.num_flips == 1
            assert bit_field_of_index(vec.bit_indices[0]) == field
            assert vec.mask == 1 << vec.bit_indices[0]

    def test_sign_field_is_deterministic(self, rng):
        vec = single_bit_vector("sign", rng)
        assert vec.bit_indices == (63,)

    def test_unknown_field_raises(self, rng):
        with pytest.raises(ValueError, match="unknown field"):
            single_bit_vector("parity", rng)

    def test_mantissa_positions_cover_field(self, rng):
        positions = {single_bit_vector("mantissa", rng).bit_indices[0] for _ in range(600)}
        # With 600 draws over 52 positions we expect near-complete coverage.
        assert len(positions) > 40
        assert all(0 <= p < 52 for p in positions)


class TestMultiBit:
    @pytest.mark.parametrize("flips", [2, 3, 5])
    def test_flip_count_and_field(self, flips, rng):
        for _ in range(30):
            vec = multi_bit_vector("mantissa", flips, rng)
            assert vec.num_flips == flips
            assert popcount(vec.mask) == flips
            assert all(bit_field_of_index(i) == "mantissa" for i in vec.bit_indices)

    def test_neighbourhood_structure(self, rng):
        # Inner flips lie strictly between the two end positions.
        for _ in range(30):
            vec = multi_bit_vector("mantissa", 5, rng)
            lo, hi = vec.bit_indices[0], vec.bit_indices[-1]
            assert all(lo <= i <= hi for i in vec.bit_indices)
            assert hi - lo + 1 >= 5

    def test_too_many_flips_raises(self, rng):
        with pytest.raises(ValueError, match="cannot place"):
            multi_bit_vector("sign", 2, rng)

    def test_single_flip_delegates(self, rng):
        vec = multi_bit_vector("exponent", 1, rng)
        assert vec.num_flips == 1

    def test_zero_flips_raises(self, rng):
        with pytest.raises(ValueError, match=">= 1"):
            multi_bit_vector("mantissa", 0, rng)

    def test_float32_field_bounds(self, rng):
        for _ in range(20):
            vec = multi_bit_vector("mantissa", 3, rng, BINARY32)
            assert all(0 <= i < 23 for i in vec.bit_indices)


class TestApply:
    def test_apply_flips_value(self, rng):
        vec = ErrorVector(mask=1 << 63, field="sign", bit_indices=(63,))
        assert float(vec.apply(2.5)) == -2.5

    def test_apply_is_involution(self, rng):
        vec = random_vector_for_field("mantissa", 3, rng)
        x = 1.2345
        assert float(vec.apply(vec.apply(x))) == x

    @settings(max_examples=50)
    @given(st.floats(allow_nan=False, allow_infinity=False), st.integers(1, 5))
    def test_apply_changes_value_unless_mask_empty(self, x, flips):
        rng = np.random.default_rng(99)
        vec = random_vector_for_field("mantissa", flips, rng, BINARY64)
        from repro.fp.bits import float_to_bits

        assert int(float_to_bits(vec.apply(x))) != int(float_to_bits(x))


class TestDispatch:
    def test_random_vector_dispatch(self, rng):
        assert random_vector_for_field("sign", 1, rng).num_flips == 1
        assert random_vector_for_field("mantissa", 3, rng).num_flips == 3
