"""The reciprocal (base-2 Benford) mantissa law (paper Section IV-A)."""

import math

import numpy as np
import pytest
from scipy import integrate

from repro.fp.distribution import (
    mantissa_histogram_distance,
    reciprocal_cdf,
    reciprocal_mean,
    reciprocal_pdf,
    reciprocal_ppf,
    reciprocal_variance,
    sample_mantissas,
    sample_reciprocal_floats,
)


class TestDensity:
    def test_pdf_integrates_to_one(self):
        total, _ = integrate.quad(reciprocal_pdf, 0.5, 1.0)
        assert math.isclose(total, 1.0, rel_tol=1e-10)

    def test_pdf_zero_outside_support(self):
        assert reciprocal_pdf(0.25) == 0.0
        assert reciprocal_pdf(1.5) == 0.0

    def test_pdf_decreasing_on_support(self):
        xs = np.linspace(0.5, 0.999, 64)
        ys = reciprocal_pdf(xs)
        assert np.all(np.diff(ys) < 0)

    def test_cdf_endpoints(self):
        assert reciprocal_cdf(0.5) == 0.0
        assert reciprocal_cdf(1.0) == 1.0
        assert reciprocal_cdf(0.0) == 0.0

    def test_cdf_median(self):
        # Median of r(x) is 2**(-1/2).
        assert math.isclose(reciprocal_cdf(2 ** -0.5), 0.5, rel_tol=1e-12)

    def test_ppf_inverts_cdf(self):
        qs = np.linspace(0.0, 1.0, 33)
        xs = reciprocal_ppf(qs)
        assert np.allclose(reciprocal_cdf(xs), qs)

    def test_ppf_rejects_bad_quantiles(self):
        with pytest.raises(ValueError):
            reciprocal_ppf(1.5)


class TestMoments:
    def test_mean_matches_integral(self):
        mean, _ = integrate.quad(lambda x: x * reciprocal_pdf(x), 0.5, 1.0)
        assert math.isclose(reciprocal_mean(), mean, rel_tol=1e-10)

    def test_variance_matches_integral(self):
        m = reciprocal_mean()
        var, _ = integrate.quad(
            lambda x: (x - m) ** 2 * reciprocal_pdf(x), 0.5, 1.0
        )
        assert math.isclose(reciprocal_variance(), var, rel_tol=1e-9)

    def test_sample_moments(self, rng):
        samples = sample_mantissas(200_000, rng)
        assert abs(samples.mean() - reciprocal_mean()) < 5e-3
        assert abs(samples.var() - reciprocal_variance()) < 5e-3


class TestSampling:
    def test_samples_in_support(self, rng):
        samples = sample_mantissas(10_000, rng)
        assert np.all((samples >= 0.5) & (samples < 1.0))

    def test_reciprocal_floats_signed(self, rng):
        values = sample_reciprocal_floats(10_000, rng)
        assert (values < 0).mean() == pytest.approx(0.5, abs=0.05)

    def test_reciprocal_floats_exponent_range(self, rng):
        values = sample_reciprocal_floats(5_000, rng, exponent_range=(0, 1), signed=False)
        # exponent fixed at 0: frexp exponent 0 -> values in [1/4, 1/2)? No:
        # ldexp(m, 0) with m in [1/2, 1) stays in [1/2, 1).
        assert np.all((values >= 0.5) & (values < 1.0))

    def test_invalid_exponent_range(self, rng):
        with pytest.raises(ValueError):
            sample_reciprocal_floats(10, rng, exponent_range=(3, 3))


class TestGoodnessOfFit:
    def test_reciprocal_samples_fit(self, rng):
        values = sample_reciprocal_floats(50_000, rng)
        assert mantissa_histogram_distance(values) < 0.03

    def test_uniform_mantissas_do_not_fit(self, rng):
        # Uniform values on [0.5, 1) have uniform mantissas, not reciprocal.
        values = rng.uniform(0.5, 1.0, 50_000)
        assert mantissa_histogram_distance(values) > 0.05

    def test_products_drift_towards_reciprocal(self, rng):
        # Hamming's observation: multiplication pushes mantissas towards
        # the reciprocal law.  Products of uniforms fit better than the
        # uniforms themselves.
        u = rng.uniform(0.5, 1.0, 60_000)
        v = rng.uniform(0.5, 1.0, 60_000)
        w = rng.uniform(0.5, 1.0, 60_000)
        d_uniform = mantissa_histogram_distance(u)
        d_product = mantissa_histogram_distance(u * v * w)
        assert d_product < d_uniform

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            mantissa_histogram_distance(np.array([0.0, 0.0]))
