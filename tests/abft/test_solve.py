"""Protected linear solve: factorisation + residual verification."""

import numpy as np
import pytest

from repro.abft.solve import (
    ProtectedSolveResult,
    SolveVerificationError,
    protected_solve,
)
from repro.errors import ShapeError


def _system(rng, n, scale=1.0):
    a = rng.uniform(-1.0, 1.0, (n, n)) * scale
    a += np.diag(np.sign(np.diag(a)) * (np.abs(a).sum(axis=1) + 1.0) * scale)
    x_true = rng.uniform(-1.0, 1.0, n)
    return a, a @ x_true, x_true


class TestCleanSolve:
    def test_solution_accurate_and_verified(self, rng):
        a, b, x_true = _system(rng, 48)
        result = protected_solve(a, b)
        assert result.report.verified
        assert result.report.refinement_steps == 0
        assert np.allclose(result.x, x_true, rtol=1e-9)

    def test_matches_numpy_solve(self, rng):
        a, b, _ = _system(rng, 32)
        result = protected_solve(a, b)
        assert np.allclose(result.x, np.linalg.solve(a, b), rtol=1e-9)

    def test_various_scales(self, rng):
        for scale in (1e-3, 1.0, 1e3):
            a, b, x_true = _system(rng, 24, scale)
            result = protected_solve(a, b)
            assert result.report.verified
            assert np.allclose(result.x, x_true, rtol=1e-8)

    def test_residual_below_tolerance_with_headroom(self, rng):
        a, b, _ = _system(rng, 40)
        result = protected_solve(a, b)
        assert result.report.residual_norm < result.report.tolerance

    def test_validation(self, rng):
        with pytest.raises(ShapeError):
            protected_solve(rng.uniform(size=(3, 4)), np.ones(3))
        with pytest.raises(ShapeError):
            protected_solve(rng.uniform(size=(3, 3)) + 3 * np.eye(3), np.ones(4))


class TestFaultBehaviour:
    def test_factorisation_fault_raises(self, rng):
        a, b, _ = _system(rng, 32)

        def strike(k, work):
            if k == 10:
                work[20, 25] += 1e-2

        with pytest.raises(SolveVerificationError, match="factorisation"):
            protected_solve(a, b, fault_hook=strike)

    def test_refinement_repairs_marginal_factor_noise(self, rng):
        """A perturbation below the factorisation check's radar but above
        the residual tolerance is repaired by iterative refinement."""
        a, b, x_true = _system(rng, 32)
        clean = protected_solve(a, b)

        # Perturb the solution path indirectly: solve with a slightly
        # damaged U by monkey-patching through the public API is intrusive;
        # instead verify refinement converges from a degraded start by
        # solving a system whose first solve leaves a large residual.
        # Construct it by solving with float32-truncated factors.
        from repro.abft.solve import _back_substitute, _forward_substitute

        x0 = _back_substitute(
            clean.lu.u.astype(np.float32).astype(np.float64),
            _forward_substitute(
                clean.lu.l.astype(np.float32).astype(np.float64), b
            ),
        )
        # The degraded solution has a residual far beyond tolerance...
        assert np.max(np.abs(b - a @ x0)) > clean.report.tolerance
        # ...and one refinement step with the good factors repairs it.
        r = b - a @ x0
        x1 = x0 + _back_substitute(clean.lu.u, _forward_substitute(clean.lu.l, r))
        assert np.max(np.abs(b - a @ x1)) <= clean.report.tolerance

    def test_unachievable_tolerance_raises(self, rng):
        """A residual tolerance below what refinement can reach must fail
        loudly rather than loop (e.g. a user-supplied over-tight scheme)."""
        from repro.bounds.base import BoundScheme

        class ResidualOnlyTight(BoundScheme):
            # Loose for the factorisation check (ctx.n = 32), impossible
            # for the residual check (ctx.n = 33).
            def epsilon(self, ctx):
                return 1e-30 if ctx.n == 33 else 1.0

        a, b, _ = _system(rng, 32)
        with pytest.raises(SolveVerificationError, match="residual"):
            protected_solve(a, b, scheme=ResidualOnlyTight(), max_refinements=2)

    def test_overtight_scheme_fails_at_factorisation(self, rng):
        from repro.bounds.fixed import FixedBound

        a, b, _ = _system(rng, 32)
        with pytest.raises(SolveVerificationError, match="factorisation"):
            protected_solve(a, b, scheme=FixedBound(1e-30))

    def test_singular_system_raises_pivot_error(self):
        from repro.abft.lu import SingularPivotError

        with pytest.raises(SingularPivotError):
            protected_solve(np.zeros((4, 4)), np.zeros(4))


class TestResultShape:
    def test_result_carries_evidence(self, rng):
        a, b, _ = _system(rng, 16)
        result = protected_solve(a, b)
        assert isinstance(result, ProtectedSolveResult)
        assert result.lu.update_scale > 0
        assert result.report.tolerance > 0
