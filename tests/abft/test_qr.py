"""Checksum-protected QR factorisation."""

import numpy as np
import pytest

from repro.abft.qr import plain_qr, protected_qr
from repro.errors import ShapeError


class TestFactorisation:
    def test_factors_reconstruct(self, rng):
        a = rng.uniform(-1, 1, (48, 32))
        result = protected_qr(a)
        assert np.allclose(result.q @ result.r, a, atol=1e-12)
        assert not result.detected

    def test_q_orthogonal(self, rng):
        a = rng.uniform(-1, 1, (30, 30))
        result = protected_qr(a)
        assert np.allclose(result.q @ result.q.T, np.eye(30), atol=1e-12)

    def test_r_upper_triangular(self, rng):
        a = rng.uniform(-1, 1, (20, 12))
        result = protected_qr(a)
        assert np.allclose(np.tril(result.r, -1), 0.0)

    def test_matches_numpy_up_to_signs(self, rng):
        a = rng.uniform(-1, 1, (16, 16))
        result = protected_qr(a)
        _, r_np = np.linalg.qr(a)
        # QR is unique up to the sign of each row of R.
        assert np.allclose(np.abs(np.diag(result.r)), np.abs(np.diag(r_np)), rtol=1e-10)

    def test_plain_matches_protected(self, rng):
        a = rng.uniform(-1, 1, (12, 8))
        q1, r1 = plain_qr(a)
        result = protected_qr(a)
        assert np.array_equal(q1, result.q)
        assert np.array_equal(r1, result.r)

    def test_validation(self, rng):
        with pytest.raises(ShapeError):
            protected_qr(rng.uniform(size=(4, 8)))  # m < n
        with pytest.raises(ShapeError):
            protected_qr(rng.uniform(size=8))

    def test_rank_deficient_column_tolerated(self, rng):
        a = rng.uniform(-1, 1, (16, 8))
        a[:, 3] = 0.0
        result = protected_qr(a)
        assert np.allclose(result.q @ result.r, a, atol=1e-12)


class TestChecksumInvariant:
    def test_fault_free_passes_various_scales(self, rng):
        for scale in (1.0, 1e3, 1e-3):
            a = rng.uniform(-scale, scale, (40, 40))
            result = protected_qr(a)
            assert not result.detected, result.report.failed_rows

    def test_invariant_is_rounding_level(self, rng):
        a = rng.uniform(-1, 1, (32, 32))
        result = protected_qr(a)
        assert result.report.discrepancies.max() < result.report.epsilons.min()

    def test_injected_error_detected(self, rng):
        a = rng.uniform(-1, 1, (40, 40))

        def strike(k, work):
            if k == 15:
                work[25, 30] += 1e-3

        result = protected_qr(a, fault_hook=strike)
        assert result.detected
        assert 25 in result.report.failed_rows

    def test_checksum_column_error_detected(self, rng):
        a = rng.uniform(-1, 1, (32, 32))

        def strike(k, work):
            if k == 10:
                work[20, 32] += 1e-3

        result = protected_qr(a, fault_hook=strike)
        assert result.detected

    def test_sub_tolerance_error_tolerated(self, rng):
        a = rng.uniform(-1, 1, (32, 32))

        def strike(k, work):
            if k == 10:
                work[20, 25] += 1e-17

        result = protected_qr(a, fault_hook=strike)
        assert not result.detected

    def test_nan_detected(self, rng):
        a = rng.uniform(-1, 1, (16, 16))

        def strike(k, work):
            if k == 4:
                work[8, 9] = float("nan")

        result = protected_qr(a, fault_hook=strike)
        assert result.detected

    def test_check_false_skips(self, rng):
        a = rng.uniform(-1, 1, (16, 16))
        result = protected_qr(a, check=False)
        assert not result.detected


class TestLeastSquaresWorkflow:
    def test_protected_least_squares(self, rng):
        """QR factors from the protected routine solve LS problems."""
        from scipy.linalg import solve_triangular

        m, n = 60, 20
        a = rng.uniform(-1, 1, (m, n))
        x_true = rng.uniform(-1, 1, n)
        b = a @ x_true
        result = protected_qr(a)
        assert not result.detected
        qtb = result.q.T @ b
        x = solve_triangular(result.r[:n, :n], qtb[:n])
        assert np.allclose(x, x_true, rtol=1e-8)
