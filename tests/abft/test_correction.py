"""Single-error location and correction."""

import numpy as np
import pytest

from repro.abft.checking import check_partitioned
from repro.abft.correction import correct_single_error
from repro.abft.encoding import (
    encode_partitioned_columns,
    encode_partitioned_rows,
)
from repro.abft.providers import ConstantEpsilonProvider
from repro.errors import CorrectionError

EPS = ConstantEpsilonProvider(1e-9)


@pytest.fixture
def setup(rng):
    a = rng.uniform(-1, 1, (64, 48))
    b = rng.uniform(-1, 1, (48, 64))
    a_cc, rows = encode_partitioned_columns(a, 32)
    b_rc, cols = encode_partitioned_rows(b, 32)
    return a_cc @ b_rc, rows, cols


def _corrupt_and_correct(c, rows, cols, r, q, delta):
    corrupted = c.copy()
    corrupted[r, q] += delta
    report = check_partitioned(corrupted, rows, cols, EPS)
    return correct_single_error(corrupted, report, rows, cols, EPS)


class TestCorrection:
    def test_data_element_restored(self, setup):
        c, rows, cols = setup
        result = _corrupt_and_correct(c, rows, cols, 10, 20, 0.25)
        assert result.position == (10, 20)
        assert result.magnitude == pytest.approx(0.25, rel=1e-9)
        assert result.corrected[10, 20] == pytest.approx(c[10, 20], rel=1e-12)

    def test_checksum_element_restored(self, setup):
        c, rows, cols = setup
        cs = rows.checksum_index(0)
        result = _corrupt_and_correct(c, rows, cols, cs, 5, -0.125)
        assert result.position == (cs, 5)
        assert result.corrected[cs, 5] == pytest.approx(c[cs, 5], rel=1e-12)

    def test_row_and_column_estimates_agree(self, setup):
        c, rows, cols = setup
        result = _corrupt_and_correct(c, rows, cols, 7, 33, 1.5)
        assert result.estimate_gap < 1e-10

    def test_corrected_matrix_passes_recheck(self, setup):
        c, rows, cols = setup
        result = _corrupt_and_correct(c, rows, cols, 40, 50, 2.0)
        recheck = check_partitioned(result.corrected, rows, cols, EPS)
        assert not recheck.error_detected

    def test_original_not_mutated(self, setup):
        c, rows, cols = setup
        corrupted = c.copy()
        corrupted[3, 3] += 1.0
        report = check_partitioned(corrupted, rows, cols, EPS)
        before = corrupted.copy()
        correct_single_error(corrupted, report, rows, cols, EPS)
        assert np.array_equal(corrupted, before)

    def test_no_error_raises(self, setup):
        c, rows, cols = setup
        report = check_partitioned(c, rows, cols, EPS)
        with pytest.raises(CorrectionError, match="no located errors"):
            correct_single_error(c, report, rows, cols, EPS)

    def test_multiple_errors_refused(self, setup):
        c, rows, cols = setup
        corrupted = c.copy()
        corrupted[1, 2] += 1.0
        corrupted[3, 4] += 1.0
        report = check_partitioned(corrupted, rows, cols, EPS)
        with pytest.raises(CorrectionError, match="candidate locations"):
            correct_single_error(corrupted, report, rows, cols, EPS)

    def test_errors_in_different_blocks_both_correctable_iteratively(
        self, setup
    ):
        """Two single errors in *different* blocks can be corrected one at a
        time (each block's intersection is unambiguous)... but the current
        single-shot API refuses multi-location reports; verify the refusal
        is consistent."""
        c, rows, cols = setup
        corrupted = c.copy()
        corrupted[1, 2] += 1.0  # block (0, 0)
        corrupted[40, 50] += 1.0  # block (1, 1)
        report = check_partitioned(corrupted, rows, cols, EPS)
        assert len(report.located_errors) == 2
        with pytest.raises(CorrectionError):
            correct_single_error(corrupted, report, rows, cols, EPS)
