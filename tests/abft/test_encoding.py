"""Checksum encodings and the partitioned layout index arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abft.encoding import (
    PartitionedLayout,
    encode_column_checksums,
    encode_full,
    encode_partitioned_columns,
    encode_partitioned_rows,
    encode_row_checksums,
    pad_to_block_multiple,
    strip_data_columns,
    strip_data_rows,
)
from repro.errors import EncodingError, ShapeError


class TestFullEncoding:
    def test_column_checksums(self, rng):
        a = rng.uniform(-1, 1, (5, 7))
        a_cc = encode_column_checksums(a)
        assert a_cc.shape == (6, 7)
        assert np.allclose(a_cc[5], a.sum(axis=0))
        assert np.array_equal(a_cc[:5], a)

    def test_row_checksums(self, rng):
        b = rng.uniform(-1, 1, (4, 6))
        b_rc = encode_row_checksums(b)
        assert b_rc.shape == (4, 7)
        assert np.allclose(b_rc[:, 6], b.sum(axis=1))

    def test_full_checksum_product_property(self, rng):
        """Huang/Abraham: C_fc = A_cc @ B_rc has consistent checksums."""
        a = rng.uniform(-1, 1, (5, 8))
        b = rng.uniform(-1, 1, (8, 6))
        a_cc, b_rc = encode_full(a, b)
        c = a_cc @ b_rc
        assert np.allclose(c[-1, :], c[:-1, :].sum(axis=0))
        assert np.allclose(c[:, -1], c[:, :-1].sum(axis=1))

    def test_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            encode_column_checksums(rng.uniform(size=5))
        with pytest.raises(ShapeError):
            encode_full(rng.uniform(size=(3, 4)), rng.uniform(size=(5, 3)))


class TestPartitionedLayout:
    def test_basic_counts(self):
        layout = PartitionedLayout(data_rows=128, block_size=32)
        assert layout.num_blocks == 4
        assert layout.encoded_rows == 132
        assert layout.stride == 33

    def test_checksum_indices(self):
        layout = PartitionedLayout(data_rows=64, block_size=32)
        assert layout.checksum_index(0) == 32
        assert layout.checksum_index(1) == 65
        assert np.array_equal(layout.all_checksum_indices(), [32, 65])

    def test_data_indices_partition(self):
        layout = PartitionedLayout(data_rows=96, block_size=32)
        all_data = layout.all_data_indices()
        all_cs = layout.all_checksum_indices()
        assert len(all_data) == 96
        assert len(set(all_data.tolist()) | set(all_cs.tolist())) == 99

    @given(st.integers(1, 16), st.integers(1, 8))
    def test_index_maps_are_inverse_bijections(self, blocks, bs):
        layout = PartitionedLayout(data_rows=blocks * bs, block_size=bs)
        for data_idx in range(layout.data_rows):
            enc = layout.to_encoded_index(data_idx)
            assert not layout.is_checksum_index(enc)
            assert layout.to_data_index(enc) == data_idx

    def test_to_data_index_rejects_checksum_rows(self):
        layout = PartitionedLayout(data_rows=32, block_size=32)
        with pytest.raises(EncodingError):
            layout.to_data_index(32)

    def test_out_of_range_indices(self):
        layout = PartitionedLayout(data_rows=32, block_size=32)
        with pytest.raises(IndexError):
            layout.checksum_index(1)
        with pytest.raises(IndexError):
            layout.to_encoded_index(32)
        with pytest.raises(IndexError):
            layout.is_checksum_index(33)

    def test_non_divisible_rejected(self):
        with pytest.raises(EncodingError, match="not divisible"):
            PartitionedLayout(data_rows=33, block_size=32)

    def test_invalid_block_size(self):
        with pytest.raises(EncodingError):
            PartitionedLayout(data_rows=32, block_size=0)


class TestPartitionedEncoding:
    def test_column_encoding_structure(self, rng):
        a = rng.uniform(-1, 1, (64, 48))
        a_cc, layout = encode_partitioned_columns(a, 32)
        assert a_cc.shape == (66, 48)
        # Data rows preserved in order.
        assert np.array_equal(a_cc[layout.all_data_indices()], a)
        # Each checksum row sums its block.
        for blk in range(2):
            expected = a[blk * 32 : (blk + 1) * 32].sum(axis=0)
            assert np.allclose(a_cc[layout.checksum_index(blk)], expected)

    def test_row_encoding_is_transpose_of_column(self, rng):
        b = rng.uniform(-1, 1, (48, 64))
        b_rc, layout = encode_partitioned_rows(b, 32)
        a_cc, layout_t = encode_partitioned_columns(b.T, 32)
        assert np.array_equal(b_rc, a_cc.T)
        assert layout.encoded_rows == layout_t.encoded_rows

    def test_partitioned_product_checksum_property(self, rng):
        """The key invariant: a plain product of partitioned-encoded
        operands yields per-block full-checksum sub-matrices."""
        a = rng.uniform(-1, 1, (64, 32))
        b = rng.uniform(-1, 1, (32, 96))
        a_cc, rows = encode_partitioned_columns(a, 32)
        b_rc, cols = encode_partitioned_rows(b, 32)
        c = a_cc @ b_rc
        for bi in range(rows.num_blocks):
            data = c[rows.data_indices(bi), :]
            assert np.allclose(data.sum(axis=0), c[rows.checksum_index(bi), :])
        for bj in range(cols.num_blocks):
            data = c[:, cols.data_indices(bj)]
            assert np.allclose(data.sum(axis=1), c[:, cols.checksum_index(bj)])

    @settings(max_examples=25)
    @given(st.integers(1, 4), st.integers(1, 4), st.integers(2, 8))
    def test_roundtrip_random_shapes(self, row_blocks, col_blocks, bs):
        rng = np.random.default_rng(row_blocks * 100 + col_blocks * 10 + bs)
        a = rng.uniform(-1, 1, (row_blocks * bs, col_blocks * bs))
        a_cc, layout = encode_partitioned_columns(a, bs)
        assert np.array_equal(a_cc[layout.all_data_indices()], a)


class TestPadding:
    def test_no_padding_needed(self, rng):
        m = rng.uniform(size=(64, 64))
        padded, (r, c) = pad_to_block_multiple(m, 32)
        assert padded is m
        assert (r, c) == (0, 0)

    def test_pads_both_axes(self, rng):
        m = rng.uniform(size=(33, 50))
        padded, (r, c) = pad_to_block_multiple(m, 32)
        assert padded.shape == (64, 64)
        assert (r, c) == (31, 14)
        assert np.array_equal(padded[:33, :50], m)
        assert np.all(padded[33:, :] == 0)
        assert np.all(padded[:, 50:] == 0)

    def test_single_axis(self, rng):
        m = rng.uniform(size=(33, 50))
        padded, (r, c) = pad_to_block_multiple(m, 32, axis=0)
        assert padded.shape == (64, 50)
        assert c == 0

    def test_padding_preserves_product(self, rng):
        """Zero padding must not change the data part of the product."""
        a = rng.uniform(-1, 1, (30, 20))
        b = rng.uniform(-1, 1, (20, 45))
        a_pad, _ = pad_to_block_multiple(a, 16, axis=0)
        b_pad, _ = pad_to_block_multiple(b, 16, axis=1)
        c_pad = a_pad @ b_pad
        assert np.allclose(c_pad[:30, :45], a @ b)


class TestStripDataHelpers:
    """Block-view strips of one encoded axis (the serving layer's path)."""

    def test_strip_data_rows_roundtrip(self, rng):
        a = rng.uniform(-1, 1, (96, 40))
        encoded, layout = encode_partitioned_columns(a, 32)
        stripped = strip_data_rows(encoded, layout)
        assert np.array_equal(stripped, a)
        assert stripped.flags.c_contiguous
        # Bitwise the fancy-index gather it replaced.
        assert np.array_equal(stripped, encoded[layout.all_data_indices()])

    def test_strip_data_columns_roundtrip(self, rng):
        b = rng.uniform(-1, 1, (40, 96))
        encoded, layout = encode_partitioned_rows(b, 32)
        stripped = strip_data_columns(encoded, layout)
        assert np.array_equal(stripped, b)
        assert np.array_equal(stripped, encoded[:, layout.all_data_indices()])

    def test_strip_preserves_dtype(self, rng):
        a = rng.uniform(-1, 1, (64, 8)).astype(np.float32)
        encoded, layout = encode_partitioned_columns(a, 32)
        assert strip_data_rows(encoded, layout).dtype == np.float32

    def test_shape_validation(self, rng):
        a = rng.uniform(-1, 1, (96, 40))
        encoded, layout = encode_partitioned_columns(a, 32)
        with pytest.raises(ShapeError):
            strip_data_rows(encoded[:-1], layout)
        with pytest.raises(ShapeError):
            strip_data_columns(encoded, layout)
