"""Partitioned weighted checksums: block-granular column-side location."""

import numpy as np
import pytest

from repro.abft.weighted_partitioned import (
    PartitionedWeightedLayout,
    encode_partitioned_weighted_columns,
    partitioned_weighted_matmul,
)
from repro.errors import CorrectionError, EncodingError, ShapeError


@pytest.fixture
def pair(rng):
    return rng.uniform(-1, 1, (96, 64)), rng.uniform(-1, 1, (64, 80))


class TestLayout:
    def test_counts(self):
        layout = PartitionedWeightedLayout(data_rows=96, block_size=32)
        assert layout.num_blocks == 3
        assert layout.stride == 34
        assert layout.encoded_rows == 102

    def test_indices(self):
        layout = PartitionedWeightedLayout(data_rows=64, block_size=32)
        assert layout.plain_index(0) == 32
        assert layout.weighted_index(0) == 33
        assert layout.plain_index(1) == 66
        assert len(layout.all_data_indices()) == 64

    def test_validation(self):
        with pytest.raises(EncodingError):
            PartitionedWeightedLayout(data_rows=33, block_size=32)
        layout = PartitionedWeightedLayout(data_rows=32, block_size=32)
        with pytest.raises(IndexError):
            layout.plain_index(1)


class TestEncoding:
    def test_block_checksums(self, rng):
        a = rng.uniform(-1, 1, (64, 48))
        a_wc, layout = encode_partitioned_weighted_columns(a, 32)
        assert a_wc.shape == (68, 48)
        w = np.arange(1.0, 33.0)
        for blk in range(2):
            rows = slice(blk * 32, (blk + 1) * 32)
            assert np.allclose(a_wc[layout.plain_index(blk)], a[rows].sum(axis=0))
            assert np.allclose(a_wc[layout.weighted_index(blk)], w @ a[rows])
        assert np.array_equal(a_wc[layout.all_data_indices()], a)


class TestCheckAndCorrect:
    def test_fault_free_passes(self, pair):
        a, b = pair
        result, _ = partitioned_weighted_matmul(a, b, block_size=32)
        assert not result.detected
        assert np.allclose(result.c, a @ b)

    def test_fault_free_passes_wide_range(self, rng):
        a = rng.uniform(-100, 100, (64, 64))
        b = rng.uniform(-100, 100, (64, 64))
        result, _ = partitioned_weighted_matmul(a, b, block_size=64)
        assert not result.detected

    def test_exact_position_located_in_every_block(self, pair):
        """Both the block and the row-within-block resolve: the located
        index is *global* and exact."""
        a, b = pair
        result, checker = partitioned_weighted_matmul(a, b, block_size=32)
        for data_row in (0, 31, 32, 65, 95):
            corrupted = result.c_wc.copy()
            blk = data_row // 32
            encoded_row = blk * 34 + (data_row % 32)
            corrupted[encoded_row, 7] += 1e-3
            rechecked = checker.check(corrupted)
            assert len(rechecked.findings) == 1
            finding = rechecked.findings[0]
            assert finding.block_row == blk
            assert finding.column == 7
            assert finding.located_row == data_row

    def test_correct_restores_product(self, pair):
        a, b = pair
        result, checker = partitioned_weighted_matmul(a, b, block_size=32)
        corrupted = result.c_wc.copy()
        corrupted[2 * 34 + 5, 11] += 3e-3  # data row 69
        fixed = checker.check(corrupted).correct()
        assert np.allclose(fixed, a @ b, rtol=1e-10)

    def test_errors_in_two_blocks_both_flagged(self, pair):
        a, b = pair
        result, checker = partitioned_weighted_matmul(a, b, block_size=32)
        corrupted = result.c_wc.copy()
        corrupted[3, 5] += 1e-3
        corrupted[40, 9] += 1e-3  # a different block
        rechecked = checker.check(corrupted)
        assert len(rechecked.findings) == 2
        with pytest.raises(CorrectionError, match="flagged"):
            rechecked.correct()

    def test_block_local_weights_are_small(self, pair):
        """The point of partitioning the weighted row: weights stay 1..BS
        instead of 1..m, so the weighted checksum's magnitude (and its
        tolerance) grows with the block, not the matrix."""
        a, b = pair
        _, checker32 = partitioned_weighted_matmul(a, b, block_size=32)
        assert checker32.weights.max() == 32.0

    def test_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            partitioned_weighted_matmul(
                rng.uniform(size=(4, 5)), rng.uniform(size=(4, 5)), block_size=4
            )
