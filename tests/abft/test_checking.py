"""Checksum checking: discrepancies, findings, location, NaN safety."""

import numpy as np
import pytest

from repro.abft.checking import (
    CheckReport,
    check_partitioned,
    column_discrepancies,
    row_discrepancies,
)
from repro.abft.encoding import (
    encode_partitioned_columns,
    encode_partitioned_rows,
)
from repro.abft.providers import ConstantEpsilonProvider
from repro.errors import ShapeError


@pytest.fixture
def clean_result(rng):
    a = rng.uniform(-1, 1, (64, 32))
    b = rng.uniform(-1, 1, (32, 64))
    a_cc, rows = encode_partitioned_columns(a, 32)
    b_rc, cols = encode_partitioned_rows(b, 32)
    return a_cc @ b_rc, rows, cols


class TestDiscrepancies:
    def test_clean_result_has_tiny_discrepancies(self, clean_result):
        c, rows, cols = clean_result
        col_d = column_discrepancies(c, rows)
        row_d = row_discrepancies(c, cols)
        assert col_d.shape == (2, 66)
        assert row_d.shape == (66, 2)
        assert col_d.max() < 1e-12
        assert row_d.max() < 1e-12

    def test_corruption_shows_in_both_axes(self, clean_result):
        c, rows, cols = clean_result
        c = c.copy()
        c[5, 40] += 0.5
        assert column_discrepancies(c, rows)[0, 40] == pytest.approx(0.5, rel=1e-9)
        assert row_discrepancies(c, cols)[5, 1] == pytest.approx(0.5, rel=1e-9)

    def test_shape_validation(self, clean_result):
        _, rows, _ = clean_result
        with pytest.raises(ShapeError):
            column_discrepancies(np.zeros((10, 10)), rows)


class TestCheckPartitioned:
    def test_clean_passes(self, clean_result):
        c, rows, cols = clean_result
        report = check_partitioned(c, rows, cols, ConstantEpsilonProvider(1e-9))
        assert not report.error_detected
        assert report.num_failed == 0
        assert report.num_checks == 2 * 66 + 66 * 2
        assert report.located_errors == []

    def test_data_corruption_detected_and_located(self, clean_result):
        c, rows, cols = clean_result
        c = c.copy()
        c[10, 7] += 1e-3
        report = check_partitioned(c, rows, cols, ConstantEpsilonProvider(1e-9))
        assert report.error_detected
        axes = {f.axis for f in report.findings}
        assert axes == {"column", "row"}
        assert report.located_errors == [(10, 7)]

    def test_checksum_row_corruption_located(self, clean_result):
        c, rows, cols = clean_result
        c = c.copy()
        cs_row = rows.checksum_index(1)
        c[cs_row, 3] += 1e-3
        report = check_partitioned(c, rows, cols, ConstantEpsilonProvider(1e-9))
        assert report.located_errors == [(cs_row, 3)]

    def test_corner_checksum_corruption_located(self, clean_result):
        c, rows, cols = clean_result
        c = c.copy()
        r, q = rows.checksum_index(0), cols.checksum_index(0)
        c[r, q] += 1e-3
        report = check_partitioned(c, rows, cols, ConstantEpsilonProvider(1e-9))
        assert (r, q) in report.located_errors

    def test_nan_result_always_detected(self, clean_result):
        """A NaN in the result must fail the check even though NaN
        comparisons are false — the explicit non-finite guard."""
        c, rows, cols = clean_result
        c = c.copy()
        c[2, 2] = float("nan")
        report = check_partitioned(
            c, rows, cols, ConstantEpsilonProvider(float("1e300"))
        )
        assert report.error_detected

    def test_inf_result_detected(self, clean_result):
        c, rows, cols = clean_result
        c = c.copy()
        c[2, 2] = float("inf")
        report = check_partitioned(c, rows, cols, ConstantEpsilonProvider(1e-9))
        assert report.error_detected

    def test_sub_tolerance_corruption_passes(self, clean_result):
        """Errors below the tolerance are tolerable by design."""
        c, rows, cols = clean_result
        c = c.copy()
        c[10, 7] += 1e-14
        report = check_partitioned(c, rows, cols, ConstantEpsilonProvider(1e-9))
        assert not report.error_detected

    def test_two_errors_same_block_give_cross_product_locations(
        self, clean_result
    ):
        c, rows, cols = clean_result
        c = c.copy()
        c[1, 2] += 1e-3
        c[3, 4] += 1e-3
        report = check_partitioned(c, rows, cols, ConstantEpsilonProvider(1e-9))
        # Two row + two column failures in one block: 4 candidate positions
        # (the classic ABFT ambiguity for multi-errors).
        located = set(report.located_errors)
        assert {(1, 2), (3, 4), (1, 4), (3, 2)} <= located

    def test_wrong_shape_rejected(self, clean_result):
        _, rows, cols = clean_result
        with pytest.raises(ShapeError):
            check_partitioned(
                np.zeros((5, 5)), rows, cols, ConstantEpsilonProvider(1.0)
            )


class TestCheckReport:
    def test_findings_by_axis(self):
        report = CheckReport()
        assert report.findings_by_axis("row") == []
        assert not report.error_detected
