"""Single-precision (binary32) protected multiplication.

GPUs are single-precision machines first; the A-ABFT model applies with
``t = 24``.  These tests verify the whole scheme end to end in float32:
correct bounds (no false positives despite ~1e9x larger rounding errors),
detection of corruptions sized relative to binary32 rounding, and that the
binary64 bounds would be *wrong* for binary32 data (the reason ``t``
matters).
"""

import numpy as np
import pytest

from repro.abft.checking import check_partitioned
from repro.abft.multiply import aabft_matmul, sea_abft_matmul
from repro.bounds.base import BoundContext
from repro.bounds.probabilistic import ProbabilisticBound
from repro.fp.constants import BINARY32, BINARY64


@pytest.fixture
def pair32(rng):
    a = rng.uniform(-1.0, 1.0, (128, 128)).astype(np.float32)
    b = rng.uniform(-1.0, 1.0, (128, 128)).astype(np.float32)
    return a, b


class TestFloat32Multiply:
    def test_result_dtype_and_value(self, pair32):
        a, b = pair32
        result = aabft_matmul(a, b, block_size=64)
        assert result.c.dtype == np.float32
        assert np.allclose(result.c, a @ b, rtol=1e-6)

    def test_no_false_positives_binary32_bounds(self, pair32):
        a, b = pair32
        assert not aabft_matmul(a, b, block_size=64).detected
        assert not sea_abft_matmul(a, b, block_size=64).detected

    def test_binary64_bounds_would_false_positive(self, pair32):
        """Using t = 53 tolerances on binary32 data flags everything —
        the demonstration that the precision parameter is load-bearing."""
        a, b = pair32
        result = aabft_matmul(a, b, block_size=64)
        wrong_provider = result.provider
        wrong_provider.scheme = ProbabilisticBound(omega=3.0, fmt=BINARY64)
        report = check_partitioned(
            result.c_fc.astype(np.float64),
            result.row_layout,
            result.col_layout,
            wrong_provider,
        )
        assert report.error_detected  # false positives everywhere

    def test_detects_above_rounding_corruption(self, pair32):
        a, b = pair32
        result = aabft_matmul(a, b, block_size=64)
        corrupted = result.c_fc.astype(np.float64)
        corrupted[5, 9] += 1e-2  # large vs float32 rounding (~1e-5)
        report = check_partitioned(
            corrupted, result.row_layout, result.col_layout, result.provider
        )
        assert report.error_detected
        assert (5, 9) in report.located_errors

    def test_tolerates_binary32_rounding_sized_noise(self, pair32):
        """Perturbations at the binary32 rounding level are, by design,
        inside the tolerance."""
        a, b = pair32
        result = aabft_matmul(a, b, block_size=64)
        corrupted = result.c_fc.astype(np.float64)
        corrupted[5, 9] += 1e-7
        report = check_partitioned(
            corrupted, result.row_layout, result.col_layout, result.provider
        )
        assert not report.error_detected

    def test_mixed_precision_promotes_to_double(self, rng):
        a = rng.uniform(-1, 1, (64, 64)).astype(np.float32)
        b = rng.uniform(-1, 1, (64, 64))  # float64
        result = aabft_matmul(a, b, block_size=64)
        assert result.c.dtype == np.float64
        assert not result.detected


class TestBinary32Bounds:
    def test_epsilon_ratio_matches_precision_gap(self):
        """binary32 vs binary64 tolerance ratio is 2^(53-24) = 2^29."""
        ctx = BoundContext(n=128, m=64, upper_bound=1.0)
        eps32 = ProbabilisticBound(fmt=BINARY32).epsilon(ctx)
        eps64 = ProbabilisticBound(fmt=BINARY64).epsilon(ctx)
        assert eps32 / eps64 == pytest.approx(2.0 ** (53 - 24), rel=1e-6)

    def test_bound_covers_observed_float32_errors(self, rng):
        n, trials = 128, 100
        a = rng.uniform(-1, 1, (trials, n)).astype(np.float32)
        b = rng.uniform(-1, 1, (trials, n)).astype(np.float32)
        computed = np.einsum("ij,ij->i", a, b)  # float32 accumulation
        exact = np.einsum(
            "ij,ij->i", a.astype(np.float64), b.astype(np.float64)
        )
        errors = np.abs(computed.astype(np.float64) - exact)
        y = float(np.max(np.abs(a.astype(np.float64) * b)))
        eps = ProbabilisticBound(omega=3.0, fmt=BINARY32).epsilon(
            BoundContext(n=n, m=1, upper_bound=y)
        )
        assert np.all(errors < eps)
