"""The pipeline with the structure-faithful tiled matmul kernel."""

import numpy as np
import pytest

from repro.abft.pipeline import AABFTPipeline, _tile_divisor
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultSite, FaultSpec
from repro.fp.errorvec import ErrorVector
from repro.gpusim.simulator import GpuSimulator


class TestTileDivisor:
    def test_odd_strides(self):
        assert _tile_divisor(65) == 5
        assert _tile_divisor(33) == 3
        assert _tile_divisor(17) == 1  # prime beyond the preferred max

    def test_even_strides(self):
        assert _tile_divisor(64) == 8
        assert _tile_divisor(12) == 6


class TestTiledPipeline:
    def test_matches_block_kernel_pipeline(self, rng):
        a = rng.uniform(-1, 1, (96, 96))
        b = rng.uniform(-1, 1, (96, 96))
        tiled = AABFTPipeline(
            GpuSimulator(), block_size=32, matmul_kernel="tiled"
        ).run(a, b)
        block = AABFTPipeline(GpuSimulator(), block_size=32).run(a, b)
        assert np.allclose(tiled.c, block.c, rtol=1e-13)
        assert not tiled.detected
        assert not block.detected

    def test_fault_detected_through_tiled_kernel(self, rng):
        a = rng.uniform(-1, 1, (64, 64))
        b = rng.uniform(-1, 1, (64, 64))
        spec = FaultSpec(
            sm_id=0,
            site=FaultSite.INNER_MUL,
            module_row=7,
            module_col=8,
            error_vector=ErrorVector(
                mask=1 << 50, field="mantissa", bit_indices=(50,)
            ),
            k_injection=30,
        )
        sim = GpuSimulator()
        pipeline = AABFTPipeline(sim, block_size=32, matmul_kernel="tiled")
        result = pipeline.run(a, b, injector=FaultInjector(spec, rng))
        assert result.detected
        assert result.report.located_errors

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError, match="matmul_kernel"):
            AABFTPipeline(GpuSimulator(), matmul_kernel="warp")
