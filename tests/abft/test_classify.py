"""Error classification into rounding / tolerable / critical (Sec. VI-C)."""

import pytest

from repro.abft.classify import ErrorClass, ErrorClassifier
from repro.bounds.probabilistic import (
    inner_product_mean_bound,
    inner_product_sigma_bound,
)

T = 53
N = 512
Y = 1.0


@pytest.fixture
def classifier():
    return ErrorClassifier(omega=3.0)


class TestClassification:
    def test_zero_error_is_rounding(self, classifier):
        c = classifier.classify(0.0, N, Y)
        assert c.error_class is ErrorClass.ROUNDING
        assert not c.is_critical

    def test_error_below_expectation_is_rounding(self, classifier):
        ev = inner_product_mean_bound(N, Y, T)
        c = classifier.classify(ev * 0.5, N, Y)
        assert c.error_class is ErrorClass.ROUNDING

    def test_error_within_three_sigma_is_tolerable(self, classifier):
        sigma = inner_product_sigma_bound(N, Y, T)
        c = classifier.classify(2.0 * sigma, N, Y)
        assert c.error_class is ErrorClass.TOLERABLE
        assert not c.is_critical

    def test_error_beyond_three_sigma_is_critical(self, classifier):
        sigma = inner_product_sigma_bound(N, Y, T)
        c = classifier.classify(10.0 * sigma, N, Y)
        assert c.error_class is ErrorClass.CRITICAL
        assert c.is_critical

    def test_sign_is_irrelevant(self, classifier):
        sigma = inner_product_sigma_bound(N, Y, T)
        assert classifier.classify(-10 * sigma, N, Y).is_critical

    def test_large_errors_always_critical(self, classifier):
        assert classifier.classify(1.0, N, Y).is_critical

    def test_classification_carries_model_values(self, classifier):
        c = classifier.classify(1e-3, N, Y)
        assert c.sigma == pytest.approx(inner_product_sigma_bound(N, Y, T))
        assert c.expectation == pytest.approx(inner_product_mean_bound(N, Y, T))
        assert c.omega == 3.0

    def test_omega_controls_threshold(self):
        sigma = inner_product_sigma_bound(N, Y, T)
        loose = ErrorClassifier(omega=5.0).classify(4 * sigma, N, Y)
        tight = ErrorClassifier(omega=3.0).classify(4 * sigma, N, Y)
        assert loose.error_class is ErrorClass.TOLERABLE
        assert tight.error_class is ErrorClass.CRITICAL

    def test_fma_tightens_threshold(self):
        sigma_fma = inner_product_sigma_bound(N, Y, T, fma=True)
        delta = 2.9 * sigma_fma
        assert not ErrorClassifier(fma=True).classify(delta, N, Y).is_critical
        # The same delta relative to the larger non-FMA sigma is still
        # tolerable; scale above the non-FMA threshold to flip it.
        sigma = inner_product_sigma_bound(N, Y, T, fma=False)
        assert ErrorClassifier(fma=True).classify(3.1 * sigma, N, Y).is_critical

    def test_larger_y_raises_threshold(self, classifier):
        delta = 1e-12
        small_y = classifier.classify(delta, N, 0.01)
        large_y = classifier.classify(delta, N, 100.0)
        assert small_y.is_critical
        assert not large_y.is_critical
