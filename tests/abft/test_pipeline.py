"""The GPU-simulated A-ABFT pipeline: equivalence with the host API and
fault behaviour end to end."""

import numpy as np
import pytest

from repro.abft.multiply import aabft_matmul, sea_abft_matmul
from repro.abft.pipeline import AABFTPipeline
from repro.errors import ConfigurationError, ShapeError
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultSite, FaultSpec
from repro.fp.errorvec import ErrorVector
from repro.gpusim.simulator import GpuSimulator


@pytest.fixture
def pair(rng):
    a = rng.uniform(-1.0, 1.0, (96, 96))
    b = rng.uniform(-1.0, 1.0, (96, 96))
    return a, b


class TestFunctionalEquivalence:
    def test_result_matches_host_api(self, pair):
        a, b = pair
        sim = GpuSimulator()
        pipeline = AABFTPipeline(sim, block_size=32, p=2)
        result = pipeline.run(a, b)
        host = aabft_matmul(a, b, block_size=32, p=2)
        assert np.allclose(result.c, host.c, rtol=1e-13)
        assert not result.detected

    def test_epsilons_match_host_api(self, pair):
        """The pipeline's autonomously determined tolerances equal the
        host implementation's (same top-p data, same model)."""
        a, b = pair
        sim = GpuSimulator()
        result = AABFTPipeline(sim, block_size=32, p=2).run(a, b)
        host = aabft_matmul(a, b, block_size=32, p=2)
        for blk in range(result.row_layout.num_blocks):
            for col in range(0, result.col_layout.encoded_rows, 7):
                assert result.provider.column_epsilon(blk, col) == pytest.approx(
                    host.provider.column_epsilon(blk, col), rel=1e-12
                )

    def test_sea_scheme_matches_host(self, pair):
        a, b = pair
        sim = GpuSimulator()
        result = AABFTPipeline(sim, block_size=32, scheme="sea").run(a, b)
        host = sea_abft_matmul(a, b, block_size=32)
        assert np.allclose(result.c, host.c)
        assert not result.detected

    def test_fixed_scheme(self, pair):
        a, b = pair
        sim = GpuSimulator()
        result = AABFTPipeline(sim, block_size=32, scheme="fixed", fixed_epsilon=1e-9).run(a, b)
        assert not result.detected

    def test_configuration_validation(self):
        sim = GpuSimulator()
        with pytest.raises(ConfigurationError):
            AABFTPipeline(sim, scheme="magic")
        with pytest.raises(ConfigurationError):
            AABFTPipeline(sim, scheme="fixed")

    def test_unpadded_operands_rejected(self, rng):
        sim = GpuSimulator()
        pipeline = AABFTPipeline(sim, block_size=32)
        with pytest.raises(ShapeError, match="multiples"):
            pipeline.run(rng.uniform(size=(33, 32)), rng.uniform(size=(32, 32)))


class TestPipelineTimings:
    def test_profiler_sees_all_pipeline_kernels(self, pair):
        a, b = pair
        sim = GpuSimulator()
        AABFTPipeline(sim, block_size=32).run(a, b)
        names = {r.kernel_name for r in sim.profiler.records}
        assert names == {
            "encode_columns",
            "encode_rows",
            "top_p_reduce",
            "matmul_block",
            "abft_check",
        }

    def test_reduction_overlapped_with_compute(self, pair):
        a, b = pair
        sim = GpuSimulator()
        result = AABFTPipeline(sim, block_size=32).run(a, b)
        compute = sim.stream("compute").seconds
        assert result.modelled_seconds == pytest.approx(compute)
        assert sim.stream("reduce").seconds < compute

    def test_sea_launches_norm_kernels(self, pair):
        a, b = pair
        sim = GpuSimulator()
        AABFTPipeline(sim, block_size=32, scheme="sea").run(a, b)
        names = {r.kernel_name for r in sim.profiler.records}
        assert "row_norms" in names and "column_norms" in names
        assert "top_p_reduce" not in names


class TestPipelineFaults:
    def _spec(self, site, bit, k=0):
        return FaultSpec(
            sm_id=1,
            site=site,
            module_row=7,
            module_col=9,
            error_vector=ErrorVector(
                mask=1 << bit, field="mantissa", bit_indices=(bit,)
            ),
            k_injection=k,
        )

    def test_high_mantissa_fault_detected_and_located(self, pair, rng):
        a, b = pair
        sim = GpuSimulator()
        pipeline = AABFTPipeline(sim, block_size=32)
        injector = FaultInjector(self._spec(FaultSite.MERGE_ADD, 50), rng)
        result = pipeline.run(a, b, injector=injector)
        assert result.detected
        act = injector.activation
        blk_per_row = result.col_layout.num_blocks
        blk_y, blk_x = divmod(act.linear_block_index, blk_per_row)
        expected = (
            blk_y * result.row_layout.stride + act.element_row,
            blk_x * result.col_layout.stride + act.element_col,
        )
        assert expected in result.report.located_errors

    def test_low_bit_fault_tolerated(self, pair, rng):
        a, b = pair
        sim = GpuSimulator()
        pipeline = AABFTPipeline(sim, block_size=32)
        injector = FaultInjector(
            self._spec(FaultSite.INNER_ADD, 0, k=95), rng
        )
        result = pipeline.run(a, b, injector=injector)
        assert not result.detected

    def test_detect_and_correct_end_to_end(self, pair, rng):
        from repro.abft.correction import correct_single_error

        a, b = pair
        sim = GpuSimulator()
        pipeline = AABFTPipeline(sim, block_size=32)
        injector = FaultInjector(self._spec(FaultSite.MERGE_ADD, 51), rng)
        result = pipeline.run(a, b, injector=injector)
        assert result.detected
        fix = correct_single_error(
            result.c_fc,
            result.report,
            result.row_layout,
            result.col_layout,
            result.provider,
        )
        data = fix.corrected[
            np.ix_(
                result.row_layout.all_data_indices(),
                result.col_layout.all_data_indices(),
            )
        ]
        assert np.allclose(data, a @ b, rtol=1e-12)
