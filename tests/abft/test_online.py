"""Online (panel-wise) ABFT: early detection and in-flight recovery."""

import numpy as np
import pytest

from repro.abft.online import online_abft_matmul
from repro.errors import CorrectionError, ShapeError


@pytest.fixture
def pair(rng):
    return rng.uniform(-1, 1, (128, 192)), rng.uniform(-1, 1, (192, 128))


class TestFaultFree:
    def test_result_matches_numpy(self, pair):
        a, b = pair
        result = online_abft_matmul(a, b, block_size=32, num_panels=4)
        assert np.allclose(result.c, a @ b, rtol=1e-12)
        assert not result.any_detected
        assert result.detection_panel is None
        assert len(result.events) == 4

    def test_single_panel_degenerates_to_offline(self, pair):
        a, b = pair
        result = online_abft_matmul(a, b, block_size=32, num_panels=1)
        assert np.allclose(result.c, a @ b)
        assert not result.any_detected

    def test_many_panels_no_false_positives(self, pair):
        """Inter-panel accumulation adds rounding; the per-panel bounds must
        absorb it."""
        a, b = pair
        result = online_abft_matmul(a, b, block_size=32, num_panels=12)
        assert not result.any_detected

    def test_uneven_panel_split(self, rng):
        a = rng.uniform(-1, 1, (64, 100))
        b = rng.uniform(-1, 1, (100, 64))
        result = online_abft_matmul(a, b, block_size=32, num_panels=3)
        assert np.allclose(result.c, a @ b)
        assert [e.processed_inner for e in result.events][-1] == 100

    def test_validation(self, rng):
        with pytest.raises(ShapeError):
            online_abft_matmul(
                rng.uniform(size=(60, 64)), rng.uniform(size=(64, 64)), block_size=32
            )
        with pytest.raises(ValueError, match="num_panels"):
            online_abft_matmul(
                rng.uniform(size=(64, 64)),
                rng.uniform(size=(64, 64)),
                block_size=32,
                num_panels=0,
            )


class TestDetectionAndRecovery:
    def test_early_detection_latency(self, pair):
        """A fault struck in panel 1 is detected at panel 1, not at the
        end — the point of online checking."""
        a, b = pair

        def strike(panel, c_fc):
            if panel == 1:
                c_fc[10, 20] += 1e-3

        result = online_abft_matmul(
            a, b, block_size=32, num_panels=4, corrupt_hook=strike
        )
        assert result.detection_panel == 1

    def test_recovery_heals_the_result(self, pair):
        a, b = pair

        def strike(panel, c_fc):
            if panel == 2:
                c_fc[5, 7] += 5e-2

        result = online_abft_matmul(
            a, b, block_size=32, num_panels=4, corrupt_hook=strike
        )
        assert result.recovered
        assert np.allclose(result.c, a @ b, rtol=1e-10)
        assert not result.final_report.error_detected

    def test_recovery_block_granularity(self, pair):
        """Only the implicated block is recomputed."""
        a, b = pair

        def strike(panel, c_fc):
            if panel == 0:
                c_fc[40, 50] += 1e-2  # block (1, 1) with BS=32 (stride 33)

        result = online_abft_matmul(
            a, b, block_size=32, num_panels=4, corrupt_hook=strike
        )
        recovered = result.events[0].recovered_blocks
        assert recovered == ((1, 1),)

    def test_multiple_faults_different_panels(self, pair):
        a, b = pair

        def strike(panel, c_fc):
            if panel in (0, 3):
                c_fc[3, 3] += 1e-2

        result = online_abft_matmul(
            a, b, block_size=32, num_panels=4, corrupt_hook=strike
        )
        detected_panels = [e.panel for e in result.events if e.detected]
        assert detected_panels == [0, 3]
        assert np.allclose(result.c, a @ b, rtol=1e-10)

    def test_persistent_fault_raises(self, pair):
        """A fault that reappears after every recomputation (e.g. corrupted
        input data) must surface as an error, not loop forever."""
        a, b = pair
        # A corrupted *input* reappears after every recomputation.
        a_bad = a.copy()
        a_bad[5, 7] = float("nan")
        with pytest.raises(CorrectionError, match="persists"):
            online_abft_matmul(a_bad, b, block_size=32, num_panels=4)

    def test_sub_tolerance_corruption_ignored(self, pair):
        a, b = pair

        def strike(panel, c_fc):
            if panel == 1:
                c_fc[10, 20] += 1e-16

        result = online_abft_matmul(
            a, b, block_size=32, num_panels=4, corrupt_hook=strike
        )
        assert not result.any_detected
