"""Epsilon providers: context assembly for the partitioned check."""

import numpy as np
import pytest

from repro.abft.encoding import (
    encode_partitioned_columns,
    encode_partitioned_rows,
)
from repro.abft.providers import (
    AABFTEpsilonProvider,
    ConstantEpsilonProvider,
    SEAEpsilonProvider,
)
from repro.bounds.probabilistic import ProbabilisticBound
from repro.bounds.sea import SEABound, sea_epsilon
from repro.bounds.upper_bound import (
    determine_upper_bound,
    top_p_of_columns,
    top_p_of_rows,
)


@pytest.fixture
def encoded(rng):
    a = rng.uniform(-1, 1, (64, 32))
    b = rng.uniform(-1, 1, (32, 64))
    a_cc, rows = encode_partitioned_columns(a, 32)
    b_rc, cols = encode_partitioned_rows(b, 32)
    return a_cc, b_rc, rows, cols


class TestConstantProvider:
    def test_constant(self):
        p = ConstantEpsilonProvider(0.5)
        assert p.column_epsilon(0, 0) == 0.5
        assert p.row_epsilon(7, 3) == 0.5


class TestAABFTProvider:
    def test_column_epsilon_uses_checksum_row_y(self, encoded):
        a_cc, b_rc, rows, cols = encoded
        row_tops = top_p_of_rows(a_cc, 2)
        col_tops = top_p_of_columns(b_rc, 2)
        scheme = ProbabilisticBound()
        provider = AABFTEpsilonProvider(scheme, row_tops, col_tops, rows, cols, 32)

        cs_row = rows.checksum_index(0)
        y = determine_upper_bound(row_tops[cs_row], col_tops[5])
        from repro.bounds.base import BoundContext

        expected = scheme.epsilon(BoundContext(n=32, m=32, upper_bound=y))
        assert provider.column_epsilon(0, 5) == pytest.approx(expected)

    def test_row_epsilon_uses_checksum_col_y(self, encoded):
        a_cc, b_rc, rows, cols = encoded
        row_tops = top_p_of_rows(a_cc, 2)
        col_tops = top_p_of_columns(b_rc, 2)
        provider = AABFTEpsilonProvider(
            ProbabilisticBound(), row_tops, col_tops, rows, cols, 32
        )
        cs_col = cols.checksum_index(1)
        y = determine_upper_bound(row_tops[3], col_tops[cs_col])
        assert provider.upper_bound(3, cs_col) == pytest.approx(y)
        assert provider.row_epsilon(3, 1) > 0

    def test_validates_top_counts(self, encoded):
        a_cc, b_rc, rows, cols = encoded
        with pytest.raises(ValueError, match="row top-p"):
            AABFTEpsilonProvider(
                ProbabilisticBound(),
                top_p_of_rows(a_cc, 2)[:-1],
                top_p_of_columns(b_rc, 2),
                rows,
                cols,
                32,
            )

    def test_checksum_rows_get_larger_epsilon_than_data_rows(self, encoded):
        """Checksum vectors have larger magnitudes (sums of BS values), so
        their y — and hence epsilon — exceeds a typical data row's."""
        a_cc, b_rc, rows, cols = encoded
        provider = AABFTEpsilonProvider(
            ProbabilisticBound(),
            top_p_of_rows(a_cc, 2),
            top_p_of_columns(b_rc, 2),
            rows,
            cols,
            32,
        )
        col_eps = provider.column_epsilon(0, 5)  # uses checksum row of block 0
        data_y = provider.upper_bound(3, 5)  # a data row's y
        from repro.bounds.base import BoundContext

        data_eps = ProbabilisticBound().epsilon(
            BoundContext(n=32, m=32, upper_bound=data_y)
        )
        assert col_eps > data_eps


class TestSEAProvider:
    def test_column_epsilon_formula(self, encoded):
        a_cc, b_rc, rows, cols = encoded
        a_norms = np.linalg.norm(a_cc, axis=1)
        b_norms = np.linalg.norm(b_rc, axis=0)
        provider = SEAEpsilonProvider(SEABound(), a_norms, b_norms, rows, cols, 32)

        data_idx = rows.data_indices(1)
        cs_idx = rows.checksum_index(1)
        expected = sea_epsilon(
            32, a_norms[data_idx], float(a_norms[cs_idx]), float(b_norms[7]), 53
        )
        assert provider.column_epsilon(1, 7) == pytest.approx(expected)

    def test_row_epsilon_swaps_roles(self, encoded):
        a_cc, b_rc, rows, cols = encoded
        a_norms = np.linalg.norm(a_cc, axis=1)
        b_norms = np.linalg.norm(b_rc, axis=0)
        provider = SEAEpsilonProvider(SEABound(), a_norms, b_norms, rows, cols, 32)
        data_idx = cols.data_indices(0)
        cs_idx = cols.checksum_index(0)
        expected = sea_epsilon(
            32, b_norms[data_idx], float(b_norms[cs_idx]), float(a_norms[9]), 53
        )
        assert provider.row_epsilon(9, 0) == pytest.approx(expected)

    def test_validates_norm_counts(self, encoded):
        a_cc, b_rc, rows, cols = encoded
        with pytest.raises(ValueError, match="row norms"):
            SEAEpsilonProvider(SEABound(), np.ones(3), np.ones(66), rows, cols, 32)
