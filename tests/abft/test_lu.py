"""Checksum-protected LU decomposition."""

import numpy as np
import pytest

from repro.abft.lu import (
    SingularPivotError,
    plain_lu,
    protected_lu,
)
from repro.errors import ShapeError


def _dominant(rng, n, scale=1.0):
    """A diagonally dominant matrix (safe for unpivoted elimination)."""
    a = rng.uniform(-1.0, 1.0, (n, n)) * scale
    a += np.diag(np.sign(np.diag(a)) * (np.abs(a).sum(axis=1) + 1.0) * scale)
    return a


class TestFactorisation:
    def test_factors_reconstruct(self, rng):
        a = _dominant(rng, 40)
        result = protected_lu(a)
        assert np.allclose(result.l @ result.u, a, rtol=1e-10)
        assert not result.detected

    def test_l_is_unit_lower(self, rng):
        a = _dominant(rng, 16)
        result = protected_lu(a)
        assert np.allclose(np.diag(result.l), 1.0)
        assert np.allclose(np.triu(result.l, 1), 0.0)
        assert np.allclose(np.tril(result.u, -1), 0.0)

    def test_plain_lu_matches_protected(self, rng):
        a = _dominant(rng, 24)
        l1, u1 = plain_lu(a)
        result = protected_lu(a)
        assert np.array_equal(l1, result.l)
        assert np.array_equal(u1, result.u)

    def test_matches_scipy(self, rng):
        from scipy.linalg import lu as scipy_lu

        a = _dominant(rng, 20)
        result = protected_lu(a)
        p, l, u = scipy_lu(a)
        # Diagonal dominance keeps scipy from pivoting in most draws; when
        # it does not pivot the factors must agree.
        if np.allclose(p, np.eye(20)):
            assert np.allclose(result.l, l, rtol=1e-9)
            assert np.allclose(result.u, u, rtol=1e-9)

    def test_validation(self, rng):
        with pytest.raises(ShapeError):
            protected_lu(rng.uniform(size=(3, 4)))
        with pytest.raises(SingularPivotError):
            protected_lu(np.zeros((3, 3)))

    def test_singular_pivot_detected(self):
        a = np.array([[1.0, 2.0], [2.0, 4.0]])  # rank 1
        with pytest.raises(SingularPivotError):
            protected_lu(a)


class TestChecksumInvariant:
    def test_fault_free_passes(self, rng):
        for scale in (1.0, 100.0):
            a = _dominant(rng, 48, scale)
            result = protected_lu(a)
            assert not result.detected, result.report.failed_rows

    def test_discrepancies_are_rounding_level(self, rng):
        a = _dominant(rng, 32)
        result = protected_lu(a)
        assert result.report.discrepancies.max() < result.report.epsilons.min()

    def test_update_scale_tracked(self, rng):
        a = _dominant(rng, 16)
        result = protected_lu(a)
        assert result.update_scale >= np.abs(a).max()

    def test_injected_error_detected(self, rng):
        a = _dominant(rng, 48)

        def strike(k, work):
            if k == 20:
                work[30, 35] += 1e-3  # active-matrix value error

        result = protected_lu(a, fault_hook=strike)
        assert result.detected
        assert 30 in result.report.failed_rows

    def test_error_in_checksum_column_detected(self, rng):
        a = _dominant(rng, 32)

        def strike(k, work):
            if k == 10:
                work[20, 32] += 1e-3  # the augmented checksum column

        result = protected_lu(a, fault_hook=strike)
        assert result.detected
        # Row 20 flags first; once row 20 serves as the pivot row its
        # corrupted checksum element propagates into every later row.
        assert result.report.failed_rows[0] == 20

    def test_sub_tolerance_error_tolerated(self, rng):
        a = _dominant(rng, 32)

        def strike(k, work):
            if k == 10:
                work[20, 25] += 1e-17

        result = protected_lu(a, fault_hook=strike)
        assert not result.detected

    def test_nan_detected(self, rng):
        a = _dominant(rng, 16)

        def strike(k, work):
            if k == 5:
                work[10, 12] = float("nan")

        result = protected_lu(a, fault_hook=strike)
        assert result.detected

    def test_check_false_skips_verification(self, rng):
        a = _dominant(rng, 16)
        result = protected_lu(a, check=False)
        assert not result.detected
        assert result.report.discrepancies.max() == 0.0


class TestSolveWorkflow:
    def test_protected_solve(self, rng):
        """LU factors from the protected routine solve systems correctly."""
        from scipy.linalg import solve_triangular

        n = 32
        a = _dominant(rng, n)
        b = rng.uniform(-1, 1, n)
        result = protected_lu(a)
        assert not result.detected
        y = solve_triangular(result.l, b, lower=True, unit_diagonal=True)
        x = solve_triangular(result.u, y)
        assert np.allclose(a @ x, b, rtol=1e-8)
