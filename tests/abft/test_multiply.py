"""The high-level protected multiplication API."""

import numpy as np
import pytest

from repro.abft.multiply import aabft_matmul, fixed_abft_matmul, sea_abft_matmul
from repro.errors import BoundSchemeError, ShapeError
from repro.workloads import SUITE_DYNAMIC_K2, SUITE_HUNDRED, SUITE_UNIT


class TestCorrectness:
    def test_result_matches_numpy(self, small_pair):
        a, b = small_pair
        result = aabft_matmul(a, b, block_size=32)
        assert np.allclose(result.c, a @ b, rtol=1e-13)

    def test_rectangular_operands(self, rect_pair):
        a, b = rect_pair
        result = aabft_matmul(a, b, block_size=32)
        assert result.c.shape == (64, 128)
        assert np.allclose(result.c, a @ b)

    def test_padding_transparent(self, rng):
        a = rng.uniform(-1, 1, (37, 55))
        b = rng.uniform(-1, 1, (55, 41))
        result = aabft_matmul(a, b, block_size=16)
        assert result.c.shape == (37, 41)
        assert np.allclose(result.c, a @ b)
        assert not result.detected

    def test_shape_errors(self, rng):
        with pytest.raises(ShapeError):
            aabft_matmul(rng.uniform(size=(4, 4)), rng.uniform(size=(5, 4)))
        with pytest.raises(ShapeError):
            aabft_matmul(rng.uniform(size=4), rng.uniform(size=(4, 4)))


class TestNoFalsePositives:
    """Fault-free multiplications must pass the check on every input class
    the paper evaluates (too-tight bounds cause false positives)."""

    @pytest.mark.parametrize(
        "suite", [SUITE_UNIT, SUITE_HUNDRED, SUITE_DYNAMIC_K2], ids=lambda s: s.name
    )
    def test_aabft_no_false_positives(self, suite, rng):
        pair = suite.generate(192, rng)
        result = aabft_matmul(pair.a, pair.b, block_size=64)
        assert not result.detected, result.report.findings[:3]

    @pytest.mark.parametrize(
        "suite", [SUITE_UNIT, SUITE_HUNDRED, SUITE_DYNAMIC_K2], ids=lambda s: s.name
    )
    def test_sea_no_false_positives(self, suite, rng):
        pair = suite.generate(192, rng)
        result = sea_abft_matmul(pair.a, pair.b, block_size=64)
        assert not result.detected

    def test_aabft_sigma_only_still_passes(self, rng):
        """Even the tightest setting the paper mentions (omega = 1) should
        rarely flag — with this fixed seed it must pass."""
        a = rng.uniform(-1, 1, (128, 128))
        b = rng.uniform(-1, 1, (128, 128))
        result = aabft_matmul(a, b, block_size=64, omega=1.0)
        assert not result.detected


class TestDetection:
    def test_detects_injected_corruption(self, small_pair):
        a, b = small_pair
        clean = aabft_matmul(a, b, block_size=32)
        corrupted = clean.c_fc.copy()
        corrupted[5, 9] += 1e-3
        from repro.abft.checking import check_partitioned

        report = check_partitioned(
            corrupted, clean.row_layout, clean.col_layout, clean.provider
        )
        assert report.error_detected
        assert (5, 9) in report.located_errors

    def test_fixed_bound_too_tight_false_positives(self, small_pair):
        """A manual bound below the rounding noise must flag clean results —
        the failure mode that motivates A-ABFT."""
        a, b = small_pair
        result = fixed_abft_matmul(a, b, epsilon=1e-18, block_size=32)
        assert result.detected

    def test_fixed_bound_too_loose_misses_errors(self, small_pair):
        a, b = small_pair
        clean = fixed_abft_matmul(a, b, epsilon=1.0, block_size=32)
        corrupted = clean.c_fc.copy()
        corrupted[5, 9] += 1e-3  # well above rounding, below the loose bound
        from repro.abft.checking import check_partitioned

        report = check_partitioned(
            corrupted, clean.row_layout, clean.col_layout, clean.provider
        )
        assert not report.error_detected

    def test_fixed_bound_validation(self, small_pair):
        a, b = small_pair
        with pytest.raises(BoundSchemeError):
            fixed_abft_matmul(a, b, epsilon=-1.0)


class TestParameters:
    def test_p_affects_bounds_monotonically(self, small_pair):
        a, b = small_pair
        eps_small_p = aabft_matmul(a, b, block_size=32, p=1).provider.column_epsilon(
            0, 0
        )
        eps_large_p = aabft_matmul(a, b, block_size=32, p=8).provider.column_epsilon(
            0, 0
        )
        assert eps_large_p <= eps_small_p

    def test_fma_tightens_bounds(self, small_pair):
        a, b = small_pair
        eps = aabft_matmul(a, b, block_size=32).provider.column_epsilon(0, 0)
        eps_fma = aabft_matmul(a, b, block_size=32, fma=True).provider.column_epsilon(
            0, 0
        )
        assert eps_fma < eps

    def test_block_size_variants_all_correct(self, rng):
        a = rng.uniform(-1, 1, (128, 128))
        b = rng.uniform(-1, 1, (128, 128))
        for bs in (16, 32, 64, 128):
            result = aabft_matmul(a, b, block_size=bs)
            assert np.allclose(result.c, a @ b)
            assert not result.detected
