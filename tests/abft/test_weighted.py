"""Weighted-checksum ABFT: location and correction from column-side only."""

import numpy as np
import pytest

from repro.abft.weighted import (
    WeightedChecker,
    encode_weighted_columns,
    linear_weights,
    weighted_abft_matmul,
)
from repro.errors import CorrectionError, ShapeError


@pytest.fixture
def pair(rng):
    return rng.uniform(-1, 1, (48, 64)), rng.uniform(-1, 1, (64, 56))


class TestEncoding:
    def test_weights(self):
        assert np.array_equal(linear_weights(4), [1.0, 2.0, 3.0, 4.0])
        with pytest.raises(ValueError):
            linear_weights(0)

    def test_encoded_rows(self, rng):
        a = rng.uniform(-1, 1, (5, 7))
        a_wc, w = encode_weighted_columns(a)
        assert a_wc.shape == (7, 7)
        assert np.allclose(a_wc[5], a.sum(axis=0))
        assert np.allclose(a_wc[6], w @ a)

    def test_custom_weights(self, rng):
        a = rng.uniform(-1, 1, (3, 4))
        w = np.array([1.0, 4.0, 16.0])
        a_wc, _ = encode_weighted_columns(a, w)
        assert np.allclose(a_wc[4], w @ a)

    def test_weight_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            encode_weighted_columns(rng.uniform(size=(3, 4)), np.ones(4))


class TestFaultFree:
    def test_no_false_positives(self, pair):
        a, b = pair
        result, _ = weighted_abft_matmul(a, b)
        assert not result.detected
        assert np.allclose(result.c, a @ b)

    def test_no_false_positives_large_range(self, rng):
        a = rng.uniform(-100, 100, (64, 64))
        b = rng.uniform(-100, 100, (64, 64))
        result, _ = weighted_abft_matmul(a, b)
        assert not result.detected

    def test_no_false_positives_dynamic_inputs(self, rng):
        from repro.workloads import SUITE_DYNAMIC_K2

        p = SUITE_DYNAMIC_K2.generate(96, rng)
        result, _ = weighted_abft_matmul(p.a, p.b)
        assert not result.detected

    def test_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            weighted_abft_matmul(rng.uniform(size=(4, 5)), rng.uniform(size=(4, 5)))


class TestLocationAndCorrection:
    def test_single_error_row_located_without_row_checksums(self, pair):
        """The weighted/plain ratio reveals the row — Jou/Abraham's
        property, with autonomous bounds."""
        a, b = pair
        result, checker = weighted_abft_matmul(a, b)
        row, col, delta = 17, 23, 1e-4
        corrupted = result.c_wc.copy()
        corrupted[row, col] += delta
        rechecked = checker.check(corrupted)
        assert rechecked.detected
        assert len(rechecked.flagged_columns) == 1
        outcome = rechecked.flagged_columns[0]
        assert outcome.column == col
        assert outcome.located_row == row

    def test_correct_restores_product(self, pair):
        a, b = pair
        result, checker = weighted_abft_matmul(a, b)
        corrupted = result.c_wc.copy()
        corrupted[30, 5] += 2.5e-3
        rechecked = checker.check(corrupted)
        fixed = rechecked.correct()
        assert np.allclose(fixed, a @ b, rtol=1e-10)
        # And the corrected data passes a fresh check.
        verified = checker.check(
            np.vstack([fixed, fixed.sum(axis=0), checker.weights @ fixed])
        )
        assert not verified.detected

    def test_every_row_locatable(self, pair):
        """Ratios must resolve correctly across the full weight range."""
        a, b = pair
        result, checker = weighted_abft_matmul(a, b)
        for row in (0, 1, 23, 46, 47):
            corrupted = result.c_wc.copy()
            corrupted[row, 11] += 5e-4
            outcome = checker.check(corrupted).flagged_columns[0]
            assert outcome.located_row == row, row

    def test_corrupted_checksum_row_flagged_not_located(self, pair):
        """An error in the plain checksum row flips the discrepancy sign
        structure; it must flag but not mislocate a data row."""
        a, b = pair
        result, checker = weighted_abft_matmul(a, b)
        m = a.shape[0]
        corrupted = result.c_wc.copy()
        corrupted[m, 9] += 1e-3  # plain checksum element
        rechecked = checker.check(corrupted)
        assert rechecked.detected
        outcome = rechecked.flagged_columns[0]
        # d_plain = -delta, d_weighted ~ 0 -> ratio ~ 0: no data row.
        assert outcome.located_row is None

    def test_two_errors_same_column_not_correctable(self, pair):
        a, b = pair
        result, checker = weighted_abft_matmul(a, b)
        corrupted = result.c_wc.copy()
        corrupted[10, 5] += 1e-3
        corrupted[21, 5] += 1e-3
        rechecked = checker.check(corrupted)
        assert rechecked.detected
        outcome = rechecked.flagged_columns[0]
        # Blended ratio (11 + 22)/2 = 16.5: not within slack of an integer.
        assert outcome.located_row is None
        with pytest.raises(CorrectionError, match="ratio"):
            rechecked.correct()

    def test_errors_in_two_columns_refused(self, pair):
        a, b = pair
        result, checker = weighted_abft_matmul(a, b)
        corrupted = result.c_wc.copy()
        corrupted[4, 5] += 1e-3
        corrupted[8, 9] += 1e-3
        rechecked = checker.check(corrupted)
        assert len(rechecked.flagged_columns) == 2
        with pytest.raises(CorrectionError, match="columns flagged"):
            rechecked.correct()

    def test_no_error_correct_raises(self, pair):
        a, b = pair
        result, _ = weighted_abft_matmul(a, b)
        with pytest.raises(CorrectionError, match="no flagged"):
            result.correct()

    def test_nan_corruption_flagged(self, pair):
        a, b = pair
        result, checker = weighted_abft_matmul(a, b)
        corrupted = result.c_wc.copy()
        corrupted[3, 3] = float("nan")
        assert checker.check(corrupted).detected


class TestCheckerValidation:
    def test_ratio_slack_range(self, pair, rng):
        a, b = pair
        a_wc, w = encode_weighted_columns(a)
        with pytest.raises(ValueError, match="ratio_slack"):
            WeightedChecker(a_wc, w, b, ratio_slack=0.6)

    def test_product_row_count(self, pair):
        a, b = pair
        result, checker = weighted_abft_matmul(a, b)
        with pytest.raises(ShapeError, match="rows"):
            checker.check(result.c_wc[:-1, :])
