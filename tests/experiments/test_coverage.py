"""Coverage validation of the probabilistic confidence intervals."""

import numpy as np
import pytest

from repro.experiments.coverage import measure_coverage, render_coverage
from repro.workloads import SUITE_DYNAMIC_K2, SUITE_HUNDRED, SUITE_UNIT


class TestCoverage:
    @pytest.fixture(scope="class")
    def rows(self):
        rng = np.random.default_rng(8)
        return [
            measure_coverage(suite, 128, rng, num_samples=48)
            for suite in (SUITE_UNIT, SUITE_HUNDRED, SUITE_DYNAMIC_K2)
        ]

    def test_three_sigma_covers_everything(self, rows):
        """The paper's conservative setting must leave zero errors outside
        the interval on every input class."""
        for row in rows:
            assert row.covered_at(3.0) == 1.0, row

    def test_even_one_sigma_covers(self, rows):
        """The partial-sum variance model is so conservative that even the
        1-sigma interval covers — the quantified source of the bound's
        false-positive immunity."""
        for row in rows:
            assert row.covered_at(1.0) == 1.0

    def test_effective_omega_far_below_one(self, rows):
        for row in rows:
            assert 0.0 < row.effective_omega < 0.5

    def test_coverage_monotone_in_omega(self, rows):
        for row in rows:
            assert (
                row.covered_at(1.0)
                <= row.covered_at(2.0)
                <= row.covered_at(3.0)
            )

    def test_render(self, rows):
        text = render_coverage(rows)
        assert "sigma" in text
        assert "uniform_unit" in text
