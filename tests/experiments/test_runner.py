"""The run-everything driver at a miniature scale."""

from repro.experiments.runner import FULL, QUICK, ExperimentScale, run_all
from repro.experiments import full_runs_requested


class TestScales:
    def test_quick_scale_shape(self):
        assert QUICK.bound_sizes == (512, 1024)
        assert QUICK.name == "quick"

    def test_full_scale_covers_paper(self):
        assert FULL.bound_sizes[-1] == 8192
        assert len(FULL.bound_sizes) == 9

    def test_env_toggle(self, monkeypatch):
        monkeypatch.setenv("AABFT_FULL", "1")
        assert full_runs_requested()
        monkeypatch.setenv("AABFT_FULL", "0")
        assert not full_runs_requested()
        monkeypatch.delenv("AABFT_FULL")
        assert not full_runs_requested()


class TestRunAll:
    def test_miniature_end_to_end(self):
        """run_all produces every table/figure section (tiny scale so the
        whole thing finishes in seconds)."""
        tiny = ExperimentScale(
            name="tiny",
            bound_sizes=(128,),
            detection_sizes=(128,),
            bound_samples=12,
            injections_per_cell=15,
        )
        report = run_all(tiny, seed=7)
        assert "Table I" in report
        assert "Table II" in report
        assert "Table III" in report
        assert "Table IV" in report
        assert "Figure 4" in report
        assert "A-ABFT at n=8192" in report  # the overhead headline
        # The size-128 measured rows appear in each bound table.
        assert report.count("\n       128  ") >= 3
