"""Experiment drivers: each table/figure regenerates with the paper's shape."""

import numpy as np
import pytest

from repro.experiments.bound_quality import measure_bound_quality, render_bound_table
from repro.experiments.figure4 import render_figure4, run_figure4
from repro.experiments.paper_data import TABLE1_GFLOPS, TABLE2_UNIT
from repro.experiments.table1 import overhead_summary, render_table1, run_table1
from repro.faults.model import FaultSite
from repro.workloads import SUITE_DYNAMIC_K2, SUITE_HUNDRED, SUITE_UNIT


class TestTable1Driver:
    def test_rows_cover_paper_sizes(self):
        rows = run_table1()
        assert [r.n for r in rows] == sorted(TABLE1_GFLOPS)

    def test_render_includes_paper_columns(self):
        text = render_table1(run_table1((512, 1024)))
        assert "(paper)" in text
        assert "382.3" in text  # published ABFT at 512

    def test_render_without_paper(self):
        text = render_table1(run_table1((512,)), with_paper=False)
        assert "(paper)" not in text
        assert "unprotected" in text

    def test_overhead_summary_mentions_fraction(self):
        text = overhead_summary(run_table1((8192,)))
        assert "%" in text
        assert "8192" in text


class TestBoundQualityDriver:
    def test_unit_suite_matches_paper_order_of_magnitude(self, rng):
        """Table II at n=512: rnd err ~2e-14, A-ABFT ~2e-11, SEA ~9e-10.
        Measured values must land within ~4x of the published ones."""
        row = measure_bound_quality(SUITE_UNIT, 512, rng, num_samples=48)
        paper_err, paper_aabft, paper_sea = TABLE2_UNIT[512]
        assert row.avg_rounding_error == pytest.approx(paper_err, rel=3.0)
        assert row.avg_aabft_bound == pytest.approx(paper_aabft, rel=3.0)
        assert row.avg_sea_bound == pytest.approx(paper_sea, rel=3.0)

    def test_bound_ordering_invariant(self, rng):
        """err < A-ABFT bound < SEA bound for every suite (the qualitative
        content of Tables II-IV)."""
        for suite in (SUITE_UNIT, SUITE_HUNDRED, SUITE_DYNAMIC_K2):
            row = measure_bound_quality(suite, 128, rng, num_samples=32)
            assert row.avg_rounding_error < row.avg_aabft_bound < row.avg_sea_bound

    def test_aabft_two_orders_closer_than_sea(self, rng):
        """The headline claim: A-ABFT bounds are typically ~2 orders of
        magnitude closer to the exact rounding error than SEA's."""
        row = measure_bound_quality(SUITE_UNIT, 512, rng, num_samples=48)
        assert row.sea_tightness / row.aabft_tightness > 10.0

    def test_hundred_range_scales_by_1e4(self, rng):
        """Products scale by 100^2 between Tables II and III."""
        unit = measure_bound_quality(SUITE_UNIT, 128, rng, num_samples=32)
        hundred = measure_bound_quality(SUITE_HUNDRED, 128, rng, num_samples=32)
        ratio = hundred.avg_aabft_bound / unit.avg_aabft_bound
        assert 1e3 < ratio < 1e5

    def test_exhaustive_mode(self, rng):
        row = measure_bound_quality(
            SUITE_UNIT, 64, rng, block_size=32, num_samples=1, exhaustive=True
        )
        assert row.num_samples == 2 * 66  # blocks x encoded cols

    def test_render_with_and_without_paper(self, rng):
        row = measure_bound_quality(SUITE_UNIT, 128, rng, num_samples=8)
        assert "avg rnd err" in render_bound_table([row])
        assert "(paper)" in render_bound_table([row], TABLE2_UNIT)


class TestFigure4Driver:
    @pytest.fixture(scope="class")
    def cells(self):
        return run_figure4(
            suites=(SUITE_UNIT,),
            sizes=(128,),
            injections_per_cell=40,
            seed=5,
        )

    def test_grid_covers_all_sites(self, cells):
        assert {c.site for c in cells} == {
            FaultSite.INNER_MUL,
            FaultSite.INNER_ADD,
            FaultSite.MERGE_ADD,
        }

    def test_aabft_beats_sea_overall(self, cells):
        total_aabft = np.nansum([c.rate_aabft * c.num_critical for c in cells])
        total_sea = np.nansum([c.rate_sea * c.num_critical for c in cells])
        assert total_aabft >= total_sea

    def test_render(self, cells):
        text = render_figure4(cells)
        assert "Figure 4" in text
        assert "inner_mul" in text
        assert "%" in text
