"""Public API surface: imports, __all__ hygiene, docstrings."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.abft",
    "repro.analysis",
    "repro.backends",
    "repro.bounds",
    "repro.chaos",
    "repro.cluster",
    "repro.engine",
    "repro.exact",
    "repro.experiments",
    "repro.faults",
    "repro.fp",
    "repro.gpusim",
    "repro.kernels",
    "repro.models",
    "repro.perfmodel",
    "repro.serve",
    "repro.telemetry",
    "repro.workloads",
]


class TestImports:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_imports(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"

    def test_version(self):
        assert repro.__version__ == "0.1.0"

    @pytest.mark.parametrize("name", SUBPACKAGES + ["repro"])
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol} in __all__ missing"

    def test_top_level_exports_core_api(self):
        for symbol in (
            "aabft_matmul",
            "sea_abft_matmul",
            "fixed_abft_matmul",
            "GpuSimulator",
            "AABFTPipeline",
            "FaultCampaign",
            "ProbabilisticBound",
            "MetricsRegistry",
            "get_registry",
            "span",
        ):
            assert symbol in repro.__all__

    def test_top_level_exports_serving_api(self):
        for symbol in (
            "MatmulServer",
            "ServeConfig",
            "MatmulRequest",
            "MatmulResponse",
            "VerificationStatus",
            "run_loadgen",
        ):
            assert symbol in repro.__all__

    def test_top_level_exports_batch_execution_api(self):
        for symbol in (
            "MatmulEngine",
            "ExecutionPolicy",
            "EXECUTION_MODES",
            "PipelineSchedule",
            "StageCost",
            "StageCosts",
            "EngineStats",
        ):
            assert symbol in repro.__all__

    def test_engine_exports_locked(self):
        from repro import engine

        assert set(engine.__all__) == {
            "AbftConfig",
            "SCHEMES",
            "MatmulEngine",
            "EncodedOperand",
            "EngineStats",
            "StageCost",
            "StageCosts",
            "ExecutionPlan",
            "ExecutionPolicy",
            "EXECUTION_MODES",
            "PipelineSchedule",
            "PlanCache",
            "build_plan",
            "default_engine",
            "pipeline_supported",
            "plan_schedule",
        }

    def test_execution_modes_locked(self):
        from repro import EXECUTION_MODES

        assert EXECUTION_MODES == ("auto", "serial", "fused", "pipelined")

    def test_serve_exports_locked(self):
        from repro import serve

        assert set(serve.__all__) == {
            "DEGRADATION_RUNGS",
            "LoadgenResult",
            "MatmulRequest",
            "MatmulResponse",
            "MatmulServer",
            "ModelRequest",
            "ModelResponse",
            "ServeConfig",
            "VerificationStatus",
            "percentile",
            "rung_for_fraction",
            "run_loadgen",
            "run_serve_benchmark",
        }

    def test_top_level_exports_model_api(self):
        for symbol in (
            "ModelSpec",
            "LayerSpec",
            "ProtectionPlanner",
            "ModelPlan",
            "ModelRunner",
            "ModelCampaign",
            "ModelRequest",
            "ModelResponse",
            "mlp",
            "attention",
        ):
            assert symbol in repro.__all__

    def test_models_exports_locked(self):
        from repro import models

        assert set(models.__all__) == {
            "ACTIVATIONS",
            "PROTECTION_RUNGS",
            "CampaignResult",
            "LayerAssignment",
            "LayerCoverage",
            "LayerRun",
            "LayerSpec",
            "ModelCampaign",
            "ModelInjection",
            "ModelInputs",
            "ModelPlan",
            "ModelRunResult",
            "ModelRunner",
            "ModelSpec",
            "ProtectionPlanner",
            "attention",
            "mlp",
            "compare_to_baseline",
            "default_baseline_path",
            "run_model_benchmark",
        }

    def test_cluster_exports_locked(self):
        from repro import cluster

        assert set(cluster.__all__) == {
            "ClusterConfig",
            "ClusterFrontend",
            "HashRing",
        }
        for symbol in ("ClusterConfig", "ClusterFrontend"):
            assert symbol in repro.__all__

    def test_response_satisfies_protected_result(self):
        import numpy as np

        from repro import MatmulResponse, ProtectedResult, VerificationStatus
        from repro.abft.checking import CheckReport

        response = MatmulResponse(
            request_id="r1",
            status=VerificationStatus.FULL,
            c=np.zeros((2, 2)),
            report=CheckReport(),
        )
        assert isinstance(response, ProtectedResult)


class TestDocstrings:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_public_classes_documented(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if isinstance(obj, type):
                assert obj.__doc__, f"{name}.{symbol} lacks a docstring"

    def test_quickstart_in_package_docstring(self):
        assert "aabft_matmul" in repro.__doc__


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for symbol in errors.__all__:
            exc = getattr(errors, symbol)
            assert issubclass(exc, errors.ReproError)
