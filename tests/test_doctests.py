"""Docstring examples must actually run (doctest)."""

import doctest

import pytest

import repro.abft.multiply
import repro.engine

MODULES_WITH_EXAMPLES = [repro.abft.multiply, repro.engine]


@pytest.mark.parametrize(
    "module", MODULES_WITH_EXAMPLES, ids=lambda m: m.__name__
)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctest examples"
    assert results.failed == 0
