"""Every example script must run cleanly (guards against API rot)."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
SRC = EXAMPLES.parent / "src"

#: script -> (argv, snippet that must appear in stdout)
CASES = {
    "quickstart.py": ([], "element restored:             True"),
    "performance_table.py": ([], "operation counts agree exactly"),
    "error_map_analysis.py": ([], "exceeds the 3-sigma map: 0/"),
    "resilient_linear_algebra.py": ([], "corrected, matches numpy: True"),
    "iterative_solver.py": ([], "despite the strike"),
    "bound_quality_study.py": (["128"], "orders of magnitude closer"),
    "fault_injection_campaign.py": (["128", "45"], "critical detected"),
    "gpu_trace_tour.py": (["ignored.trace.json"], "Chrome trace written"),
}


@pytest.mark.parametrize("script", sorted(CASES), ids=lambda s: s.split(".")[0])
def test_example_runs(script, tmp_path):
    argv, snippet = CASES[script]
    if script == "gpu_trace_tour.py":
        argv = [str(tmp_path / "tour.trace.json")]
    # The scripts import repro; make sure the subprocess finds src/ no
    # matter how the test session itself was launched.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *argv],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=tmp_path,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert snippet in result.stdout, result.stdout[-2000:]
