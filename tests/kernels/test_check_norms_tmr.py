"""Checking kernel (Algorithm 2), norm kernels, and the TMR baseline."""

import numpy as np
import pytest

from repro.abft.checking import check_partitioned
from repro.abft.encoding import (
    encode_partitioned_columns,
    encode_partitioned_rows,
)
from repro.abft.providers import ConstantEpsilonProvider
from repro.kernels.check import CheckKernel
from repro.kernels.norms import ColumnNormKernel, RowNormKernel
from repro.kernels.tmr import TmrCompareKernel, run_tmr_matmul

BS = 16


@pytest.fixture
def encoded_product(rng):
    a = rng.uniform(-1, 1, (32, 32))
    b = rng.uniform(-1, 1, (32, 32))
    a_cc, rows = encode_partitioned_columns(a, BS)
    b_rc, cols = encode_partitioned_rows(b, BS)
    return a_cc @ b_rc, rows, cols


class TestCheckKernel:
    def _launch(self, simulator, c_fc, rows, cols, provider):
        d_c = simulator.upload(c_fc)
        d_cd = simulator.alloc((rows.num_blocks, cols.encoded_rows))
        d_ce = simulator.alloc((rows.num_blocks, cols.encoded_rows))
        d_rd = simulator.alloc((rows.encoded_rows, cols.num_blocks))
        d_re = simulator.alloc((rows.encoded_rows, cols.num_blocks))
        simulator.launch(
            CheckKernel(d_c, rows, cols, provider, d_cd, d_ce, d_rd, d_re)
        )
        return (
            simulator.download(d_cd),
            simulator.download(d_ce),
            simulator.download(d_rd),
            simulator.download(d_re),
        )

    def test_matches_host_checker(self, simulator, encoded_product):
        c_fc, rows, cols = encoded_product
        provider = ConstantEpsilonProvider(1e-9)
        col_d, col_e, row_d, row_e = self._launch(
            simulator, c_fc, rows, cols, provider
        )
        host = check_partitioned(c_fc, rows, cols, provider)
        assert np.allclose(col_d, host.column_disc, atol=1e-15)
        # The host computes row sums via the transpose; summation order
        # differs from the kernel's at the last-ulp level.
        assert np.allclose(row_d, host.row_disc, atol=2e-14)
        assert np.all(col_e == 1e-9)
        assert np.all(row_e == 1e-9)

    def test_detects_corruption(self, simulator, encoded_product):
        c_fc, rows, cols = encoded_product
        c_fc = c_fc.copy()
        c_fc[3, 7] += 1e-3
        col_d, col_e, row_d, row_e = self._launch(
            simulator, c_fc, rows, cols, ConstantEpsilonProvider(1e-9)
        )
        assert col_d[0, 7] > 1e-4
        assert row_d[3, 0] > 1e-4

    def test_shape_validation(self, simulator, encoded_product):
        c_fc, rows, cols = encoded_product
        d_c = simulator.upload(c_fc)
        bad = simulator.alloc((1, 1))
        ok_cd = simulator.alloc((rows.num_blocks, cols.encoded_rows))
        ok_rd = simulator.alloc((rows.encoded_rows, cols.num_blocks))
        with pytest.raises(ValueError, match="column outputs"):
            CheckKernel(
                d_c, rows, cols, ConstantEpsilonProvider(1.0), bad, ok_cd, ok_rd, ok_rd
            )


class TestNormKernels:
    def test_row_norms(self, simulator, rng):
        m = rng.uniform(-2, 2, (70, 40))
        d_m = simulator.upload(m)
        d_out = simulator.alloc((70,))
        simulator.launch(RowNormKernel(d_m, d_out))
        assert np.allclose(simulator.download(d_out), np.linalg.norm(m, axis=1))

    def test_column_norms(self, simulator, rng):
        m = rng.uniform(-2, 2, (40, 70))
        d_m = simulator.upload(m)
        d_out = simulator.alloc((70,))
        simulator.launch(ColumnNormKernel(d_m, d_out))
        assert np.allclose(simulator.download(d_out), np.linalg.norm(m, axis=0))

    def test_partial_last_block(self, simulator, rng):
        """Vector counts not divisible by the block strip are handled."""
        m = rng.uniform(size=(33, 5))
        d_m = simulator.upload(m)
        d_out = simulator.alloc((33,))
        simulator.launch(RowNormKernel(d_m, d_out, rows_per_block=32))
        assert np.allclose(simulator.download(d_out), np.linalg.norm(m, axis=1))

    def test_output_shape_validation(self, simulator, rng):
        d_m = simulator.upload(rng.uniform(size=(8, 8)))
        d_bad = simulator.alloc((9,))
        with pytest.raises(ValueError):
            RowNormKernel(d_m, d_bad)


class TestTmr:
    def test_fault_free_result_correct(self, simulator, rng):
        a = rng.uniform(-1, 1, (64, 64))
        b = rng.uniform(-1, 1, (64, 64))
        outcome = run_tmr_matmul(simulator, a, b, tile=32)
        assert not outcome.error_detected
        assert np.allclose(outcome.c, a @ b)

    def test_single_replica_fault_masked_and_detected(self, simulator, rng):
        from repro.faults.injector import FaultInjector
        from repro.faults.model import FaultSite, FaultSpec
        from repro.fp.errorvec import ErrorVector

        a = rng.uniform(-1, 1, (64, 64))
        b = rng.uniform(-1, 1, (64, 64))
        spec = FaultSpec(
            sm_id=0,
            site=FaultSite.MERGE_ADD,
            module_row=1,
            module_col=1,
            error_vector=ErrorVector(mask=1 << 50, field="mantissa", bit_indices=(50,)),
        )
        injector = FaultInjector(spec, rng)
        outcome = run_tmr_matmul(simulator, a, b, tile=32, injector=injector)
        assert outcome.error_detected
        # Majority vote: the two clean replicas win everywhere.
        assert np.allclose(outcome.c, a @ b, rtol=1e-13)

    def test_compare_kernel_counts_mismatches(self, simulator, rng):
        base = rng.uniform(size=(16, 16))
        r0 = simulator.upload(base)
        r1 = simulator.upload(base)
        corrupted = base.copy()
        corrupted[2, 3] += 1.0
        corrupted[5, 5] += 1.0
        r2 = simulator.upload(corrupted)
        out = simulator.alloc((16, 16))
        mismatch = simulator.alloc((1,))
        simulator.launch(TmrCompareKernel((r0, r1, r2), out, mismatch))
        assert simulator.download(mismatch)[0] == 2
        assert np.array_equal(simulator.download(out), base)

    def test_replica_shape_validation(self, simulator, rng):
        r0 = simulator.upload(rng.uniform(size=(4, 4)))
        r1 = simulator.upload(rng.uniform(size=(4, 4)))
        r2 = simulator.upload(rng.uniform(size=(5, 4)))
        out = simulator.alloc((4, 4))
        mm = simulator.alloc((1,))
        with pytest.raises(ValueError, match="replica shapes"):
            TmrCompareKernel((r0, r1, r2), out, mm)
