"""The literal Algorithm 1 reference vs. the vectorised encoding kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abft.encoding import PartitionedLayout
from repro.gpusim.simulator import GpuSimulator
from repro.kernels.encode import EncodeColumnChecksumsKernel
from repro.kernels.encode_reference import algorithm1_reference


class TestAlgorithm1Reference:
    def test_checksums_are_sequential_column_sums(self, rng):
        block = rng.uniform(-1, 1, (8, 8))
        result = algorithm1_reference(block, 2)
        for j in range(8):
            s = 0.0
            for i in range(8):
                s = s + block[i, j]
            assert result.checksums[j] == s

    def test_max_search_with_exclusion(self):
        block = np.array(
            [
                [3.0, -5.0, 1.0, 2.0],
                [0.5, 0.25, -0.75, 0.1],
                [10.0, 10.0, 10.0, 10.0],
                [-1.0, -2.0, -3.0, -4.0],
            ]
        )
        result = algorithm1_reference(block, 2)
        assert np.array_equal(result.max_values[0], [5.0, 3.0])
        assert np.array_equal(result.max_ids[0], [1, 0])
        # Ties resolve to the first occurrence, then exclusion moves on.
        assert np.array_equal(result.max_ids[2], [0, 1])
        assert np.array_equal(result.max_values[3], [4.0, 3.0])

    def test_checksum_row_candidates(self, rng):
        block = rng.uniform(-1, 1, (6, 6))
        result = algorithm1_reference(block, 3)
        magnitudes = np.abs(result.checksums)
        order = np.argsort(-magnitudes)
        assert np.array_equal(result.checksum_max_ids, order[:3])
        assert np.allclose(result.checksum_max_values, magnitudes[order[:3]])

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="square"):
            algorithm1_reference(rng.uniform(size=(3, 4)), 1)
        with pytest.raises(ValueError, match="numMax"):
            algorithm1_reference(rng.uniform(size=(4, 4)), 5)


class TestEquivalenceWithVectorisedKernel:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), p=st.integers(1, 4))
    def test_kernel_matches_listing(self, seed, p):
        """The production encoding kernel must produce Algorithm 1's
        values (indices may differ only on exact-magnitude ties)."""
        rng = np.random.default_rng(seed)
        bs = 8
        a = rng.uniform(-1, 1, (bs, bs))

        reference = algorithm1_reference(a, p)

        sim = GpuSimulator()
        layout = PartitionedLayout(data_rows=bs, block_size=bs)
        d_a = sim.upload(a)
        d_out = sim.alloc((layout.encoded_rows, bs))
        d_vals = sim.alloc((layout.encoded_rows, 1, p))
        d_ids = sim.alloc((layout.encoded_rows, 1, p))
        sim.launch(EncodeColumnChecksumsKernel(d_a, d_out, d_vals, d_ids, layout, p))

        out = sim.download(d_out)
        vals = sim.download(d_vals)
        ids = sim.download(d_ids).astype(int)

        # Checksum row: numpy's pairwise sum vs the listing's sequential
        # accumulation agree to rounding.
        assert np.allclose(out[bs, :], reference.checksums, rtol=1e-14)
        # Top-p values per data row match the listing exactly.
        for tid in range(bs):
            assert np.allclose(vals[tid, 0], reference.max_values[tid])
            # Indices address same-magnitude elements.
            assert np.allclose(
                np.abs(a[tid, ids[tid, 0]]), reference.max_values[tid]
            )
        # The checksum row's candidates match too.
        assert np.allclose(vals[bs, 0], reference.checksum_max_values, rtol=1e-14)
