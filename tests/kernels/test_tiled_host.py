"""Host-level tiled GEMM: canonical tile plans and bitwise execution.

These are the primitives every compute backend shares (see
:mod:`repro.backends`): all backends execute the *same* plan-derived tile
list, so serial, thread-pooled and pool-staged execution must produce
bitwise-identical bytes.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.engine.plan import WorkspacePool
from repro.errors import ShapeError
from repro.kernels import plan_tiles, tiled_matmul


def operands(m=130, n=70, q=95, seed=5):
    rng = np.random.default_rng(seed)
    return rng.uniform(-1, 1, (m, n)), rng.uniform(-1, 1, (n, q))


class TestPlanTiles:
    def test_none_is_one_full_tile(self):
        assert plan_tiles(10, 7, None) == [(0, 10, 0, 7)]

    def test_tiles_cover_disjointly(self):
        tiles = plan_tiles(10, 7, 4)
        seen = np.zeros((10, 7), dtype=int)
        for i0, i1, j0, j1 in tiles:
            seen[i0:i1, j0:j1] += 1
        assert np.all(seen == 1)

    def test_edge_tiles_are_clipped(self):
        assert plan_tiles(5, 5, 4)[-1] == (4, 5, 4, 5)

    def test_oversized_tile_degenerates_to_full(self):
        assert plan_tiles(5, 5, 100) == [(0, 5, 0, 5)]

    def test_oversized_tile_matches_only_one_long_axis(self):
        # tile covers the rows but not the columns: still a real grid.
        assert plan_tiles(5, 12, 8) == [(0, 5, 0, 8), (0, 5, 8, 12)]

    def test_row_major_order_is_canonical(self):
        tiles = plan_tiles(8, 8, 4)
        assert tiles == [(0, 4, 0, 4), (0, 4, 4, 8), (4, 8, 0, 4), (4, 8, 4, 8)]

    def test_invalid_tile_rejected(self):
        with pytest.raises(ValueError):
            plan_tiles(8, 8, 0)


class TestTiledMatmul:
    def test_single_tile_equals_blas_call(self):
        a, b = operands()
        assert tiled_matmul(a, b).tobytes() == (a @ b).tobytes()

    def test_oversized_tile_is_bitwise_the_full_call_and_skips_staging(self):
        # The plan_tiles fast path: a tile covering the whole result must
        # behave exactly like tile=None — one BLAS call, no staging
        # buffers taken from the pool.
        class PoisonPool:
            def take(self, shape, dtype=None):
                raise AssertionError("fast path must not stage tiles")

            def give(self, buffer):
                raise AssertionError("fast path must not stage tiles")

        a, b = operands()
        result = tiled_matmul(a, b, tile=10_000, pool=PoisonPool())
        assert result.tobytes() == tiled_matmul(a, b, tile=None).tobytes()

    @pytest.mark.parametrize("tile", [16, 33, 64, 200])
    def test_serial_parallel_and_staged_agree_bitwise(self, tile):
        a, b = operands()
        serial = tiled_matmul(a, b, tile=tile)
        with ThreadPoolExecutor(max_workers=4) as pool:
            parallel = tiled_matmul(a, b, tile=tile, executor=pool)
        staged = tiled_matmul(a, b, tile=tile, pool=WorkspacePool())
        assert serial.tobytes() == parallel.tobytes() == staged.tobytes()

    def test_float32_bitwise_identity(self):
        a, b = operands()
        a32, b32 = a.astype(np.float32), b.astype(np.float32)
        serial = tiled_matmul(a32, b32, tile=33)
        with ThreadPoolExecutor(max_workers=4) as pool:
            parallel = tiled_matmul(a32, b32, tile=33, executor=pool)
        assert serial.dtype == np.float32
        assert serial.tobytes() == parallel.tobytes()

    def test_out_parameter_is_filled_in_place(self):
        a, b = operands()
        out = np.empty((a.shape[0], b.shape[1]))
        returned = tiled_matmul(a, b, tile=32, out=out)
        assert returned is out
        assert out.tobytes() == tiled_matmul(a, b, tile=32).tobytes()

    def test_shape_validation(self):
        a, b = operands()
        with pytest.raises(ShapeError):
            tiled_matmul(a, b[:-1, :])
        with pytest.raises(ShapeError):
            tiled_matmul(a[0], b)
        with pytest.raises(ShapeError):
            tiled_matmul(a, b, out=np.empty((1, 1)))

    def test_worker_exceptions_propagate(self):
        a, b = operands()

        class Boom(Exception):
            pass

        class ExplodingPool:
            def take(self, shape, dtype):
                raise Boom("pool failure")

            def give(self, buffer):
                pass

        with pytest.raises(Boom):
            tiled_matmul(a, b, tile=32, pool=ExplodingPool())
