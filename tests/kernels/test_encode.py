"""Encoding kernels (Algorithm 1) + global top-p reduction (step 3)."""

import numpy as np
import pytest

from repro.abft.encoding import (
    PartitionedLayout,
    encode_partitioned_columns,
    encode_partitioned_rows,
)
from repro.bounds.upper_bound import top_p_of_columns, top_p_of_rows
from repro.kernels.encode import (
    EncodeColumnChecksumsKernel,
    EncodeRowChecksumsKernel,
)
from repro.kernels.reduce import TopPReduceKernel

BS = 16
P = 2


def _encode_a_on_device(simulator, a, p=P, bs=BS):
    layout = PartitionedLayout(data_rows=a.shape[0], block_size=bs)
    inner_blocks = a.shape[1] // bs
    d_a = simulator.upload(a)
    d_out = simulator.alloc((layout.encoded_rows, a.shape[1]))
    d_vals = simulator.alloc((layout.encoded_rows, inner_blocks, p))
    d_ids = simulator.alloc((layout.encoded_rows, inner_blocks, p))
    simulator.launch(
        EncodeColumnChecksumsKernel(d_a, d_out, d_vals, d_ids, layout, p)
    )
    return layout, d_out, d_vals, d_ids


class TestEncodeColumns:
    def test_matches_host_encoding(self, simulator, rng):
        a = rng.uniform(-1, 1, (32, 48))
        layout, d_out, _, _ = _encode_a_on_device(simulator, a)
        expected, _ = encode_partitioned_columns(a, BS)
        # Checksums are summed top-to-bottom per block on device vs numpy
        # pairwise on host — equal up to rounding.
        assert np.allclose(simulator.download(d_out), expected, rtol=1e-14)

    def test_reduced_top_p_matches_host(self, simulator, rng):
        a = rng.uniform(-1, 1, (32, 48))
        layout, d_out, d_vals, d_ids = _encode_a_on_device(simulator, a)
        d_rv = simulator.alloc((layout.encoded_rows, P))
        d_ri = simulator.alloc((layout.encoded_rows, P))
        simulator.launch(TopPReduceKernel(d_vals, d_ids, d_rv, d_ri))

        a_cc = simulator.download(d_out)
        host_tops = top_p_of_rows(a_cc, P)
        dev_vals = simulator.download(d_rv)
        dev_ids = simulator.download(d_ri).astype(int)
        for r, top in enumerate(host_tops):
            assert np.allclose(dev_vals[r], top.values)
            # Indices must address elements of the same absolute value
            # (ties may resolve differently).
            assert np.allclose(np.abs(a_cc[r, dev_ids[r]]), top.values)

    def test_shape_validation(self, simulator, rng):
        a = rng.uniform(size=(32, 48))
        layout = PartitionedLayout(data_rows=32, block_size=BS)
        d_a = simulator.upload(a)
        d_bad = simulator.alloc((10, 10))
        d_v = simulator.alloc((layout.encoded_rows, 3, P))
        d_i = simulator.alloc((layout.encoded_rows, 3, P))
        with pytest.raises(ValueError, match="encoded buffer shape"):
            EncodeColumnChecksumsKernel(d_a, d_bad, d_v, d_i, layout, P)

    def test_inner_dim_divisibility(self, simulator, rng):
        a = rng.uniform(size=(32, 50))
        layout = PartitionedLayout(data_rows=32, block_size=BS)
        d_a = simulator.upload(a)
        d_out = simulator.alloc((layout.encoded_rows, 50))
        d_v = simulator.alloc((layout.encoded_rows, 3, P))
        d_i = simulator.alloc((layout.encoded_rows, 3, P))
        with pytest.raises(ValueError, match="not divisible"):
            EncodeColumnChecksumsKernel(d_a, d_out, d_v, d_i, layout, P)


class TestEncodeRows:
    def test_matches_host_encoding(self, simulator, rng):
        b = rng.uniform(-1, 1, (48, 32))
        layout = PartitionedLayout(data_rows=32, block_size=BS)
        inner_blocks = 48 // BS
        d_b = simulator.upload(b)
        d_out = simulator.alloc((48, layout.encoded_rows))
        d_v = simulator.alloc((layout.encoded_rows, inner_blocks, P))
        d_i = simulator.alloc((layout.encoded_rows, inner_blocks, P))
        simulator.launch(EncodeRowChecksumsKernel(d_b, d_out, d_v, d_i, layout, P))
        expected, _ = encode_partitioned_rows(b, BS)
        assert np.allclose(simulator.download(d_out), expected, rtol=1e-14)

    def test_reduced_column_top_p(self, simulator, rng):
        b = rng.uniform(-1, 1, (48, 32))
        layout = PartitionedLayout(data_rows=32, block_size=BS)
        inner_blocks = 48 // BS
        d_b = simulator.upload(b)
        d_out = simulator.alloc((48, layout.encoded_rows))
        d_v = simulator.alloc((layout.encoded_rows, inner_blocks, P))
        d_i = simulator.alloc((layout.encoded_rows, inner_blocks, P))
        simulator.launch(EncodeRowChecksumsKernel(d_b, d_out, d_v, d_i, layout, P))
        d_rv = simulator.alloc((layout.encoded_rows, P))
        d_ri = simulator.alloc((layout.encoded_rows, P))
        simulator.launch(TopPReduceKernel(d_v, d_i, d_rv, d_ri))

        b_rc = simulator.download(d_out)
        host_tops = top_p_of_columns(b_rc, P)
        dev_vals = simulator.download(d_rv)
        for c, top in enumerate(host_tops):
            assert np.allclose(dev_vals[c], top.values)


class TestReduceKernel:
    def test_validation(self, simulator):
        d_v = simulator.alloc((4, 2, 2))
        d_i = simulator.alloc((4, 2, 2))
        d_bad = simulator.alloc((4, 3))
        d_ok = simulator.alloc((4, 2))
        with pytest.raises(ValueError, match="shape"):
            TopPReduceKernel(d_v, d_i, d_bad, d_ok)

    def test_reduction_picks_global_maxima(self, simulator):
        # Hand-built candidates: two blocks with interleaved magnitudes.
        vals = np.array([[[5.0, 1.0], [4.0, 3.0]]])
        ids = np.array([[[0.0, 1.0], [8.0, 9.0]]])
        d_v = simulator.upload(vals)
        d_i = simulator.upload(ids)
        d_rv = simulator.alloc((1, 2))
        d_ri = simulator.alloc((1, 2))
        simulator.launch(TopPReduceKernel(d_v, d_i, d_rv, d_ri))
        assert np.array_equal(simulator.download(d_rv)[0], [5.0, 4.0])
        assert np.array_equal(simulator.download(d_ri)[0], [0.0, 8.0])
