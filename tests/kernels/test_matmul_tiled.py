"""The register-tiled Algorithm 3 kernel."""

import numpy as np
import pytest

from repro.faults.injector import FaultInjector
from repro.faults.model import FaultSite, FaultSpec
from repro.fp.errorvec import ErrorVector
from repro.kernels.matmul import sequential_inner_product
from repro.kernels.matmul_tiled import RegisterTiledMatmulKernel


def _spec(site, bit, k=0, sm=0):
    return FaultSpec(
        sm_id=sm,
        site=site,
        module_row=2,
        module_col=3,
        error_vector=ErrorVector(mask=1 << bit, field="mantissa", bit_indices=(bit,)),
        k_injection=k,
    )


def _launch(simulator, a, b, injector=None, **tile):
    d_a, d_b = simulator.upload(a), simulator.upload(b)
    d_c = simulator.alloc((a.shape[0], b.shape[1]))
    kernel = RegisterTiledMatmulKernel(d_a, d_b, d_c, injector=injector, **tile)
    if injector is not None:
        injector.resolve(
            simulator.scheduler.assign(kernel.launch_config()),
            (kernel.bm, kernel.bn),
        )
    simulator.launch(kernel)
    return simulator.download(d_c), kernel


class TestTiledNumerics:
    def test_matches_sequential_order_exactly(self, simulator, rng):
        """Lockstep rank-1 updates = per-thread sequential k-order: every
        element must equal the sequential inner product bit for bit."""
        a = rng.uniform(-1, 1, (32, 40))
        b = rng.uniform(-1, 1, (40, 32))
        c, _ = _launch(simulator, a, b, bm=16, bn=16, bk=8, rx=4, ry=4)
        for i in range(32):
            for j in range(32):
                assert c[i, j] == sequential_inner_product(a[i], b[:, j])

    def test_matches_numpy_within_rounding(self, simulator, rng):
        a = rng.uniform(-1, 1, (64, 64))
        b = rng.uniform(-1, 1, (64, 64))
        c, _ = _launch(simulator, a, b, bm=32, bn=32, bk=8, rx=4, ry=4)
        assert np.allclose(c, a @ b, rtol=1e-13)

    def test_inner_dim_not_multiple_of_bk(self, simulator, rng):
        a = rng.uniform(-1, 1, (16, 37))  # 37 = 4*8 + 5
        b = rng.uniform(-1, 1, (37, 16))
        c, _ = _launch(simulator, a, b, bm=16, bn=16, bk=8, rx=4, ry=4)
        assert c[3, 5] == sequential_inner_product(a[3], b[:, 5])

    def test_flop_accounting(self, simulator, rng):
        a = rng.uniform(-1, 1, (32, 16))
        b = rng.uniform(-1, 1, (16, 32))
        d_a, d_b = simulator.upload(a), simulator.upload(b)
        d_c = simulator.alloc((32, 32))
        record = simulator.launch(
            RegisterTiledMatmulKernel(d_a, d_b, d_c, bm=16, bn=16, bk=8)
        )
        assert record.stats.flops == 2 * 32 * 16 * 32

    def test_validation(self, simulator, rng):
        d_a = simulator.upload(rng.uniform(size=(32, 16)))
        d_b = simulator.upload(rng.uniform(size=(16, 32)))
        d_c = simulator.alloc((32, 32))
        with pytest.raises(ValueError, match="register tiles"):
            RegisterTiledMatmulKernel(d_a, d_b, d_c, bm=16, bn=16, rx=5, ry=4)
        with pytest.raises(ValueError, match="blocks"):
            RegisterTiledMatmulKernel(d_a, d_b, d_c, bm=24, bn=16)


class TestTiledFaults:
    def test_mul_fault_exact_semantics(self, simulator, rng):
        """The struck element must equal the sequential replay with the
        same fault — bit for bit."""
        a = rng.uniform(-1, 1, (32, 40))
        b = rng.uniform(-1, 1, (40, 32))
        spec = _spec(FaultSite.INNER_MUL, bit=48, k=17, sm=1)
        injector = FaultInjector(spec, rng)
        c, kernel = _launch(
            simulator, a, b, injector=injector, bm=16, bn=16, bk=8, rx=4, ry=4
        )
        act = injector.activation
        blocks_x = 32 // 16
        blk_y, blk_x = divmod(act.linear_block_index, blocks_x)
        r = blk_y * 16 + act.element_row
        col = blk_x * 16 + act.element_col

        replay = FaultInjector(spec, rng)
        replay.resolve_direct()
        expected = sequential_inner_product(a[r], b[:, col], replay)
        assert c[r, col] == expected

    @pytest.mark.parametrize(
        "site", [FaultSite.INNER_MUL, FaultSite.INNER_ADD, FaultSite.MERGE_ADD]
    )
    def test_exactly_one_element_corrupted(self, simulator, rng, site):
        a = rng.uniform(-1, 1, (32, 40))
        b = rng.uniform(-1, 1, (40, 32))
        spec = _spec(site, bit=50, k=20, sm=2)
        injector = FaultInjector(spec, rng)
        c, _ = _launch(
            simulator, a, b, injector=injector, bm=16, bn=16, bk=8, rx=4, ry=4
        )
        clean = np.empty_like(c)
        for i in range(32):
            for j in range(32):
                clean[i, j] = sequential_inner_product(a[i], b[:, j])
        different = np.argwhere(c != clean)
        assert len(different) == 1

    def test_agrees_with_simple_kernel_fault_path(self, simulator, rng):
        """Both matmul kernels implement the same fault semantics; for an
        identical resolved strike the corrupted element values agree."""
        from repro.kernels.matmul import BlockMatmulKernel

        a = rng.uniform(-1, 1, (32, 24))
        b = rng.uniform(-1, 1, (24, 32))
        spec = _spec(FaultSite.INNER_ADD, bit=49, k=11, sm=0)

        rng1 = np.random.default_rng(7)
        inj1 = FaultInjector(spec, rng1)
        c_tiled, _ = _launch(
            simulator, a, b, injector=inj1, bm=16, bn=16, bk=8, rx=4, ry=4
        )

        rng2 = np.random.default_rng(7)
        inj2 = FaultInjector(spec, rng2)
        d_a, d_b = simulator.upload(a), simulator.upload(b)
        d_c = simulator.alloc((32, 32))
        simple = BlockMatmulKernel(d_a, d_b, d_c, 16, 16, injector=inj2)
        inj2.resolve(simulator.scheduler.assign(simple.launch_config()), (16, 16))
        simulator.launch(simple)
        c_simple = simulator.download(d_c)

        act = inj1.activation
        blk_y, blk_x = divmod(act.linear_block_index, 2)
        r = blk_y * 16 + act.element_row
        col = blk_x * 16 + act.element_col
        assert c_tiled[r, col] == c_simple[r, col]
