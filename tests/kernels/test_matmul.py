"""The block matmul kernel (Algorithm 3): numerics and fault semantics."""

import numpy as np
import pytest

from repro.faults.injector import FaultInjector
from repro.faults.model import FaultSite, FaultSpec
from repro.fp.errorvec import ErrorVector
from repro.kernels.matmul import BlockMatmulKernel, sequential_inner_product


def _spec(site, bit, k=0, sm=0, row=1, col=2):
    return FaultSpec(
        sm_id=sm,
        site=site,
        module_row=row,
        module_col=col,
        error_vector=ErrorVector(mask=1 << bit, field="mantissa", bit_indices=(bit,)),
        k_injection=k,
    )


class TestSequentialInnerProduct:
    def test_matches_python_accumulation(self, rng):
        a = rng.uniform(-1, 1, 100)
        b = rng.uniform(-1, 1, 100)
        expected = 0.0
        for x, y in zip(a, b):
            expected += x * y
        assert sequential_inner_product(a, b) == expected

    def test_order_differs_from_blas_at_rounding_level(self, rng):
        a = rng.uniform(-1, 1, 1000)
        b = rng.uniform(-1, 1, 1000)
        seq = sequential_inner_product(a, b)
        blas = float(a @ b)
        assert seq == pytest.approx(blas, rel=1e-12)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            sequential_inner_product([1.0], [1.0, 2.0])

    def test_mul_fault_at_step_k(self, rng):
        a = rng.uniform(1, 2, 10)
        b = rng.uniform(1, 2, 10)
        spec = _spec(FaultSite.INNER_MUL, bit=51, k=4)
        injector = FaultInjector(spec, rng)
        injector.resolve_direct()
        faulty = sequential_inner_product(a, b, injector)
        clean = sequential_inner_product(a, b)
        # The induced delta is exactly the bit flip of the k=4 product.
        from repro.fp.bits import flip_bit

        prod = a[4] * b[4]
        expected_delta = abs(float(flip_bit(prod, 51)) - prod)
        assert abs(faulty - clean) == pytest.approx(expected_delta, rel=1e-9)

    def test_add_fault_perturbs_accumulator(self, rng):
        a = rng.uniform(1, 2, 10)
        b = rng.uniform(1, 2, 10)
        spec = _spec(FaultSite.INNER_ADD, bit=0, k=9)
        injector = FaultInjector(spec, rng)
        injector.resolve_direct()
        faulty = sequential_inner_product(a, b, injector)
        clean = sequential_inner_product(a, b)
        assert faulty != clean
        assert abs(faulty - clean) < 1e-12  # LSB flip of the final sum

    def test_merge_fault_hits_final_value(self, rng):
        a = rng.uniform(1, 2, 10)
        b = rng.uniform(1, 2, 10)
        spec = _spec(FaultSite.MERGE_ADD, bit=51)
        injector = FaultInjector(spec, rng)
        injector.resolve_direct()
        faulty = sequential_inner_product(a, b, injector)
        clean = sequential_inner_product(a, b)
        assert injector.activation.fired
        from repro.fp.bits import flip_bit

        assert faulty == float(flip_bit(clean, 51))


class TestBlockMatmulKernel:
    def test_matches_numpy(self, simulator, rng):
        a = rng.uniform(-1, 1, (64, 48))
        b = rng.uniform(-1, 1, (48, 96))
        d_a, d_b = simulator.upload(a), simulator.upload(b)
        d_c = simulator.alloc((64, 96))
        simulator.launch(BlockMatmulKernel(d_a, d_b, d_c, 32, 32))
        assert np.allclose(simulator.download(d_c), a @ b, rtol=1e-13)

    def test_faithful_mode_matches_sequential_order(self, simulator, rng):
        a = rng.uniform(-1, 1, (8, 16))
        b = rng.uniform(-1, 1, (16, 8))
        d_a, d_b = simulator.upload(a), simulator.upload(b)
        d_c = simulator.alloc((8, 8))
        simulator.launch(BlockMatmulKernel(d_a, d_b, d_c, 4, 4, faithful=True))
        c = simulator.download(d_c)
        for i in range(8):
            for j in range(8):
                assert c[i, j] == sequential_inner_product(a[i], b[:, j])

    def test_shape_validation(self, simulator, rng):
        d_a = simulator.upload(rng.uniform(size=(8, 8)))
        d_b = simulator.upload(rng.uniform(size=(9, 8)))
        d_c = simulator.alloc((8, 8))
        with pytest.raises(ValueError, match="inner dimensions"):
            BlockMatmulKernel(d_a, d_b, d_c, 4, 4)

    def test_tile_divisibility(self, simulator, rng):
        d_a = simulator.upload(rng.uniform(size=(9, 8)))
        d_b = simulator.upload(rng.uniform(size=(8, 8)))
        d_c = simulator.alloc((9, 8))
        with pytest.raises(ValueError, match="not divisible"):
            BlockMatmulKernel(d_a, d_b, d_c, 4, 4)

    def test_flop_accounting(self, simulator, rng):
        n = 32
        d_a = simulator.upload(rng.uniform(size=(n, n)))
        d_b = simulator.upload(rng.uniform(size=(n, n)))
        d_c = simulator.alloc((n, n))
        record = simulator.launch(BlockMatmulKernel(d_a, d_b, d_c, 16, 16))
        assert record.stats.flops == 2 * n * n * n


class TestFaultInjectionThroughKernel:
    def _run(self, simulator, rng, spec, n=64, tile=16):
        a = rng.uniform(-1, 1, (n, n))
        b = rng.uniform(-1, 1, (n, n))
        d_a, d_b = simulator.upload(a), simulator.upload(b)
        d_c = simulator.alloc((n, n))
        injector = FaultInjector(spec, rng)
        kernel = BlockMatmulKernel(d_a, d_b, d_c, tile, tile, injector=injector)
        injector.resolve(simulator.scheduler.assign(kernel.launch_config()), (tile, tile))
        simulator.launch(kernel)
        return a, b, simulator.download(d_c), injector

    def test_exactly_one_element_corrupted(self, simulator, rng):
        spec = _spec(FaultSite.MERGE_ADD, bit=50, sm=1)
        a, b, c, injector = self._run(simulator, rng, spec)
        clean = a @ b
        diff = np.abs(c - clean)
        # Allow rounding-order noise at the replayed element, but the
        # injected delta must dominate at exactly one position.
        big = diff > 1e-6
        assert big.sum() == 1
        act = injector.activation
        assert act.fired
        blk_per_row = a.shape[1] // 16
        blk_y, blk_x = divmod(act.linear_block_index, blk_per_row)
        r = blk_y * 16 + act.element_row
        col = blk_x * 16 + act.element_col
        assert big[r, col]

    def test_resolve_fails_when_sm_has_no_blocks(self, simulator, rng):
        from repro.errors import FaultSpecError

        spec = _spec(FaultSite.MERGE_ADD, bit=50, sm=12)
        with pytest.raises(FaultSpecError, match="no thread blocks"):
            self._run(simulator, rng, spec, n=32)  # only 4 blocks -> SMs 0..3

    def test_fault_lands_on_requested_sm(self, simulator, rng):
        for sm in (0, 5, 12):
            spec = _spec(FaultSite.MERGE_ADD, bit=50, sm=sm)
            _, _, _, injector = self._run(simulator, rng, spec)
            assert (
                simulator.scheduler.sm_of_block(
                    injector.activation.linear_block_index
                )
                == sm
            )

    def test_fault_free_injector_blocks_untouched(self, simulator, rng):
        """Blocks not targeted by the injector take the fast path and match
        BLAS exactly."""
        spec = _spec(FaultSite.MERGE_ADD, bit=50, sm=0)
        a, b, c, injector = self._run(simulator, rng, spec)
        clean = a @ b
        act = injector.activation
        blk_per_row = a.shape[1] // 16
        blk_y, blk_x = divmod(act.linear_block_index, blk_per_row)
        mask = np.ones_like(c, dtype=bool)
        mask[blk_y * 16 : (blk_y + 1) * 16, blk_x * 16 : (blk_x + 1) * 16] = False
        assert np.array_equal(c[mask], clean[mask])
