"""Device-side correction kernel and the pipeline's auto-correct path."""

import numpy as np
import pytest

from repro.abft.checking import check_partitioned
from repro.abft.encoding import (
    encode_partitioned_columns,
    encode_partitioned_rows,
)
from repro.abft.pipeline import AABFTPipeline
from repro.abft.providers import ConstantEpsilonProvider
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultSite, FaultSpec
from repro.fp.errorvec import ErrorVector
from repro.gpusim.simulator import GpuSimulator
from repro.kernels.correct import CorrectionKernel

EPS = ConstantEpsilonProvider(1e-9)


@pytest.fixture
def corrupted(rng):
    a = rng.uniform(-1, 1, (64, 48))
    b = rng.uniform(-1, 1, (48, 64))
    a_cc, rows = encode_partitioned_columns(a, 32)
    b_rc, cols = encode_partitioned_rows(b, 32)
    c = a_cc @ b_rc
    clean = c.copy()
    c[10, 40] += 1e-3
    report = check_partitioned(c, rows, cols, EPS)
    return c, clean, rows, cols, report


class TestCorrectionKernel:
    def _launch(self, simulator, c, rows, cols, locations):
        d_c = simulator.upload(c)
        d_status = simulator.alloc((rows.num_blocks, cols.num_blocks))
        simulator.launch(
            CorrectionKernel(d_c, locations, rows, cols, d_status)
        )
        return simulator.download(d_c), simulator.download(d_status)

    def test_single_error_corrected(self, simulator, corrupted):
        c, clean, rows, cols, report = corrupted
        fixed, status = self._launch(
            simulator, c, rows, cols, report.located_errors
        )
        assert status[0, 1] == 1.0  # the block holding (10, 40)
        assert np.count_nonzero(status == 1.0) == 1
        assert fixed[10, 40] == pytest.approx(clean[10, 40], rel=1e-12)
        recheck = check_partitioned(fixed, rows, cols, EPS)
        assert not recheck.error_detected

    def test_checksum_element_corrected(self, simulator, rng):
        a = rng.uniform(-1, 1, (64, 48))
        b = rng.uniform(-1, 1, (48, 64))
        a_cc, rows = encode_partitioned_columns(a, 32)
        b_rc, cols = encode_partitioned_rows(b, 32)
        c = a_cc @ b_rc
        cs = rows.checksum_index(1)
        c[cs, 5] += 1e-3
        report = check_partitioned(c, rows, cols, EPS)
        fixed, status = self._launch(
            simulator, c, rows, cols, report.located_errors
        )
        assert np.count_nonzero(status == 1.0) == 1
        assert not check_partitioned(fixed, rows, cols, EPS).error_detected

    def test_ambiguous_block_left_untouched(self, simulator, corrupted):
        c, clean, rows, cols, _ = corrupted
        c = clean.copy()
        c[1, 2] += 1e-3
        c[3, 4] += 1e-3  # same block: four candidate intersections
        report = check_partitioned(c, rows, cols, EPS)
        before = c.copy()
        fixed, status = self._launch(
            simulator, c, rows, cols, report.located_errors
        )
        assert status[0, 0] == 2.0
        assert np.array_equal(fixed, before)

    def test_clean_blocks_report_zero(self, simulator, corrupted):
        c, _, rows, cols, report = corrupted
        _, status = self._launch(simulator, c, rows, cols, report.located_errors)
        assert np.count_nonzero(status == 0.0) == status.size - 1

    def test_shape_validation(self, simulator, corrupted):
        c, _, rows, cols, _ = corrupted
        d_c = simulator.upload(c)
        bad = simulator.alloc((1, 1))
        with pytest.raises(ValueError, match="status buffer"):
            CorrectionKernel(d_c, [], rows, cols, bad)


class TestPipelineAutoCorrect:
    def _spec(self, bit=50):
        return FaultSpec(
            sm_id=1,
            site=FaultSite.MERGE_ADD,
            module_row=4,
            module_col=5,
            error_vector=ErrorVector(
                mask=1 << bit, field="mantissa", bit_indices=(bit,)
            ),
        )

    def test_fault_corrected_in_flight(self, rng):
        a = rng.uniform(-1, 1, (128, 128))
        b = rng.uniform(-1, 1, (128, 128))
        sim = GpuSimulator()
        result = AABFTPipeline(sim, block_size=64).run(
            a, b, injector=FaultInjector(self._spec(), rng), auto_correct=True
        )
        assert not result.detected  # the re-check after correction passes
        assert len(result.corrected_blocks) == 1
        assert np.allclose(result.c, a @ b, rtol=1e-10)
        assert "abft_correct" in {r.kernel_name for r in sim.profiler.records}

    def test_clean_run_skips_correction_kernel(self, rng):
        a = rng.uniform(-1, 1, (64, 64))
        b = rng.uniform(-1, 1, (64, 64))
        sim = GpuSimulator()
        result = AABFTPipeline(sim, block_size=32).run(a, b, auto_correct=True)
        assert result.corrected_blocks == ()
        assert "abft_correct" not in {r.kernel_name for r in sim.profiler.records}
