"""The fused online-ABFT kernel: reconciliation, early abort, localisation.

Bitwise reconciliation is the load-bearing property: whatever the fused
tile geometry, the in-loop discrepancy grids must be byte-for-byte what
:func:`~repro.abft.checking.column_discrepancies` /
:func:`~repro.abft.checking.row_discrepancies` compute over the fused
result's own bytes, and the degenerate single-tile mode must reproduce
the separate path's result bytes exactly.  The fault campaign then
asserts tile-granular behaviour: a flipped tile is named precisely, only
it is recomputed, and a persistent flip aborts the scan early.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abft.checking import column_discrepancies, row_discrepancies
from repro.abft.encoding import (
    encode_partitioned_columns,
    encode_partitioned_rows,
)
from repro.engine.plan import WorkspacePool
from repro.errors import ShapeError
from repro.kernels.online_fused import online_fused_matmul, plan_fused_tiles


def encoded_problem(m, n, q, bs, dtype=np.float64, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, (m, n)).astype(dtype)
    b = rng.uniform(-1, 1, (n, q)).astype(dtype)
    a_cc, row_layout = encode_partitioned_columns(a, bs)
    b_rc, col_layout = encode_partitioned_rows(b, bs)
    return a_cc, b_rc, row_layout, col_layout


def inf_grids(row_layout, col_layout):
    col_eps = np.full(
        (row_layout.num_blocks, col_layout.encoded_rows), np.inf
    )
    row_eps = np.full(
        (row_layout.encoded_rows, col_layout.num_blocks), np.inf
    )
    return col_eps, row_eps


def tight_grids(a_cc, b_rc, row_layout, col_layout, margin=10.0):
    """Tolerances hugging the clean rounding noise: any flip must trip."""
    c = a_cc @ b_rc
    col_eps = column_discrepancies(c, row_layout) * margin + 1e-12
    row_eps = row_discrepancies(c, col_layout) * margin + 1e-12
    return col_eps, row_eps


class TestPlanFusedTiles:
    def test_none_is_the_single_full_tile(self):
        _, _, rl, cl = encoded_problem(12, 10, 8, 4)
        assert plan_fused_tiles(rl, cl, None) == [
            (0, rl.encoded_rows, 0, cl.encoded_rows)
        ]

    def test_non_positive_tile_blocks_rejected(self):
        _, _, rl, cl = encoded_problem(12, 10, 8, 4)
        with pytest.raises(ValueError):
            plan_fused_tiles(rl, cl, 0)

    @given(
        row_blocks=st.integers(1, 5),
        col_blocks=st.integers(1, 5),
        bs=st.integers(2, 7),
        tb=st.integers(1, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_tiles_cover_whole_blocks_disjointly(
        self, row_blocks, col_blocks, bs, tb
    ):
        _, _, rl, cl = encoded_problem(
            row_blocks * bs, 5, col_blocks * bs, bs
        )
        tiles = plan_fused_tiles(rl, cl, tb)
        covered = np.zeros((rl.encoded_rows, cl.encoded_rows), dtype=int)
        for i0, i1, j0, j1 in tiles:
            # Stride-aligned: every tile spans whole encoded blocks, so
            # clipped edge tiles still check complete checksum groups.
            assert i0 % rl.stride == 0 and j0 % cl.stride == 0
            assert i1 % rl.stride == 0 and j1 % cl.stride == 0
            covered[i0:i1, j0:j1] += 1
        assert (covered == 1).all()


class TestBitwiseReconciliation:
    @given(
        row_blocks=st.integers(1, 4),
        col_blocks=st.integers(1, 4),
        bs=st.integers(2, 7),
        tb=st.one_of(st.none(), st.integers(1, 5)),
        dtype=st.sampled_from([np.float64, np.float32]),
        pooled=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_grids_match_the_full_matrix_oracles(
        self, row_blocks, col_blocks, bs, tb, dtype, pooled
    ):
        a_cc, b_rc, rl, cl = encoded_problem(
            row_blocks * bs, 6, col_blocks * bs, bs, dtype=dtype
        )
        col_eps, row_eps = inf_grids(rl, cl)
        outcome = online_fused_matmul(
            a_cc, b_rc,
            row_layout=rl, col_layout=cl,
            col_eps=col_eps, row_eps=row_eps,
            tile_blocks=tb,
            pool=WorkspacePool() if pooled else None,
        )
        assert outcome.clean
        assert outcome.tiles_checked == outcome.tiles_total
        assert np.array_equal(
            outcome.col_disc, column_discrepancies(outcome.out, rl)
        )
        assert np.array_equal(
            outcome.row_disc, row_discrepancies(outcome.out, cl)
        )
        if tb is None:
            # Degenerate mode: the separate path's exact result bytes.
            assert np.array_equal(outcome.out, a_cc @ b_rc)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_lookahead_executor_is_bitwise_neutral(self, dtype):
        a_cc, b_rc, rl, cl = encoded_problem(20, 9, 15, 5, dtype=dtype)
        col_eps, row_eps = inf_grids(rl, cl)
        kwargs = dict(
            row_layout=rl, col_layout=cl,
            col_eps=col_eps, row_eps=row_eps, tile_blocks=2,
        )
        serial = online_fused_matmul(a_cc, b_rc, **kwargs)
        with ThreadPoolExecutor(max_workers=2) as executor:
            parallel = online_fused_matmul(
                a_cc, b_rc, executor=executor, **kwargs
            )
        assert serial.out.tobytes() == parallel.out.tobytes()
        assert np.array_equal(serial.col_disc, parallel.col_disc)
        assert np.array_equal(serial.row_disc, parallel.row_disc)

    def test_degenerate_mode_honours_the_plan_gemm_tile(self):
        from repro.kernels.matmul_tiled import tiled_matmul

        a_cc, b_rc, rl, cl = encoded_problem(20, 9, 15, 5)
        col_eps, row_eps = inf_grids(rl, cl)
        outcome = online_fused_matmul(
            a_cc, b_rc,
            row_layout=rl, col_layout=cl,
            col_eps=col_eps, row_eps=row_eps,
            tile_blocks=None, gemm_tile=7,
        )
        assert np.array_equal(outcome.out, tiled_matmul(a_cc, b_rc, tile=7))

    def test_shape_validation(self):
        a_cc, b_rc, rl, cl = encoded_problem(12, 6, 8, 4)
        col_eps, row_eps = inf_grids(rl, cl)
        with pytest.raises(ShapeError):
            online_fused_matmul(
                a_cc, b_rc[:-1],
                row_layout=rl, col_layout=cl,
                col_eps=col_eps, row_eps=row_eps,
            )
        with pytest.raises(ShapeError):
            online_fused_matmul(
                a_cc, b_rc,
                row_layout=rl, col_layout=cl,
                col_eps=col_eps[:, :-1], row_eps=row_eps,
            )


def tile_reference(a_cc, b_rc, tiles):
    """The fused multi-tile GEMM's own oracle: the same per-tile BLAS calls.

    Subdividing a BLAS call is not bitwise neutral, so the oracle for a
    multi-tile fused product is the per-tile product, not ``a @ b``.
    """
    out = np.empty(
        (a_cc.shape[0], b_rc.shape[1]), dtype=np.result_type(a_cc, b_rc)
    )
    for i0, i1, j0, j1 in tiles:
        np.matmul(a_cc[i0:i1, :], b_rc[:, j0:j1], out=out[i0:i1, j0:j1])
    return out


def flipping_hook(target_tile, *, transient=False, bit=40):
    """Inject a mantissa flip into one element of ``target_tile``.

    Persistent by default: the flip re-fires on every attempt, so the
    recompute cannot heal it.  ``transient=True`` fires on attempt 0 only.
    """
    def hook(tile_index, attempt, tile_view):
        if tile_index != target_tile:
            return
        if transient and attempt > 0:
            return
        r, c = np.unravel_index(
            int(np.argmax(np.abs(tile_view) > 0)), tile_view.shape
        )
        cell = np.ascontiguousarray(tile_view[r, c : c + 1])
        raw = cell.view(np.uint64)
        raw ^= np.uint64(1 << bit)
        tile_view[r, c] = cell[0]
    return hook


class TestFaultCampaign:
    @given(
        row_blocks=st.integers(2, 4),
        col_blocks=st.integers(2, 4),
        bs=st.integers(3, 6),
        tb=st.integers(1, 3),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_persistent_flip_names_the_tile_and_aborts_early(
        self, row_blocks, col_blocks, bs, tb, data
    ):
        a_cc, b_rc, rl, cl = encoded_problem(
            row_blocks * bs, 7, col_blocks * bs, bs, seed=3
        )
        col_eps, row_eps = tight_grids(a_cc, b_rc, rl, cl)
        tiles = plan_fused_tiles(rl, cl, tb)
        target = data.draw(
            st.integers(0, len(tiles) - 1), label="target tile"
        )
        outcome = online_fused_matmul(
            a_cc, b_rc,
            row_layout=rl, col_layout=cl,
            col_eps=col_eps, row_eps=row_eps,
            tile_blocks=tb,
            max_recomputes=2,
            inject_hook=flipping_hook(target),
        )
        # The exact failed tile is named; only it was ever recomputed.
        assert outcome.failed_tile == target
        assert outcome.early_abort
        assert outcome.recomputed_tiles == [target]
        # The scan stopped at the failed tile: nothing past it checked.
        assert outcome.tiles_checked == target + 1
        # The product still completed; every *other* tile is pristine.
        reference = tile_reference(a_cc, b_rc, tiles)
        mask = np.ones_like(reference, dtype=bool)
        i0, i1, j0, j1 = tiles[target]
        mask[i0:i1, j0:j1] = False
        assert np.array_equal(outcome.out[mask], reference[mask])

    def test_transient_flip_heals_via_tile_recompute(self):
        a_cc, b_rc, rl, cl = encoded_problem(12, 7, 12, 4, seed=5)
        col_eps, row_eps = tight_grids(a_cc, b_rc, rl, cl)
        outcome = online_fused_matmul(
            a_cc, b_rc,
            row_layout=rl, col_layout=cl,
            col_eps=col_eps, row_eps=row_eps,
            tile_blocks=1,
            inject_hook=flipping_hook(2, transient=True),
        )
        # Recompute of exactly the flipped tile healed the product.
        assert outcome.clean
        assert not outcome.early_abort
        assert outcome.recomputed_tiles == [2]
        assert outcome.tiles_checked == outcome.tiles_total
        assert np.array_equal(
            outcome.out,
            tile_reference(a_cc, b_rc, plan_fused_tiles(rl, cl, 1)),
        )

    def test_abort_on_failure_false_checks_every_tile(self):
        a_cc, b_rc, rl, cl = encoded_problem(12, 7, 12, 4, seed=5)
        col_eps, row_eps = tight_grids(a_cc, b_rc, rl, cl)
        outcome = online_fused_matmul(
            a_cc, b_rc,
            row_layout=rl, col_layout=cl,
            col_eps=col_eps, row_eps=row_eps,
            tile_blocks=1,
            abort_on_failure=False,
            inject_hook=flipping_hook(0),
        )
        # Timing mode: no recompute, no abort, full scan.
        assert not outcome.early_abort
        assert outcome.recomputed_tiles == []
        assert outcome.tiles_checked == outcome.tiles_total
