"""Bitwise identity of the fused encode / vectorised check fast paths.

The engine's hot path runs :func:`repro.kernels.fused_encode` plus the
grid-based check; the per-block loop kernels
(``encode_partitioned_*_reference``) and the scalar tolerance loop
(``check_partitioned(..., use_grids=False)``) stay in the tree as the
oracles.  These property tests pin the fast paths to the oracles bit for
bit across shapes, block sizes and dtypes — including non-divisible
(padded) edge blocks — and to the literal Algorithm 1 listing for a
single block.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abft.checking import check_partitioned
from repro.abft.encoding import (
    encode_partitioned_columns,
    encode_partitioned_columns_reference,
    encode_partitioned_rows,
    encode_partitioned_rows_reference,
    pad_to_block_multiple,
)
from repro.abft.providers import AABFTEpsilonProvider
from repro.bounds.probabilistic import ProbabilisticBound
from repro.bounds.upper_bound import top_p_of_columns, top_p_of_rows
from repro.engine.plan import WorkspacePool
from repro.errors import ConfigurationError
from repro.fp.constants import format_for_dtype
from repro.kernels import fused_encode
from repro.kernels.encode_reference import algorithm1_reference

shapes = st.tuples(st.integers(1, 40), st.integers(1, 40))
block_sizes = st.integers(1, 16)
dtypes = st.sampled_from([np.float64, np.float32])
seeds = st.integers(0, 2**32 - 1)


def _operand(shape, dtype, seed):
    rng = np.random.default_rng(seed)
    return rng.uniform(-4, 4, shape).astype(dtype)


class TestFusedEncodeBitwise:
    @settings(max_examples=120, deadline=None)
    @given(shapes, block_sizes, dtypes, seeds)
    def test_a_side_matches_reference(self, shape, bs, dtype, seed):
        a = _operand(shape, dtype, seed)
        a_pad, _ = pad_to_block_multiple(a, bs, axis=0)
        res = fused_encode(a_pad, "a", bs, p=1)
        ref, ref_layout = encode_partitioned_columns_reference(a_pad, bs)
        assert res.encoded.dtype == ref.dtype
        assert np.array_equal(res.encoded, ref)
        assert res.layout == ref_layout

    @settings(max_examples=120, deadline=None)
    @given(shapes, block_sizes, dtypes, seeds)
    def test_b_side_matches_reference(self, shape, bs, dtype, seed):
        b = _operand(shape, dtype, seed)
        b_pad, _ = pad_to_block_multiple(b, bs, axis=1)
        res = fused_encode(b_pad, "b", bs, p=1)
        ref, ref_layout = encode_partitioned_rows_reference(b_pad, bs)
        assert res.encoded.dtype == ref.dtype
        assert np.array_equal(res.encoded, ref)
        assert res.layout == ref_layout

    @settings(max_examples=60, deadline=None)
    @given(shapes, block_sizes, st.integers(1, 4), seeds)
    def test_top_p_matches_per_vector_path(self, shape, bs, p, seed):
        a = _operand(shape, np.float64, seed)
        a_pad, _ = pad_to_block_multiple(a, bs, axis=0)
        p = min(p, a_pad.shape[1])
        res = fused_encode(a_pad, "a", bs, p=p)
        tops = top_p_of_rows(res.encoded, p)
        for k, top in enumerate(tops):
            assert np.array_equal(res.top_values[k], top.values)
            assert np.array_equal(res.top_indices[k], top.indices)

    def test_pooled_buffers_identical(self, rng):
        pool = WorkspacePool()
        a = rng.uniform(-1, 1, (96, 40))
        cold = fused_encode(a, "a", 32, p=2)
        warm = fused_encode(a, "a", 32, p=2, pool=pool)
        pool.give(warm.encoded)
        again = fused_encode(a, "a", 32, p=2, pool=pool)
        assert again.encoded is warm.encoded  # the pool recycled the buffer
        for res in (warm, again):
            assert np.array_equal(res.encoded, cold.encoded)
            assert np.array_equal(res.top_values, cold.top_values)
            assert np.array_equal(res.top_indices, cold.top_indices)

    def test_sea_norms(self, rng):
        b = rng.uniform(-1, 1, (40, 96))
        res = fused_encode(b, "b", 32, norms=True)
        assert res.top_values is None
        assert np.array_equal(res.norms, np.linalg.norm(res.encoded, axis=0))

    def test_validation(self, rng):
        m = rng.uniform(-1, 1, (32, 32))
        with pytest.raises(ConfigurationError):
            fused_encode(m, "c", 32)
        with pytest.raises(ConfigurationError):
            fused_encode(m, "a", 32, p=2, norms=True)


class TestAlgorithm1SingleBlock:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 16), st.integers(1, 4), seeds)
    def test_matches_literal_listing(self, bs, num_max, seed):
        """One BS x BS block: fused encode == the paper's Algorithm 1."""
        num_max = min(num_max, bs)
        block = _operand((bs, bs), np.float64, seed)
        ref = algorithm1_reference(block, num_max)
        res = fused_encode(block, "a", bs, p=num_max)
        # Checksum row (encoded row BS) == the per-thread column sums.
        assert np.array_equal(res.encoded[bs], ref.checksums)
        # Per data row: the numMax candidates and their column ids.
        assert np.array_equal(res.top_values[:bs], ref.max_values)
        assert np.array_equal(res.top_indices[:bs], ref.max_ids)
        # The checksum row's own candidates (maxReduce over |checksums|).
        assert np.array_equal(res.top_values[bs], ref.checksum_max_values)
        assert np.array_equal(res.top_indices[bs], ref.checksum_max_ids)


class TestVectorisedCheckBitwise:
    def _check_both(self, a, b, bs, p):
        a_pad, _ = pad_to_block_multiple(np.asarray(a, dtype=np.float64), bs, axis=0)
        b_pad, _ = pad_to_block_multiple(np.asarray(b, dtype=np.float64), bs, axis=1)
        a_cc, row_layout = encode_partitioned_columns(a_pad, bs)
        b_rc, col_layout = encode_partitioned_rows(b_pad, bs)
        c_fc = a_cc @ b_rc
        provider = AABFTEpsilonProvider(
            scheme=ProbabilisticBound(
                omega=3.0, fma=False, fmt=format_for_dtype(c_fc.dtype)
            ),
            row_tops=top_p_of_rows(a_cc, p),
            col_tops=top_p_of_columns(b_rc, p),
            row_layout=row_layout,
            col_layout=col_layout,
            inner_dim=a_pad.shape[1],
        )
        grid = check_partitioned(c_fc, row_layout, col_layout, provider)
        scalar = check_partitioned(
            c_fc, row_layout, col_layout, provider, use_grids=False
        )
        return c_fc, row_layout, col_layout, provider, grid, scalar

    @staticmethod
    def assert_reports_identical(grid, scalar):
        assert np.array_equal(grid.column_disc, scalar.column_disc)
        assert np.array_equal(grid.row_disc, scalar.row_disc)
        assert grid.findings == scalar.findings
        assert grid.located_errors == scalar.located_errors
        assert grid.num_checks == scalar.num_checks

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(1, 30),
        st.integers(1, 30),
        st.integers(1, 30),
        st.integers(1, 12),
        st.integers(1, 3),
        seeds,
    )
    def test_grid_check_matches_scalar_loop(self, m, n, q, bs, p, seed):
        rng = np.random.default_rng(seed)
        a = rng.uniform(-4, 4, (m, n))
        b = rng.uniform(-4, 4, (n, q))
        p = min(p, n)
        # No false-positive assertion here: at degenerate sizes the raw
        # probabilistic bound (no epsilon floor) can flag rounding noise on
        # both paths alike — identity is the property under test.
        *_, grid, scalar = self._check_both(a, b, bs, p)
        self.assert_reports_identical(grid, scalar)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 20), st.integers(1, 8), seeds)
    def test_injected_faults_agree(self, n, bs, seed):
        """Corrupted results produce identical findings on both paths."""
        rng = np.random.default_rng(seed)
        a = rng.uniform(-4, 4, (n, n))
        b = rng.uniform(-4, 4, (n, n))
        c_fc, row_layout, col_layout, provider, *_ = self._check_both(a, b, bs, 1)
        faulty = c_fc.copy()
        i = int(rng.integers(0, c_fc.shape[0]))
        j = int(rng.integers(0, c_fc.shape[1]))
        faulty[i, j] += 1.0
        grid = check_partitioned(faulty, row_layout, col_layout, provider)
        scalar = check_partitioned(
            faulty, row_layout, col_layout, provider, use_grids=False
        )
        self.assert_reports_identical(grid, scalar)
        assert grid.error_detected
