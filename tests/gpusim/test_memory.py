"""Global/shared memory: allocation accounting and error behaviour."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.gpusim.device import K20C, DeviceSpec
from repro.gpusim.memory import GlobalMemory, SharedMemory

TINY_DEVICE = DeviceSpec(
    name="tiny",
    num_sms=1,
    cores_per_sm=1,
    clock_ghz=1.0,
    peak_dp_gflops=1.0,
    peak_sp_gflops=1.0,
    mem_bandwidth_gbs=1.0,
    global_mem_bytes=1024,
    shared_mem_per_block=128,
)


class TestGlobalMemory:
    def test_alloc_zeroed(self):
        mem = GlobalMemory(K20C)
        buf = mem.alloc((4, 4))
        assert buf.shape == (4, 4)
        assert np.all(buf.array() == 0)
        assert mem.allocated_bytes == 128

    def test_upload_download_roundtrip(self, rng):
        mem = GlobalMemory(K20C)
        host = rng.uniform(size=(8, 8))
        buf = mem.upload(host)
        out = mem.download(buf)
        assert np.array_equal(out, host)
        out[0, 0] = 99.0  # download must be a copy
        assert buf.array()[0, 0] == host[0, 0]

    def test_out_of_memory(self):
        mem = GlobalMemory(TINY_DEVICE)
        with pytest.raises(DeviceError, match="out of device memory"):
            mem.alloc((1024,))  # 8 KiB > 1 KiB capacity

    def test_free_releases_capacity(self):
        mem = GlobalMemory(TINY_DEVICE)
        buf = mem.alloc((64,))  # 512 bytes
        assert mem.free_bytes == 512
        mem.free(buf)
        assert mem.free_bytes == 1024

    def test_double_free_rejected(self):
        mem = GlobalMemory(TINY_DEVICE)
        buf = mem.alloc((4,))
        mem.free(buf)
        with pytest.raises(DeviceError, match="double free"):
            mem.free(buf)

    def test_use_after_free_rejected(self):
        mem = GlobalMemory(TINY_DEVICE)
        buf = mem.alloc((4,))
        mem.free(buf)
        with pytest.raises(DeviceError, match="use-after-free"):
            buf.array()

    def test_duplicate_name_rejected(self):
        mem = GlobalMemory(K20C)
        mem.alloc((4,), name="x")
        with pytest.raises(DeviceError, match="already allocated"):
            mem.alloc((4,), name="x")

    def test_free_all(self):
        mem = GlobalMemory(K20C)
        mem.alloc((16,))
        mem.alloc((16,))
        mem.free_all()
        assert mem.allocated_bytes == 0


class TestSharedMemory:
    def test_declare_and_reuse(self):
        shared = SharedMemory(capacity_bytes=1024)
        a = shared.declare("smA", (4, 4))
        b = shared.declare("smA", (4, 4))
        assert a is b
        assert shared.used_bytes == 128

    def test_capacity_enforced(self):
        shared = SharedMemory(capacity_bytes=100)
        with pytest.raises(DeviceError, match="shared memory exceeded"):
            shared.declare("big", (8, 8))

    def test_shape_conflict_rejected(self):
        shared = SharedMemory(capacity_bytes=1024)
        shared.declare("smA", (4, 4))
        with pytest.raises(DeviceError, match="different shape"):
            shared.declare("smA", (2, 2))

    def test_kernel_exceeding_device_shared_memory_fails(self):
        """A block that would not fit on the real K20c must fail here too."""
        shared = SharedMemory(capacity_bytes=K20C.shared_mem_per_block)
        shared.declare("a", (64, 64))  # 32 KiB
        with pytest.raises(DeviceError):
            shared.declare("b", (64, 64))  # another 32 KiB > 48 KiB total
