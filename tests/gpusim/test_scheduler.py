"""Block-to-SM scheduling: determinism and coverage."""

import pytest

from repro.gpusim.device import K20C
from repro.gpusim.kernel import Dim3, LaunchConfig
from repro.gpusim.scheduler import BlockScheduler


@pytest.fixture
def scheduler():
    return BlockScheduler(K20C)


class TestLinearise:
    def test_row_major_x_fastest(self, scheduler):
        grid = Dim3(x=3, y=2)
        coords = scheduler.linearise(grid)
        assert [(c.x, c.y) for c in coords] == [
            (0, 0),
            (1, 0),
            (2, 0),
            (0, 1),
            (1, 1),
            (2, 1),
        ]

    def test_3d_grid(self, scheduler):
        coords = scheduler.linearise(Dim3(x=2, y=2, z=2))
        assert len(coords) == 8
        assert coords[4].z == 1


class TestAssignment:
    def test_round_robin(self, scheduler):
        config = LaunchConfig(grid=Dim3(x=26), block=Dim3(x=32))
        assignments = scheduler.assign(config)
        assert [a.sm_id for a in assignments[:14]] == list(range(13)) + [0]

    def test_deterministic(self, scheduler):
        config = LaunchConfig(grid=Dim3(x=7, y=5), block=Dim3(x=8))
        a1 = scheduler.assign(config)
        a2 = scheduler.assign(config)
        assert a1 == a2

    def test_sm_of_block_matches_assignment(self, scheduler):
        config = LaunchConfig(grid=Dim3(x=40), block=Dim3(x=1))
        for a in scheduler.assign(config):
            assert scheduler.sm_of_block(a.linear_index) == a.sm_id

    def test_blocks_on_sm(self, scheduler):
        config = LaunchConfig(grid=Dim3(x=27), block=Dim3(x=1))
        on_zero = scheduler.blocks_on_sm(config, 0)
        assert [a.linear_index for a in on_zero] == [0, 13, 26]

    def test_all_sms_used_for_large_grids(self, scheduler):
        config = LaunchConfig(grid=Dim3(x=100), block=Dim3(x=1))
        sms = {a.sm_id for a in scheduler.assign(config)}
        assert sms == set(range(13))

    def test_invalid_sm_id(self, scheduler):
        config = LaunchConfig(grid=Dim3(x=4), block=Dim3(x=1))
        with pytest.raises(ValueError):
            scheduler.blocks_on_sm(config, 13)
        with pytest.raises(ValueError):
            scheduler.sm_of_block(-1)
