"""Edge cases of streams, profiler accounting and kernel stats."""

import pytest

from repro.gpusim.kernel import Dim3, KernelStats
from repro.gpusim.profiler import Profiler
from repro.gpusim.stream import Stream, concurrent_seconds


class TestStreamEdges:
    def test_no_streams_zero_wall(self):
        assert concurrent_seconds() == 0.0

    def test_empty_stream(self):
        s = Stream("empty")
        assert s.seconds == 0.0
        assert concurrent_seconds(s) == 0.0


class TestKernelStats:
    def test_merge_accumulates(self):
        a = KernelStats(flops=10, global_bytes_read=100, global_bytes_written=50)
        b = KernelStats(
            flops=5, global_bytes_read=1, global_bytes_written=2, shared_bytes_peak=99
        )
        a.merge(b)
        assert a.flops == 15
        assert a.global_bytes == 153
        assert a.shared_bytes_peak == 99

    def test_shared_peak_is_max_not_sum(self):
        a = KernelStats(shared_bytes_peak=10)
        a.merge(KernelStats(shared_bytes_peak=7))
        assert a.shared_bytes_peak == 10


class TestDim3:
    def test_count(self):
        assert Dim3(3, 4, 2).count == 24
        assert Dim3(5).count == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Dim3(-1)


class TestProfilerQueries:
    def test_launches_of_filters_by_name(self, simulator, rng):
        from tests.gpusim.test_simulator import AddOneKernel

        buf = simulator.upload(rng.uniform(size=(4, 4)))
        simulator.launch(AddOneKernel(buf))
        simulator.launch(AddOneKernel(buf))
        assert len(simulator.profiler.launches_of("add_one")) == 2
        assert simulator.profiler.launches_of("missing") == []

    def test_total_flops(self, simulator, rng):
        from tests.gpusim.test_simulator import AddOneKernel

        buf = simulator.upload(rng.uniform(size=(4, 8)))
        simulator.launch(AddOneKernel(buf))
        assert simulator.profiler.total_flops == 32

    def test_empty_profiler_summary(self):
        p = Profiler()
        text = p.summary()
        assert "kernel" in text
        assert p.total_seconds == 0.0
