"""Execution traces and Chrome trace export."""

import json

import pytest

from repro.abft.pipeline import AABFTPipeline
from repro.gpusim.simulator import GpuSimulator
from repro.gpusim.trace import ExecutionTrace, trace_from_streams


@pytest.fixture
def traced_pipeline_run(rng):
    a = rng.uniform(-1, 1, (96, 96))
    b = rng.uniform(-1, 1, (96, 96))
    sim = GpuSimulator()
    AABFTPipeline(sim, block_size=32).run(a, b)
    return sim


class TestTraceConstruction:
    def test_pipeline_trace_streams(self, traced_pipeline_run):
        sim = traced_pipeline_run
        trace = trace_from_streams(sim.stream("compute"), sim.stream("reduce"))
        assert set(trace.stream_names()) == {"compute", "reduce"}
        # All five kernel kinds appear somewhere.
        names = {e.name for e in trace.events}
        assert "matmul_block" in names
        assert "top_p_reduce" in names

    def test_events_back_to_back_within_stream(self, traced_pipeline_run):
        sim = traced_pipeline_run
        trace = trace_from_streams(sim.stream("compute"))
        events = trace.events_on("compute")
        for prev, cur in zip(events, events[1:]):
            assert cur.start_us == pytest.approx(prev.end_us)

    def test_wall_time_matches_longest_stream(self, traced_pipeline_run):
        sim = traced_pipeline_run
        trace = trace_from_streams(sim.stream("compute"), sim.stream("reduce"))
        assert trace.wall_us == pytest.approx(
            sim.concurrent_wall_seconds("compute", "reduce") * 1e6
        )

    def test_overlap_visible(self, traced_pipeline_run):
        """The reduction stream's work fits inside the compute stream's
        window — the Section V-A overlap."""
        sim = traced_pipeline_run
        trace = trace_from_streams(sim.stream("compute"), sim.stream("reduce"))
        reduce_busy = sum(e.duration_us for e in trace.events_on("reduce"))
        compute_busy = sum(e.duration_us for e in trace.events_on("compute"))
        assert reduce_busy < compute_busy

    def test_empty_trace(self):
        trace = ExecutionTrace()
        assert trace.wall_us == 0.0
        assert trace.stream_names() == []


class TestChromeExport:
    def test_valid_json_with_all_events(self, traced_pipeline_run):
        sim = traced_pipeline_run
        trace = trace_from_streams(sim.stream("compute"), sim.stream("reduce"))
        payload = json.loads(trace.to_chrome_trace())
        duration_events = [
            e for e in payload["traceEvents"] if e.get("ph") == "X"
        ]
        assert len(duration_events) == len(trace.events)
        metadata = [e for e in payload["traceEvents"] if e.get("ph") == "M"]
        assert {m["args"]["name"] for m in metadata} == {
            "stream:compute",
            "stream:reduce",
        }

    def test_event_args_carry_profile_data(self, traced_pipeline_run):
        sim = traced_pipeline_run
        trace = trace_from_streams(sim.stream("compute"))
        payload = json.loads(trace.to_chrome_trace())
        matmul = next(
            e for e in payload["traceEvents"] if e.get("name") == "matmul_block"
        )
        assert matmul["args"]["flops"] > 0
        assert matmul["args"]["limiter"] in ("compute", "memory", "launch")

    def test_summary_text(self, traced_pipeline_run):
        sim = traced_pipeline_run
        trace = trace_from_streams(sim.stream("compute"), sim.stream("reduce"))
        text = trace.summary()
        assert "stream compute" in text
        assert "wall time" in text
