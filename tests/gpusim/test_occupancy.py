"""Occupancy calculator (Kepler SM resources)."""

import pytest

from repro.errors import KernelLaunchError
from repro.gpusim.occupancy import KEPLER_SM, SmResources, occupancy


class TestOccupancy:
    def test_full_occupancy_config(self):
        # 256 threads, 32 regs, no shared: 8 blocks x 8 warps = 64 warps.
        occ = occupancy(256, registers_per_thread=32)
        assert occ.resident_blocks == 8
        assert occ.resident_warps == 64
        assert occ.occupancy == 1.0

    def test_shared_memory_limited(self):
        # 8 KiB shared per block: 48/8 = 6 blocks < 8 from threads/regs.
        occ = occupancy(256, registers_per_thread=32, shared_bytes_per_block=8192)
        assert occ.resident_blocks == 6
        assert occ.limiter == "shared"
        assert occ.occupancy == pytest.approx(48 / 64)

    def test_register_limited(self):
        # 128 regs/thread, 256 threads: 65536/32768 = 2 blocks.
        occ = occupancy(256, registers_per_thread=128)
        assert occ.resident_blocks == 2
        assert occ.limiter == "registers"
        assert occ.percent == pytest.approx(25.0)

    def test_block_count_limited(self):
        # Tiny blocks: 64 threads -> 32 by threads, but max 16 blocks/SM.
        occ = occupancy(64, registers_per_thread=16)
        assert occ.resident_blocks == 16
        assert occ.limiter == "blocks"
        assert occ.occupancy == pytest.approx(0.5)

    def test_partial_warp_rounds_up(self):
        # 96 threads = 3 warps; warp accounting must ceil.
        occ = occupancy(96, registers_per_thread=32)
        assert occ.resident_warps % 3 == 0

    def test_block_too_large_raises(self):
        with pytest.raises(KernelLaunchError, match="exceeds"):
            occupancy(1024, registers_per_thread=128)  # 128K regs > 64K

    def test_zero_threads_raises(self):
        with pytest.raises(KernelLaunchError):
            occupancy(0)

    def test_dgemm_kernel_configuration(self):
        """A production-shaped DGEMM tile (64x64 block, 4x4 register tiles
        = 256 threads, smA+smB = 2*8*64 doubles = 8 KiB) runs at the
        healthy occupancy the perf model's matmul efficiency assumes."""
        occ = occupancy(
            256, registers_per_thread=40, shared_bytes_per_block=2 * 8 * 64 * 8
        )
        assert occ.occupancy >= 0.5
        # ... while small blocks with the same shared footprint sink it —
        # the utilisation story behind the auxiliary kernels' low
        # efficiency constants.
        small = occupancy(
            64, registers_per_thread=40, shared_bytes_per_block=2 * 8 * 32 * 8
        )
        assert small.occupancy < occ.occupancy

    def test_resource_validation(self):
        with pytest.raises(ValueError):
            SmResources(
                max_threads=16,
                max_warps=64,
                max_blocks=16,
                registers=1,
                shared_memory_bytes=1,
            )
        with pytest.raises(ValueError):
            SmResources(
                max_threads=2048,
                max_warps=8,  # 8*32 = 256 < 2048
                max_blocks=16,
                registers=65536,
                shared_memory_bytes=1,
            )

    def test_kepler_preset(self):
        assert KEPLER_SM.max_warps == 64
        assert KEPLER_SM.registers == 65536
