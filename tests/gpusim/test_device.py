"""Device specifications."""

import pytest

from repro.gpusim.device import GTX680, K20C, DeviceSpec, device_by_name


class TestK20C:
    def test_published_characteristics(self):
        """The paper's platform: GK110, 13 SMs, 2496 cores, ~1.17 TFLOPS DP."""
        assert K20C.num_sms == 13
        assert K20C.total_cores == 2496
        assert K20C.peak_dp_gflops == pytest.approx(1170.0)
        assert K20C.global_mem_bytes == 5 * 1024**3

    def test_peak_selection(self):
        assert K20C.peak_gflops("double") == K20C.peak_dp_gflops
        assert K20C.peak_gflops("single") == K20C.peak_sp_gflops
        with pytest.raises(ValueError):
            K20C.peak_gflops("half")


class TestDeviceSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad",
                num_sms=0,
                cores_per_sm=1,
                clock_ghz=1.0,
                peak_dp_gflops=1.0,
                peak_sp_gflops=1.0,
                mem_bandwidth_gbs=1.0,
                global_mem_bytes=1,
            )

    def test_lookup(self):
        assert device_by_name("Tesla K20c") is K20C
        assert device_by_name("GeForce GTX 680") is GTX680
        with pytest.raises(KeyError):
            device_by_name("H100")

    def test_consumer_part_has_weak_dp(self):
        assert GTX680.peak_dp_gflops < K20C.peak_dp_gflops / 5
