"""The GpuSimulator facade: launching, profiling, streams, timing."""

import numpy as np
import pytest

from repro.errors import KernelLaunchError
from repro.gpusim.kernel import BlockContext, Dim3, Kernel, KernelStats, LaunchConfig
from repro.gpusim.simulator import GpuSimulator
from repro.gpusim.timing import TimingModel


class AddOneKernel(Kernel):
    """Adds 1.0 to one row per block — a minimal deterministic kernel."""

    name = "add_one"
    compute_efficiency = 0.5

    def __init__(self, buf):
        self.buf = buf
        self.visited_sms: list[int] = []

    def launch_config(self):
        return LaunchConfig(grid=Dim3(x=self.buf.shape[0]), block=Dim3(x=32))

    def run_block(self, ctx: BlockContext):
        data = self.buf.array()
        data[ctx.block_idx.x, :] += 1.0
        self.visited_sms.append(ctx.sm_id)
        ctx.stats.flops += data.shape[1]
        ctx.stats.global_bytes_read += data.shape[1] * 8
        ctx.stats.global_bytes_written += data.shape[1] * 8


class TestLaunch:
    def test_kernel_executes_every_block(self, simulator, rng):
        host = rng.uniform(size=(10, 6))
        buf = simulator.upload(host)
        kernel = AddOneKernel(buf)
        simulator.launch(kernel)
        assert np.allclose(simulator.download(buf), host + 1.0)
        assert len(kernel.visited_sms) == 10

    def test_blocks_visit_round_robin_sms(self, simulator, rng):
        buf = simulator.upload(rng.uniform(size=(26, 2)))
        kernel = AddOneKernel(buf)
        simulator.launch(kernel)
        assert kernel.visited_sms == [i % 13 for i in range(26)]

    def test_stats_merged(self, simulator, rng):
        buf = simulator.upload(rng.uniform(size=(4, 8)))
        record = simulator.launch(AddOneKernel(buf))
        assert record.stats.flops == 4 * 8
        assert record.stats.global_bytes == 4 * 8 * 8 * 2
        assert record.num_blocks == 4

    def test_launch_config_validation(self, simulator, rng):
        buf = simulator.upload(rng.uniform(size=(2, 2)))
        kernel = AddOneKernel(buf)
        bad = LaunchConfig(grid=Dim3(x=1), block=Dim3(x=2048))
        with pytest.raises(KernelLaunchError, match="exceeds device limit"):
            simulator.launch(kernel, config=bad)

    def test_kernel_without_default_config(self, simulator):
        class Bare(Kernel):
            name = "bare"

            def run_block(self, ctx):
                pass

        with pytest.raises(KernelLaunchError, match="default launch config"):
            simulator.launch(Bare())


class TestProfiling:
    def test_profiler_records_launches(self, simulator, rng):
        buf = simulator.upload(rng.uniform(size=(4, 4)))
        simulator.launch(AddOneKernel(buf))
        simulator.launch(AddOneKernel(buf))
        assert len(simulator.profiler.records) == 2
        assert simulator.profiler.total_seconds > 0
        assert "add_one" in simulator.profiler.summary()

    def test_seconds_by_kernel(self, simulator, rng):
        buf = simulator.upload(rng.uniform(size=(4, 4)))
        simulator.launch(AddOneKernel(buf))
        by_kernel = simulator.profiler.seconds_by_kernel()
        assert set(by_kernel) == {"add_one"}

    def test_reset_clears_state(self, simulator, rng):
        buf = simulator.upload(rng.uniform(size=(4, 4)))
        simulator.launch(AddOneKernel(buf))
        simulator.reset()
        assert simulator.profiler.records == []
        assert simulator.memory.allocated_bytes == 0


class TestStreams:
    def test_streams_accumulate_separately(self, simulator, rng):
        buf = simulator.upload(rng.uniform(size=(4, 4)))
        simulator.launch(AddOneKernel(buf), stream="a")
        simulator.launch(AddOneKernel(buf), stream="a")
        simulator.launch(AddOneKernel(buf), stream="b")
        assert len(simulator.stream("a").records) == 2
        assert len(simulator.stream("b").records) == 1

    def test_concurrent_wall_time_is_max(self, simulator, rng):
        buf = simulator.upload(rng.uniform(size=(4, 4)))
        simulator.launch(AddOneKernel(buf), stream="a")
        simulator.launch(AddOneKernel(buf), stream="a")
        simulator.launch(AddOneKernel(buf), stream="b")
        wall = simulator.concurrent_wall_seconds("a", "b")
        assert wall == pytest.approx(simulator.stream("a").seconds)
        assert wall < simulator.profiler.total_seconds


class TestTimingModel:
    def test_compute_bound_kernel(self):
        model = TimingModel(device=GpuSimulator().device, launch_overhead_s=0.0)
        stats = KernelStats(flops=10**9, global_bytes_read=8)
        t = model.estimate("k", stats, num_blocks=1000, compute_efficiency=1.0)
        assert t.limiter == "compute"
        assert t.seconds == pytest.approx(10**9 / (1170e9), rel=1e-6)

    def test_memory_bound_kernel(self):
        model = TimingModel(device=GpuSimulator().device, launch_overhead_s=0.0)
        stats = KernelStats(flops=10, global_bytes_read=10**9)
        t = model.estimate("k", stats, num_blocks=1000)
        assert t.limiter == "memory"
        assert t.seconds == pytest.approx(10**9 / 208e9, rel=1e-6)

    def test_occupancy_penalises_small_launches(self):
        model = TimingModel(device=GpuSimulator().device, launch_overhead_s=0.0)
        stats = KernelStats(flops=10**9)
        small = model.estimate("k", stats, num_blocks=4)
        large = model.estimate("k", stats, num_blocks=10_000)
        assert small.seconds > large.seconds

    def test_empty_kernel_is_launch_bound(self):
        model = TimingModel(device=GpuSimulator().device)
        t = model.estimate("k", KernelStats(), num_blocks=1)
        assert t.limiter == "launch"
        assert t.gflops == 0.0

    def test_efficiency_validation(self):
        model = TimingModel(device=GpuSimulator().device)
        with pytest.raises(ValueError):
            model.estimate("k", KernelStats(flops=1), 1, compute_efficiency=0.0)
