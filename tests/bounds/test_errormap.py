"""Per-element rounding-error maps (the paper's Section I by-product)."""

import numpy as np
import pytest

from repro.bounds.errormap import rounding_error_map, upper_bound_grid
from repro.bounds.upper_bound import (
    determine_upper_bound,
    top_p_of_columns,
    top_p_of_rows,
)


class TestUpperBoundGrid:
    def test_matches_scalar_rule(self, rng):
        a = rng.uniform(-5, 5, (12, 30))
        b = rng.uniform(-5, 5, (30, 9))
        row_tops = top_p_of_rows(a, 3)
        col_tops = top_p_of_columns(b, 3)
        grid = upper_bound_grid(row_tops, col_tops)
        assert grid.shape == (12, 9)
        for i in range(12):
            for j in range(9):
                assert grid[i, j] == pytest.approx(
                    determine_upper_bound(row_tops[i], col_tops[j])
                )

    def test_grid_bounds_all_products(self, rng):
        a = rng.uniform(-2, 2, (8, 40))
        b = rng.uniform(-2, 2, (40, 8))
        grid = upper_bound_grid(top_p_of_rows(a, 2), top_p_of_columns(b, 2))
        for i in range(8):
            for j in range(8):
                assert grid[i, j] >= np.max(np.abs(a[i] * b[:, j]))

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            upper_bound_grid([], [])


class TestErrorMap:
    def test_map_shapes_and_relations(self, rng):
        a = rng.uniform(-1, 1, (16, 64))
        b = rng.uniform(-1, 1, (64, 24))
        emap = rounding_error_map(a, b, p=2, omega=3.0)
        assert emap.shape == (16, 24)
        assert np.all(emap.sigma > 0)
        assert np.all(emap.epsilon >= 3.0 * emap.sigma)
        assert np.allclose(
            emap.epsilon, np.abs(emap.expectation) + 3.0 * emap.sigma
        )

    def test_fma_map_has_zero_bias(self, rng):
        a = rng.uniform(-1, 1, (8, 32))
        b = rng.uniform(-1, 1, (32, 8))
        emap = rounding_error_map(a, b, fma=True)
        assert np.all(emap.expectation == 0.0)
        plain = rounding_error_map(a, b, fma=False)
        assert np.all(emap.sigma < plain.sigma)

    def test_map_covers_actual_errors(self, rng):
        """The per-element bounds must contain the exact rounding errors of
        the actual product (validated with the exact engine)."""
        from repro.exact.compensated import exact_dot_errors

        a = rng.uniform(-1, 1, (12, 256))
        b = rng.uniform(-1, 1, (256, 12))
        c = a @ b
        emap = rounding_error_map(a, b, omega=3.0)
        for j in range(12):
            rhs = np.ascontiguousarray(np.broadcast_to(b[:, j], (12, 256)))
            errors = np.abs(exact_dot_errors(a, rhs, c[:, j]))
            assert np.all(errors <= emap.epsilon[:, j])

    def test_worst_elements_sorted(self, rng):
        a = rng.uniform(-1, 1, (6, 16))
        a[3, :] *= 50.0  # one big row dominates the error landscape
        b = rng.uniform(-1, 1, (16, 6))
        emap = rounding_error_map(a, b)
        worst = emap.worst_elements(3)
        assert worst[0][0] == 3
        assert worst[0][2] >= worst[1][2] >= worst[2][2]

    def test_summary_text(self, rng):
        a = rng.uniform(-1, 1, (4, 8))
        b = rng.uniform(-1, 1, (8, 4))
        text = rounding_error_map(a, b).summary()
        assert "4x4" in text
        assert "sigma" in text

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            rounding_error_map(rng.uniform(size=(3, 4)), rng.uniform(size=(5, 3)))
