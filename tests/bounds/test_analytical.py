"""Classic deterministic gamma_n bounds — the pessimistic reference point."""

import pytest

from repro.bounds.analytical import AnalyticalBound, dot_product_bound, gamma_factor
from repro.bounds.base import BoundContext
from repro.bounds.probabilistic import ProbabilisticBound
from repro.errors import BoundSchemeError

T = 53


class TestGamma:
    def test_small_n(self):
        u = 2.0**-T
        assert gamma_factor(1, T) == pytest.approx(u / (1 - u))

    def test_monotone(self):
        assert gamma_factor(10, T) < gamma_factor(100, T) < gamma_factor(1000, T)

    def test_undefined_when_nu_exceeds_one(self):
        with pytest.raises(ValueError, match="n\\*u"):
            gamma_factor(2**54, T)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            gamma_factor(0, T)


class TestDotProductBound:
    def test_formula(self):
        assert dot_product_bound(10.0, 100, T) == pytest.approx(
            gamma_factor(100, T) * 10.0
        )

    def test_negative_condition_rejected(self):
        with pytest.raises(ValueError):
            dot_product_bound(-1.0, 10, T)


class TestAnalyticalScheme:
    def test_requires_upper_bound(self):
        with pytest.raises(BoundSchemeError):
            AnalyticalBound().epsilon(BoundContext(n=10, m=2))

    def test_more_pessimistic_than_probabilistic(self):
        """Paper Section III: analytical estimates 'often lead to error
        bounds which are too loose' — the deterministic bound must exceed
        the 3-sigma probabilistic one for any non-trivial n."""
        analytical = AnalyticalBound()
        probabilistic = ProbabilisticBound(omega=3.0)
        for n in (64, 512, 4096):
            ctx = BoundContext(n=n, m=64, upper_bound=1.0)
            assert analytical.epsilon(ctx) > probabilistic.epsilon(ctx)

    def test_gap_narrows_relative_with_n(self):
        # Deterministic grows ~n^2 y vs probabilistic ~n^1.5 y: ratio ~ n^0.5.
        analytical = AnalyticalBound()
        probabilistic = ProbabilisticBound(omega=3.0)

        def ratio(n):
            ctx = BoundContext(n=n, m=64, upper_bound=1.0)
            return analytical.epsilon(ctx) / probabilistic.epsilon(ctx)

        assert ratio(4096) / ratio(1024) == pytest.approx(2.0, rel=0.1)
