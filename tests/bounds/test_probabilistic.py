"""The A-ABFT probabilistic model: closed forms, moments, scheme behaviour."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bounds.base import BoundContext
from repro.bounds.probabilistic import (
    ProbabilisticBound,
    confidence_interval,
    inner_product_mean_bound,
    inner_product_sigma_bound,
    inner_product_variance_bound,
    mantissa_error_moments,
    prod_mean_bound,
    prod_variance_bound,
    sum_sigma_bound,
    sum_variance_bound,
)
from repro.errors import BoundSchemeError

T = 53  # binary64


class TestMantissaMoments:
    def test_addition_moments(self):
        ev, var = mantissa_error_moments("add", T)
        assert ev == 0.0
        assert var == pytest.approx(2.0 ** (-2 * T) / 8.0)

    def test_subtraction_same_as_addition(self):
        assert mantissa_error_moments("sub", T) == mantissa_error_moments("add", T)

    def test_multiplication_moments(self):
        ev, var = mantissa_error_moments("mul", T)
        assert ev == pytest.approx(2.0 ** (-2 * T) / 3.0)
        assert var == pytest.approx(2.0 ** (-2 * T) / 12.0)

    def test_division_same_as_multiplication(self):
        assert mantissa_error_moments("div", T) == mantissa_error_moments("mul", T)

    def test_unknown_op(self):
        with pytest.raises(ValueError, match="unknown operation"):
            mantissa_error_moments("sqrt", T)

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            mantissa_error_moments("add", 0)


class TestClosedForms:
    def test_sum_variance_formula(self):
        # Var_Sum <= (1/8) 2^-2t (n(n+1)(2n+1)/6) y^2  — hand evaluation.
        n, y = 10, 2.0
        expected = (1 / 8) * 2.0 ** (-2 * T) * (10 * 11 * 21 / 6) * 4.0
        assert sum_variance_bound(n, y, T) == pytest.approx(expected)

    def test_sum_sigma_is_sqrt_of_variance(self):
        n, y = 100, 3.0
        assert sum_sigma_bound(n, y, T) == pytest.approx(
            math.sqrt(sum_variance_bound(n, y, T))
        )

    def test_prod_variance_formula(self):
        n, y = 7, 1.5
        expected = (7 / 12) * 2.0 ** (-2 * T) * 2.25
        assert prod_variance_bound(n, y, T) == pytest.approx(expected)

    def test_prod_mean_formula(self):
        n, y = 7, 1.5
        assert prod_mean_bound(n, y, T) == pytest.approx(
            (7 / 3) * 2.0 ** (-2 * T) * 1.5
        )

    def test_inner_product_variance_is_sum_of_parts(self):
        n, y = 64, 2.0
        assert inner_product_variance_bound(n, y, T) == pytest.approx(
            sum_variance_bound(n, y, T) + prod_variance_bound(n, y, T)
        )

    def test_paper_closed_form_eq45(self):
        # sigma <= sqrt((n(n+1)(n+1/2) + 2n)/24) * 2^-t * y
        n, y = 512, 1.0
        expected = math.sqrt((n * (n + 1) * (n + 0.5) + 2 * n) / 24.0) * 2.0**-T * y
        assert inner_product_sigma_bound(n, y, T) == pytest.approx(expected, rel=1e-12)

    def test_fma_drops_multiplication_terms(self):
        n, y = 64, 2.0
        assert inner_product_variance_bound(n, y, T, fma=True) == pytest.approx(
            sum_variance_bound(n, y, T)
        )
        assert inner_product_mean_bound(n, y, T, fma=True) == 0.0
        assert inner_product_sigma_bound(n, y, T, fma=True) < (
            inner_product_sigma_bound(n, y, T, fma=False)
        )

    @given(st.integers(1, 10_000), st.floats(min_value=1e-6, max_value=1e6))
    def test_sigma_scales_linearly_in_y(self, n, y):
        base = inner_product_sigma_bound(n, 1.0, T)
        assert inner_product_sigma_bound(n, y, T) == pytest.approx(base * y, rel=1e-9)

    @given(st.integers(1, 5_000))
    def test_sigma_monotone_in_n(self, n):
        assert inner_product_sigma_bound(n + 1, 1.0, T) > (
            inner_product_sigma_bound(n, 1.0, T)
        )

    def test_sigma_growth_rate_is_n_to_three_halves(self):
        # Doubling n should scale sigma by ~2^1.5 for large n.
        r = inner_product_sigma_bound(8192, 1.0, T) / inner_product_sigma_bound(
            4096, 1.0, T
        )
        assert r == pytest.approx(2**1.5, rel=0.01)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            sum_variance_bound(0, 1.0, T)


class TestConfidenceInterval:
    def test_interval_is_centred_on_mean(self):
        lo, hi = confidence_interval(100, 1.0, T, omega=3.0)
        ev = inner_product_mean_bound(100, 1.0, T)
        sigma = inner_product_sigma_bound(100, 1.0, T)
        assert lo == pytest.approx(ev - 3 * sigma)
        assert hi == pytest.approx(ev + 3 * sigma)

    def test_wider_omega_wider_interval(self):
        lo1, hi1 = confidence_interval(100, 1.0, T, omega=1.0)
        lo3, hi3 = confidence_interval(100, 1.0, T, omega=3.0)
        assert hi3 > hi1
        assert lo3 < lo1


class TestProbabilisticBoundScheme:
    def test_epsilon_formula(self):
        scheme = ProbabilisticBound(omega=3.0)
        ctx = BoundContext(n=256, m=64, upper_bound=2.0)
        expected = abs(inner_product_mean_bound(256, 2.0, T)) + (
            3.0 * inner_product_sigma_bound(256, 2.0, T)
        )
        assert scheme.epsilon(ctx) == pytest.approx(expected)

    def test_requires_upper_bound(self):
        scheme = ProbabilisticBound()
        with pytest.raises(BoundSchemeError, match="upper bound"):
            scheme.epsilon(BoundContext(n=10, m=2))

    def test_rejects_negative_y(self):
        scheme = ProbabilisticBound()
        with pytest.raises(BoundSchemeError):
            scheme.epsilon(BoundContext(n=10, m=2, upper_bound=-1.0))

    def test_rejects_nonpositive_omega(self):
        with pytest.raises(BoundSchemeError):
            ProbabilisticBound(omega=0.0)

    def test_omega_ordering(self):
        ctx = BoundContext(n=512, m=64, upper_bound=1.0)
        eps = [ProbabilisticBound(omega=w).epsilon(ctx) for w in (1.0, 2.0, 3.0)]
        assert eps[0] < eps[1] < eps[2]
        # Paper Section VI-B: all three stay within one order of magnitude.
        assert eps[2] / eps[0] < 10.0

    def test_describe_mentions_parameters(self):
        text = ProbabilisticBound(omega=2.0, fma=True).describe()
        assert "omega=2" in text
        assert "fma" in text


class TestEmpiricalCoverage:
    """The 3-sigma bound must actually contain observed rounding errors."""

    def test_bound_covers_observed_dot_product_errors(self, rng):
        from repro.exact.compensated import exact_dot_errors

        n, trials = 256, 200
        a = rng.uniform(-1.0, 1.0, (trials, n))
        b = rng.uniform(-1.0, 1.0, (trials, n))
        computed = np.einsum("ij,ij->i", a, b)
        errors = np.abs(exact_dot_errors(a, b, computed))
        y = float(np.max(np.abs(a * b)))
        eps = ProbabilisticBound(omega=3.0).epsilon(
            BoundContext(n=n, m=1, upper_bound=y)
        )
        assert np.all(errors < eps)
        # ... while not being absurdly loose (within ~5 orders of magnitude).
        assert eps < 1e5 * max(errors.max(), 1e-300)
