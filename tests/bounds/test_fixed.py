"""Fixed/manual bound schemes (the non-autonomous baseline)."""

import pytest

from repro.bounds.base import BoundContext
from repro.bounds.fixed import FixedBound, RelativeFixedBound
from repro.errors import BoundSchemeError


class TestFixedBound:
    def test_constant_for_any_context(self):
        scheme = FixedBound(1e-9)
        assert scheme.epsilon(BoundContext(n=1, m=1)) == 1e-9
        assert scheme.epsilon(BoundContext(n=100_000, m=64)) == 1e-9

    def test_zero_allowed(self):
        # A zero bound means exact comparison (valid for integer data).
        assert FixedBound(0.0).epsilon(BoundContext(n=1, m=1)) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(BoundSchemeError):
            FixedBound(-1e-9)

    def test_rejects_nan(self):
        with pytest.raises(BoundSchemeError):
            FixedBound(float("nan"))

    def test_rejects_inf(self):
        with pytest.raises(BoundSchemeError):
            FixedBound(float("inf"))

    def test_describe(self):
        assert "1.000e-09" in FixedBound(1e-9).describe()


class TestRelativeFixedBound:
    def test_scales_with_n(self):
        scheme = RelativeFixedBound(rel_tol=1e-15, scale=10.0)
        e1 = scheme.epsilon(BoundContext(n=100, m=1))
        e2 = scheme.epsilon(BoundContext(n=200, m=1))
        assert e2 == pytest.approx(2 * e1)

    def test_validation(self):
        with pytest.raises(BoundSchemeError):
            RelativeFixedBound(rel_tol=0.0, scale=1.0)
        with pytest.raises(BoundSchemeError):
            RelativeFixedBound(rel_tol=1e-15, scale=-1.0)

    def test_describe(self):
        text = RelativeFixedBound(rel_tol=1e-15, scale=2.0).describe()
        assert "rel_tol" in text
