"""SEA (simplified error analysis) baseline bounds."""

import numpy as np
import pytest

from repro.bounds.base import BoundContext
from repro.bounds.sea import SEABound, sea_epsilon
from repro.errors import BoundSchemeError

T = 53


class TestSeaEpsilon:
    def test_formula_hand_computed(self):
        # ((n + 2m - 2) ||b|| sum||a_i|| + n ||a_cs|| ||b||) * 2^-t
        n, m = 8, 3
        row_norms = np.array([1.0, 2.0, 3.0])
        cs_norm = 4.0
        b_norm = 5.0
        expected = ((8 + 4) * 5.0 * 6.0 + 8 * 4.0 * 5.0) * 2.0**-T
        assert sea_epsilon(n, row_norms, cs_norm, b_norm, T) == pytest.approx(expected)

    def test_scales_with_norms(self):
        base = sea_epsilon(16, np.ones(4), 1.0, 1.0, T)
        scaled = sea_epsilon(16, 10 * np.ones(4), 10.0, 10.0, T)
        assert scaled == pytest.approx(100 * base)

    def test_grows_with_n(self):
        eps = [sea_epsilon(n, np.ones(4), 1.0, 1.0, T) for n in (8, 64, 512)]
        assert eps[0] < eps[1] < eps[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            sea_epsilon(8, np.array([]), 1.0, 1.0, T)
        with pytest.raises(ValueError):
            sea_epsilon(0, np.ones(2), 1.0, 1.0, T)


class TestSeaScheme:
    def test_uses_context_norms(self):
        scheme = SEABound()
        ctx = BoundContext(
            n=8, m=3, a_norms=np.array([1.0, 2.0, 3.0, 4.0]), b_norm=5.0
        )
        expected = sea_epsilon(8, np.array([1.0, 2.0, 3.0]), 4.0, 5.0, T)
        assert scheme.epsilon(ctx) == pytest.approx(expected)

    def test_requires_norms(self):
        with pytest.raises(BoundSchemeError, match="norms"):
            SEABound().epsilon(BoundContext(n=8, m=3))

    def test_requires_checksum_row_norm(self):
        with pytest.raises(BoundSchemeError):
            SEABound().epsilon(
                BoundContext(n=8, m=3, a_norms=np.array([1.0]), b_norm=1.0)
            )


class TestSeaVsProbabilistic:
    def test_sea_much_looser_on_uniform_inputs(self, rng):
        """The paper's central quality claim: SEA bounds are ~2 orders of
        magnitude looser than A-ABFT's on the same data."""
        from repro.abft.encoding import (
            encode_partitioned_columns,
            encode_partitioned_rows,
        )
        from repro.abft.providers import AABFTEpsilonProvider, SEAEpsilonProvider
        from repro.bounds.probabilistic import ProbabilisticBound
        from repro.bounds.upper_bound import top_p_of_columns, top_p_of_rows

        n, bs = 256, 64
        a = rng.uniform(-1, 1, (n, n))
        b = rng.uniform(-1, 1, (n, n))
        a_cc, row_layout = encode_partitioned_columns(a, bs)
        b_rc, col_layout = encode_partitioned_rows(b, bs)

        aabft = AABFTEpsilonProvider(
            ProbabilisticBound(),
            top_p_of_rows(a_cc, 2),
            top_p_of_columns(b_rc, 2),
            row_layout,
            col_layout,
            inner_dim=n,
        )
        sea = SEAEpsilonProvider(
            SEABound(),
            np.linalg.norm(a_cc, axis=1),
            np.linalg.norm(b_rc, axis=0),
            row_layout,
            col_layout,
            inner_dim=n,
        )
        ratios = [
            sea.column_epsilon(blk, col) / aabft.column_epsilon(blk, col)
            for blk in range(row_layout.num_blocks)
            for col in range(0, n, 17)
        ]
        assert min(ratios) > 5.0
        assert np.median(ratios) > 20.0
