"""The three-case upper-bound rule of Section IV-E."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds.upper_bound import (
    TopP,
    determine_upper_bound,
    exact_upper_bound,
    top_p_arrays,
    top_p_of_columns,
    top_p_of_rows,
)


def naive_top_p(vector, p):
    """Algorithm 1's max search, literally: p rounds of a strict ``>`` scan.

    The first occurrence of the maximum wins every round (ties resolve to
    the lowest index), exactly the semantics ``top_p_arrays`` must keep.
    """
    work = [abs(float(v)) for v in vector]
    vals, ids = [], []
    for _ in range(p):
        best = 0
        for j in range(1, len(work)):
            if work[j] > work[best]:
                best = j
        vals.append(work[best])
        ids.append(best)
        work[best] = -np.inf
    return np.array(vals), np.array(ids, dtype=np.intp)


class TestTopP:
    def test_rows_descending_order(self, rng):
        m = rng.uniform(-10, 10, (5, 20))
        tops = top_p_of_rows(m, 4)
        assert len(tops) == 5
        for i, t in enumerate(tops):
            assert np.all(np.diff(t.values) <= 0)
            assert np.array_equal(t.values, np.abs(m[i, t.indices]))

    def test_rows_are_true_maxima(self, rng):
        m = rng.uniform(-10, 10, (8, 30))
        tops = top_p_of_rows(m, 3)
        for i, t in enumerate(tops):
            expected = np.sort(np.abs(m[i]))[-3:][::-1]
            assert np.allclose(t.values, expected)

    def test_columns_match_transposed_rows(self, rng):
        m = rng.uniform(-5, 5, (12, 7))
        by_cols = top_p_of_columns(m, 2)
        by_rows = top_p_of_rows(m.T, 2)
        for c, r in zip(by_cols, by_rows):
            assert np.array_equal(c.values, r.values)
            assert np.array_equal(c.indices, r.indices)

    def test_p_validation(self, rng):
        m = rng.uniform(-1, 1, (3, 4))
        with pytest.raises(ValueError):
            top_p_of_rows(m, 0)
        with pytest.raises(ValueError):
            top_p_of_rows(m, 5)

    def test_max_min_accessors(self):
        t = TopP(values=np.array([5.0, 2.0]), indices=np.array([1, 3]))
        assert t.max == 5.0
        assert t.min == 2.0
        assert t.p == 2

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TopP(values=np.array([1.0, 2.0]), indices=np.array([0]))


class TestTopPArrays:
    """Edge cases of the stacked array form vs the per-vector TopP path."""

    def assert_matches_per_vector(self, matrix, p, axis):
        vals, idx = top_p_arrays(matrix, p, axis)
        tops = top_p_of_rows(matrix, p) if axis == 1 else top_p_of_columns(matrix, p)
        assert vals.shape == idx.shape == (len(tops), p)
        for k, top in enumerate(tops):
            assert np.array_equal(vals[k], top.values)
            assert np.array_equal(idx[k], top.indices)
        vectors = matrix if axis == 1 else matrix.T
        for k, vec in enumerate(vectors):
            ref_vals, ref_ids = naive_top_p(vec, p)
            assert np.array_equal(vals[k], ref_vals)
            assert np.array_equal(idx[k], ref_ids)

    def test_ties_resolve_to_lowest_index(self):
        # |3| appears at indices 0, 2 and 3 (once negated): the strict max
        # search must pick them in index order, like Algorithm 1's ``>``.
        m = np.array([[3.0, 1.0, -3.0, 3.0], [-2.0, 2.0, 0.5, 2.0]])
        vals, idx = top_p_arrays(m, 3, axis=1)
        assert np.array_equal(idx, [[0, 2, 3], [0, 1, 3]])
        assert np.array_equal(vals, [[3.0, 3.0, 3.0], [2.0, 2.0, 2.0]])
        self.assert_matches_per_vector(m, 3, axis=1)
        self.assert_matches_per_vector(m.T, 3, axis=0)

    def test_p_equals_n(self, rng):
        m = rng.uniform(-5, 5, (6, 9))
        self.assert_matches_per_vector(m, 9, axis=1)
        self.assert_matches_per_vector(m, 6, axis=0)
        vals, _ = top_p_arrays(m, 9, axis=1)
        # Every element selected exactly once: the rows are permutations.
        assert np.array_equal(np.sort(vals, axis=1), np.sort(np.abs(m), axis=1))

    def test_p_equals_one(self, rng):
        m = rng.uniform(-5, 5, (7, 11))
        vals, idx = top_p_arrays(m, 1, axis=1)
        assert np.array_equal(vals[:, 0], np.max(np.abs(m), axis=1))
        assert np.array_equal(idx[:, 0], np.argmax(np.abs(m), axis=1))
        self.assert_matches_per_vector(m, 1, axis=1)
        self.assert_matches_per_vector(m, 1, axis=0)

    def test_negative_dominated_vectors(self, rng):
        # All-negative vectors: the search runs on |values|, so the most
        # negative entry must win, not the algebraic maximum.
        m = -np.abs(rng.uniform(1, 10, (5, 8)))
        vals, idx = top_p_arrays(m, 2, axis=1)
        assert np.array_equal(vals[:, 0], np.abs(m).max(axis=1))
        assert np.all(vals > 0)
        self.assert_matches_per_vector(m, 2, axis=1)
        self.assert_matches_per_vector(m, 2, axis=0)

    def test_nan_entries_never_selected(self):
        # NaN loses every strict ``>`` comparison in the reference kernel,
        # so finite values must win; the input matrix is left untouched.
        m = np.array([[np.nan, 2.0, 5.0, 1.0], [4.0, np.nan, np.nan, 3.0]])
        snapshot = m.copy()
        vals, idx = top_p_arrays(m, 2, axis=1)
        assert np.array_equal(vals, [[5.0, 2.0], [4.0, 3.0]])
        assert np.array_equal(idx, [[2, 1], [0, 3]])
        assert np.array_equal(m, snapshot, equal_nan=True)

    @settings(max_examples=150, deadline=None)
    @given(
        st.integers(1, 12),
        st.integers(1, 12),
        st.integers(1, 12),
        st.integers(0, 2**32 - 1),
    )
    def test_matches_naive_reference_with_ties(self, k, n, p, seed):
        """Integer-valued entries force frequent |value| ties."""
        rng = np.random.default_rng(seed)
        m = rng.integers(-3, 4, (k, n)).astype(np.float64)
        self.assert_matches_per_vector(m, min(p, n), axis=1)
        self.assert_matches_per_vector(m, min(p, k), axis=0)

    def test_axes_agree_bitwise(self, rng):
        m = rng.uniform(-5, 5, (10, 13))
        v1, i1 = top_p_arrays(m, 3, axis=1)
        v0, i0 = top_p_arrays(m.T, 3, axis=0)
        assert np.array_equal(v1, v0)
        assert np.array_equal(i1, i0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            top_p_arrays(rng.uniform(-1, 1, (3, 4)), 5, axis=1)
        with pytest.raises(ValueError):
            top_p_arrays(np.ones(4), 1, axis=0)


class TestThreeCaseRule:
    @settings(max_examples=200)
    @given(
        st.integers(2, 64),
        st.integers(1, 6),
        st.integers(0, 2**32 - 1),
    )
    def test_always_an_upper_bound(self, n, p, seed):
        """The determined y must bound every product |a_k * b_k| (Eq. 46)."""
        rng = np.random.default_rng(seed)
        p = min(p, n)
        a = rng.uniform(-10, 10, n) * 10.0 ** rng.integers(-3, 4, n)
        b = rng.uniform(-10, 10, n) * 10.0 ** rng.integers(-3, 4, n)
        row_top = top_p_of_rows(a[None, :], p)[0]
        col_top = top_p_of_columns(b[:, None], p)[0]
        y = determine_upper_bound(row_top, col_top)
        assert y >= exact_upper_bound(a, b)

    def test_shared_index_case_is_tight(self):
        # Largest values of a and b share index 0: y = |a_0 * b_0| exactly.
        a = np.array([10.0, 1.0, 1.0, 1.0])
        b = np.array([8.0, 1.0, 1.0, 1.0])
        row_top = top_p_of_rows(a[None, :], 2)[0]
        col_top = top_p_of_columns(b[:, None], 2)[0]
        assert determine_upper_bound(row_top, col_top) == 80.0

    def test_disjoint_case_uses_cross_bounds(self):
        # Top-2 of a: indices {0, 1}; top-2 of b: indices {2, 3} — disjoint.
        a = np.array([10.0, 9.0, 0.5, 0.5])
        b = np.array([0.5, 0.5, 8.0, 7.0])
        row_top = top_p_of_rows(a[None, :], 2)[0]
        col_top = top_p_of_columns(b[:, None], 2)[0]
        y = determine_upper_bound(row_top, col_top)
        # max|a| * min_top|b| = 10*7 = 70; max|b| * min_top|a| = 8*9 = 72.
        assert y == 72.0
        assert y >= exact_upper_bound(a, b)

    def test_larger_p_never_loosens(self, rng):
        """Increasing p refines (or keeps) the bound — paper Section IV-E."""
        n = 64
        for _ in range(20):
            a = rng.uniform(-5, 5, n)
            b = rng.uniform(-5, 5, n)
            ys = []
            for p in (1, 2, 4, 8, 16):
                rt = top_p_of_rows(a[None, :], p)[0]
                ct = top_p_of_columns(b[:, None], p)[0]
                ys.append(determine_upper_bound(rt, ct))
            exact = exact_upper_bound(a, b)
            assert all(y >= exact for y in ys)
            # p = n would be exact; the trend must be non-increasing overall.
            assert ys[-1] <= ys[0]

    def test_exact_upper_bound_validates(self):
        with pytest.raises(ValueError):
            exact_upper_bound(np.ones(3), np.ones(2))
