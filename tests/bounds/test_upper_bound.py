"""The three-case upper-bound rule of Section IV-E."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds.upper_bound import (
    TopP,
    determine_upper_bound,
    exact_upper_bound,
    top_p_of_columns,
    top_p_of_rows,
)


class TestTopP:
    def test_rows_descending_order(self, rng):
        m = rng.uniform(-10, 10, (5, 20))
        tops = top_p_of_rows(m, 4)
        assert len(tops) == 5
        for i, t in enumerate(tops):
            assert np.all(np.diff(t.values) <= 0)
            assert np.array_equal(t.values, np.abs(m[i, t.indices]))

    def test_rows_are_true_maxima(self, rng):
        m = rng.uniform(-10, 10, (8, 30))
        tops = top_p_of_rows(m, 3)
        for i, t in enumerate(tops):
            expected = np.sort(np.abs(m[i]))[-3:][::-1]
            assert np.allclose(t.values, expected)

    def test_columns_match_transposed_rows(self, rng):
        m = rng.uniform(-5, 5, (12, 7))
        by_cols = top_p_of_columns(m, 2)
        by_rows = top_p_of_rows(m.T, 2)
        for c, r in zip(by_cols, by_rows):
            assert np.array_equal(c.values, r.values)
            assert np.array_equal(c.indices, r.indices)

    def test_p_validation(self, rng):
        m = rng.uniform(-1, 1, (3, 4))
        with pytest.raises(ValueError):
            top_p_of_rows(m, 0)
        with pytest.raises(ValueError):
            top_p_of_rows(m, 5)

    def test_max_min_accessors(self):
        t = TopP(values=np.array([5.0, 2.0]), indices=np.array([1, 3]))
        assert t.max == 5.0
        assert t.min == 2.0
        assert t.p == 2

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TopP(values=np.array([1.0, 2.0]), indices=np.array([0]))


class TestThreeCaseRule:
    @settings(max_examples=200)
    @given(
        st.integers(2, 64),
        st.integers(1, 6),
        st.integers(0, 2**32 - 1),
    )
    def test_always_an_upper_bound(self, n, p, seed):
        """The determined y must bound every product |a_k * b_k| (Eq. 46)."""
        rng = np.random.default_rng(seed)
        p = min(p, n)
        a = rng.uniform(-10, 10, n) * 10.0 ** rng.integers(-3, 4, n)
        b = rng.uniform(-10, 10, n) * 10.0 ** rng.integers(-3, 4, n)
        row_top = top_p_of_rows(a[None, :], p)[0]
        col_top = top_p_of_columns(b[:, None], p)[0]
        y = determine_upper_bound(row_top, col_top)
        assert y >= exact_upper_bound(a, b)

    def test_shared_index_case_is_tight(self):
        # Largest values of a and b share index 0: y = |a_0 * b_0| exactly.
        a = np.array([10.0, 1.0, 1.0, 1.0])
        b = np.array([8.0, 1.0, 1.0, 1.0])
        row_top = top_p_of_rows(a[None, :], 2)[0]
        col_top = top_p_of_columns(b[:, None], 2)[0]
        assert determine_upper_bound(row_top, col_top) == 80.0

    def test_disjoint_case_uses_cross_bounds(self):
        # Top-2 of a: indices {0, 1}; top-2 of b: indices {2, 3} — disjoint.
        a = np.array([10.0, 9.0, 0.5, 0.5])
        b = np.array([0.5, 0.5, 8.0, 7.0])
        row_top = top_p_of_rows(a[None, :], 2)[0]
        col_top = top_p_of_columns(b[:, None], 2)[0]
        y = determine_upper_bound(row_top, col_top)
        # max|a| * min_top|b| = 10*7 = 70; max|b| * min_top|a| = 8*9 = 72.
        assert y == 72.0
        assert y >= exact_upper_bound(a, b)

    def test_larger_p_never_loosens(self, rng):
        """Increasing p refines (or keeps) the bound — paper Section IV-E."""
        n = 64
        for _ in range(20):
            a = rng.uniform(-5, 5, n)
            b = rng.uniform(-5, 5, n)
            ys = []
            for p in (1, 2, 4, 8, 16):
                rt = top_p_of_rows(a[None, :], p)[0]
                ct = top_p_of_columns(b[:, None], p)[0]
                ys.append(determine_upper_bound(rt, ct))
            exact = exact_upper_bound(a, b)
            assert all(y >= exact for y in ys)
            # p = n would be exact; the trend must be non-increasing overall.
            assert ys[-1] <= ys[0]

    def test_exact_upper_bound_validates(self):
        with pytest.raises(ValueError):
            exact_upper_bound(np.ones(3), np.ones(2))
