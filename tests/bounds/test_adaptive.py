"""Variance-adaptive low-precision bound: calibration table, scalar/array
agreement, and the AdaptiveBound scheme's context contract."""

import numpy as np
import pytest

from repro.bounds.adaptive import (
    ADAPTIVE_K,
    AdaptiveBound,
    adaptive_epsilon,
    adaptive_epsilon_array,
    adaptive_k_for,
    quantization_epsilon,
    quantization_epsilon_array,
)
from repro.bounds.base import BoundContext
from repro.bounds.sea import sea_epsilon
from repro.errors import BoundSchemeError
from repro.fp.constants import BINARY16, BINARY32, BINARY64, FloatFormat


class TestCalibrationTable:
    def test_table_values(self):
        assert ADAPTIVE_K == {
            "binary16": 1.25,
            "bfloat16": 1.25,
            "binary32": 1.0,
            "binary64": 1.0,
        }

    def test_k_for_known_formats(self):
        assert adaptive_k_for(BINARY16) == 1.25
        assert adaptive_k_for(BINARY32) == 1.0
        assert adaptive_k_for(BINARY64) == 1.0

    def test_k_for_unknown_format_defaults_to_one(self):
        weird = FloatFormat(
            name="binary128-ish",
            total_bits=32,
            mantissa_bits=23,
            exponent_bits=8,
            dtype=np.dtype(np.float32),
            uint_dtype=np.dtype(np.uint32),
        )
        assert adaptive_k_for(weird) == 1.0


class TestQuantizationEpsilon:
    def test_is_the_cauchy_schwarz_product(self):
        # k * u_s * sum_i ||a_i|| * ||b_j||, all factors explicit.
        assert quantization_epsilon(3.0, 2.0, 0.5, 1.25) == 1.25 * 0.5 * 3.0 * 2.0

    def test_array_form_matches_scalar_per_column(self):
        b_norms = np.array([0.5, 1.0, 2.0, 7.25])
        vec = quantization_epsilon_array(3.0, b_norms, 2.0**-11, 1.25)
        for j, b_norm in enumerate(b_norms):
            assert vec[j] == quantization_epsilon(3.0, b_norm, 2.0**-11, 1.25)

    @pytest.mark.parametrize("kwargs", [{"u_storage": -1e-3}, {"k": -0.5}])
    def test_negative_inputs_rejected(self, kwargs):
        base = {"u_storage": 2.0**-11, "k": 1.25}
        base.update(kwargs)
        with pytest.raises(ValueError):
            quantization_epsilon(3.0, 2.0, base["u_storage"], base["k"])
        with pytest.raises(ValueError):
            quantization_epsilon_array(
                3.0, np.ones(4), base["u_storage"], base["k"]
            )


class TestScalarArrayAgreement:
    def test_adaptive_epsilon_array_mirrors_scalar_bitwise(self):
        rng = np.random.default_rng(7)
        norms = rng.uniform(0.5, 4.0, 8)
        checksum_norm = float(np.linalg.norm(norms))
        b_norms = rng.uniform(0.5, 4.0, 16)
        u_s = BINARY16.unit_roundoff
        vec = adaptive_epsilon_array(
            n=32,
            m=norms.size,
            data_norm_sum=float(norms.sum()),
            checksum_row_norm=checksum_norm,
            b_norms=b_norms,
            t_compute=BINARY32.t,
            u_storage=u_s,
            k=1.25,
        )
        for j, b_norm in enumerate(b_norms):
            scalar = adaptive_epsilon(
                n=32,
                data_row_norms=norms,
                checksum_row_norm=checksum_norm,
                b_norm=float(b_norm),
                t_compute=BINARY32.t,
                u_storage=u_s,
                k=1.25,
            )
            assert vec[j] == scalar  # bitwise, not approx

    def test_exceeds_sea_by_exactly_the_quantisation_term(self):
        norms = np.array([1.0, 2.0, 3.0])
        sea = sea_epsilon(
            n=16,
            data_row_norms=norms,
            checksum_row_norm=4.0,
            b_norm=2.0,
            t=BINARY32.t,
        )
        adaptive = adaptive_epsilon(
            n=16,
            data_row_norms=norms,
            checksum_row_norm=4.0,
            b_norm=2.0,
            t_compute=BINARY32.t,
            u_storage=BINARY16.unit_roundoff,
            k=1.25,
        )
        extra = quantization_epsilon(6.0, 2.0, BINARY16.unit_roundoff, 1.25)
        assert adaptive == sea + extra
        assert adaptive > sea

    def test_zero_u_storage_degenerates_to_sea(self):
        norms = np.array([1.0, 2.0, 3.0])
        sea = sea_epsilon(
            n=16,
            data_row_norms=norms,
            checksum_row_norm=4.0,
            b_norm=2.0,
            t=BINARY32.t,
        )
        adaptive = adaptive_epsilon(
            n=16,
            data_row_norms=norms,
            checksum_row_norm=4.0,
            b_norm=2.0,
            t_compute=BINARY32.t,
            u_storage=0.0,
            k=1.25,
        )
        assert adaptive == sea


class TestAdaptiveBound:
    def _ctx(self):
        a_norms = np.array([1.0, 2.0, 3.0, 4.0])  # data rows + checksum row
        return BoundContext(n=32, m=3, a_norms=a_norms, b_norm=2.0)

    def test_default_k_resolves_from_table(self):
        bound = AdaptiveBound(fmt=BINARY32, storage_fmt=BINARY16)
        assert bound.effective_k == 1.25

    def test_explicit_k_overrides_table(self):
        bound = AdaptiveBound(fmt=BINARY32, storage_fmt=BINARY16, k=2.5)
        assert bound.effective_k == 2.5

    @pytest.mark.parametrize("k", [-1.0, float("inf"), float("nan")])
    def test_invalid_k_rejected(self, k):
        with pytest.raises(ValueError, match="k must be"):
            AdaptiveBound(fmt=BINARY32, storage_fmt=BINARY16, k=k)

    def test_epsilon_matches_the_free_function(self):
        bound = AdaptiveBound(fmt=BINARY32, storage_fmt=BINARY16)
        ctx = self._ctx()
        expected = adaptive_epsilon(
            n=32,
            data_row_norms=np.array([1.0, 2.0, 3.0]),
            checksum_row_norm=4.0,
            b_norm=2.0,
            t_compute=BINARY32.t,
            u_storage=BINARY16.unit_roundoff,
            k=1.25,
        )
        assert bound.epsilon(ctx) == expected

    def test_requires_norms_in_context(self):
        bound = AdaptiveBound(fmt=BINARY32, storage_fmt=BINARY16)
        with pytest.raises(BoundSchemeError, match="requires row norms"):
            bound.epsilon(BoundContext(n=32, m=3))

    def test_requires_at_least_data_plus_checksum_row(self):
        bound = AdaptiveBound(fmt=BINARY32, storage_fmt=BINARY16)
        ctx = BoundContext(n=32, m=1, a_norms=np.array([1.0]), b_norm=2.0)
        with pytest.raises(BoundSchemeError, match="at least one data row"):
            bound.epsilon(ctx)

    def test_describe_names_storage_and_k(self):
        text = AdaptiveBound(fmt=BINARY32, storage_fmt=BINARY16).describe()
        assert "binary16" in text
        assert "k=1.25" in text
