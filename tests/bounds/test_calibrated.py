"""The calibration-run baseline and its failure modes (paper Section III)."""

import pytest

from repro.abft.checking import check_partitioned
from repro.abft.encoding import (
    encode_partitioned_columns,
    encode_partitioned_rows,
)
from repro.abft.providers import ConstantEpsilonProvider
from repro.bounds.base import BoundContext
from repro.bounds.calibrated import CalibratedBound, calibrate
from repro.errors import BoundSchemeError
from repro.workloads import SUITE_HUNDRED, SUITE_UNIT


class TestCalibration:
    def test_learned_bound_works_on_calibrated_distribution(self, rng):
        bound = calibrate(SUITE_UNIT, 128, rng, runs=4)
        pair = SUITE_UNIT.generate(128, rng)
        a_cc, rows = encode_partitioned_columns(pair.a, 64)
        b_rc, cols = encode_partitioned_rows(pair.b, 64)
        report = check_partitioned(
            a_cc @ b_rc, rows, cols, ConstantEpsilonProvider(bound.value)
        )
        assert not report.error_detected

    def test_describe_records_provenance(self, rng):
        bound = calibrate(SUITE_UNIT, 128, rng, runs=2)
        text = bound.describe()
        assert "uniform_unit" in text
        assert "n=128" in text

    def test_epsilon_constant(self, rng):
        bound = calibrate(SUITE_UNIT, 128, rng, runs=2)
        assert bound.epsilon(BoundContext(n=1, m=1)) == bound.value
        assert bound.epsilon(BoundContext(n=10**6, m=64)) == bound.value

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="calibration run"):
            calibrate(SUITE_UNIT, 128, rng, runs=0)
        with pytest.raises(ValueError, match="safety"):
            calibrate(SUITE_UNIT, 128, rng, safety=0.5)
        with pytest.raises(BoundSchemeError):
            CalibratedBound(value=0.0, calibrated_n=1, calibrated_suite="x", safety=2.0)


class TestFailureModes:
    """The paper's criticism, quantified: the learned constant breaks when
    the input characteristics or the problem size change."""

    def test_distribution_shift_causes_false_positives(self, rng):
        """Calibrated on U(-1,1), applied to U(-100,100): discrepancies grow
        by ~1e4 while the bound stays put — mass false positives."""
        bound = calibrate(SUITE_UNIT, 128, rng, runs=4)
        pair = SUITE_HUNDRED.generate(128, rng)
        a_cc, rows = encode_partitioned_columns(pair.a, 64)
        b_rc, cols = encode_partitioned_rows(pair.b, 64)
        report = check_partitioned(
            a_cc @ b_rc, rows, cols, ConstantEpsilonProvider(bound.value)
        )
        assert report.error_detected
        assert report.num_failed > 50  # not an isolated fluke: mass FPs

    def test_reverse_shift_misses_errors(self, rng):
        """Calibrated on U(-100,100), applied to U(-1,1): the bound is ~1e4
        too loose and real corruptions sail through."""
        bound = calibrate(SUITE_HUNDRED, 128, rng, runs=4)
        pair = SUITE_UNIT.generate(128, rng)
        a_cc, rows = encode_partitioned_columns(pair.a, 64)
        b_rc, cols = encode_partitioned_rows(pair.b, 64)
        c_fc = a_cc @ b_rc
        # An error far above this workload's rounding noise (~1e-13) yet
        # below the constant learned on the louder distribution.
        delta = bound.value / 5.0
        c_fc[5, 9] += delta
        report = check_partitioned(
            c_fc, rows, cols, ConstantEpsilonProvider(bound.value)
        )
        assert not report.error_detected  # the miss
        # A-ABFT on the same data catches it.
        from repro.abft.multiply import aabft_matmul

        clean = aabft_matmul(pair.a, pair.b, block_size=64)
        corrupted = clean.c_fc.copy()
        corrupted[5, 9] += delta
        assert check_partitioned(
            corrupted, clean.row_layout, clean.col_layout, clean.provider
        ).error_detected

    def test_size_shift_causes_false_positives(self, rng):
        """Calibrated at n=128, applied at n=512: discrepancies grow with n
        past the frozen constant."""
        bound = calibrate(SUITE_HUNDRED, 128, rng, runs=4, safety=1.05)
        pair = SUITE_HUNDRED.generate(512, rng)
        a_cc, rows = encode_partitioned_columns(pair.a, 64)
        b_rc, cols = encode_partitioned_rows(pair.b, 64)
        report = check_partitioned(
            a_cc @ b_rc, rows, cols, ConstantEpsilonProvider(bound.value)
        )
        assert report.error_detected
