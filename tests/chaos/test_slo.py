"""SLOSpec validation, multi-window burn-rate math, breach evaluation."""

import pytest

from repro.chaos import BurnSample, SLOSpec, burn_rates, evaluate_slo
from repro.errors import ConfigurationError


def spec(**overrides):
    base = dict(
        p99_latency_s=0.1,
        error_budget=0.2,
        burn_rate_limit=2.0,
        short_window_s=1.0,
        long_window_s=4.0,
    )
    base.update(overrides)
    return SLOSpec(**base)


class TestValidation:
    def test_windows_must_be_ordered(self):
        with pytest.raises(ConfigurationError, match="shorter"):
            spec(short_window_s=4.0, long_window_s=1.0)

    def test_budget_bounded(self):
        with pytest.raises(ConfigurationError, match="error_budget"):
            spec(error_budget=0.0)

    def test_round_trip(self):
        s = spec()
        assert SLOSpec.from_dict(s.to_dict()) == s

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown SLO"):
            SLOSpec.from_dict({"p99_latency_ms": 100})


def cumulative(series):
    """Build BurnSamples from per-second (good, bad) increments."""
    samples, good, bad = [], 0, 0
    for t, (dg, db) in enumerate(series, start=1):
        good += dg
        bad += db
        samples.append(BurnSample(t_s=float(t), good=good, bad=bad))
    return samples


class TestBurnRates:
    def test_steady_traffic_at_budget_burns_one(self):
        # 20% bad forever == exactly the declared budget -> burn rate 1.
        samples = cumulative([(80, 20)] * 6)
        rows = burn_rates(samples, spec())
        assert rows[-1]["short"] == pytest.approx(1.0)
        assert rows[-1]["long"] == pytest.approx(1.0)
        assert rows[-1]["burn"] == pytest.approx(1.0)

    def test_short_spike_alone_does_not_sustain(self):
        # One bad second in a long clean run: the short window screams,
        # the long window stays low -> the multi-window burn stays low.
        samples = cumulative([(100, 0)] * 4 + [(0, 100)] + [(100, 0)] * 1)
        rows = burn_rates(samples, spec())
        spike = rows[4]
        assert spike["short"] == pytest.approx(5.0)  # 100% bad / 0.2 budget
        assert spike["long"] < spike["short"]
        assert spike["burn"] == spike["long"]

    def test_sustained_burn_raises_both_windows(self):
        samples = cumulative([(20, 80)] * 6)
        rows = burn_rates(samples, spec())
        assert rows[-1]["burn"] == pytest.approx(0.8 / 0.2)

    def test_empty_window_burns_zero(self):
        rows = burn_rates([BurnSample(1.0, 0, 0)], spec())
        assert rows[0]["burn"] == 0.0


def evaluate(samples=None, **overrides):
    kwargs = dict(
        p99_s=0.05,
        served=100,
        silent_wrong=0,
        dropped=0,
        reconciliation_diffs=[],
        samples=samples if samples is not None else cumulative([(100, 0)] * 4),
    )
    kwargs.update(overrides)
    return evaluate_slo(spec(), **kwargs)


class TestEvaluate:
    def test_clean_run_passes(self):
        assert evaluate() == []

    def test_p99_breach(self):
        [breach] = evaluate(p99_s=0.5)
        assert breach.slo == "p99_latency"
        assert breach.measured == 0.5

    def test_silent_wrong_is_absolute(self):
        [breach] = evaluate(silent_wrong=1)
        assert breach.slo == "silent_wrong"
        assert breach.threshold == 0.0

    def test_dropped_breach(self):
        [breach] = evaluate(dropped=1)
        assert breach.slo == "dropped"

    def test_accounting_breach_carries_the_diff(self):
        [breach] = evaluate(
            reconciliation_diffs=["counter x: moved 3, client tallied 2 (+1)"]
        )
        assert breach.slo == "accounting"
        assert "moved 3" in breach.detail

    def test_sustained_burn_breach(self):
        [breach] = evaluate(samples=cumulative([(10, 90)] * 6))
        assert breach.slo == "burn_rate"
        assert breach.measured > 2.0
