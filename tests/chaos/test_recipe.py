"""ChaosRecipe validation, JSON round-trips and the built-in quick suite."""

import json

import pytest

from repro.chaos import (
    CHAOS_KINDS,
    ChaosRecipe,
    default_quick_suite,
    dump_recipes,
    load_recipes,
)
from repro.errors import ConfigurationError


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos kind"):
            ChaosRecipe(kind="meteor_strike", site="dc", intensity=1.0)

    def test_stage_stall_site_must_be_a_stage(self):
        with pytest.raises(ConfigurationError, match="targets sites"):
            ChaosRecipe(kind="stage_stall", site="gemm", intensity=0.01)

    def test_backend_failure_refuses_numpy(self):
        with pytest.raises(ConfigurationError, match="terminal"):
            ChaosRecipe(kind="backend_failure", site="numpy", intensity=1.0)

    @pytest.mark.parametrize("kind", ["backend_failure", "bitflip"])
    def test_probability_kinds_bounded(self, kind):
        site = "blocked" if kind == "backend_failure" else "gemm"
        with pytest.raises(ConfigurationError, match="probability"):
            ChaosRecipe(kind=kind, site=site, intensity=1.5)

    def test_queue_burst_intensity_is_a_count(self):
        with pytest.raises(ConfigurationError, match="whole request count"):
            ChaosRecipe(kind="queue_burst", site="admission", intensity=2.5)

    def test_stall_needs_positive_seconds(self):
        with pytest.raises(ConfigurationError, match="positive seconds"):
            ChaosRecipe(kind="stage_stall", site="encode", intensity=0.0)

    def test_window_validation(self):
        with pytest.raises(ConfigurationError, match="duration_s"):
            ChaosRecipe(
                kind="clock_skew", site="server", intensity=1.0, duration_s=0.0
            )
        with pytest.raises(ConfigurationError, match="start_s"):
            ChaosRecipe(
                kind="clock_skew", site="server", intensity=1.0, start_s=-1.0
            )

    def test_window_arming(self):
        recipe = ChaosRecipe(
            kind="bitflip", site="gemm", intensity=0.5, start_s=1.0,
            duration_s=2.0,
        )
        assert not recipe.active_at(0.5)
        assert recipe.active_at(1.0)
        assert recipe.active_at(2.9)
        assert not recipe.active_at(3.0)
        assert recipe.end_s == 3.0


class TestJsonRoundTrip:
    def test_to_from_dict(self):
        recipe = ChaosRecipe(
            kind="stage_stall", site="check", intensity=0.01, seed=9
        )
        assert ChaosRecipe.from_dict(recipe.to_dict()) == recipe

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos recipe"):
            ChaosRecipe.from_dict(
                {"kind": "bitflip", "site": "gemm", "intensity": 0.5,
                 "blast_radius": 3}
            )

    def test_dump_and_load(self, tmp_path):
        suite = default_quick_suite()
        path = tmp_path / "recipes.json"
        dump_recipes(suite, path)
        assert load_recipes(path) == suite

    def test_load_accepts_bare_list(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps(
            [{"kind": "bitflip", "site": "gemm", "intensity": 0.5}]
        ))
        [recipe] = load_recipes(path)
        assert recipe.kind == "bitflip"

    def test_load_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("[]")
        with pytest.raises(ConfigurationError, match="non-empty"):
            load_recipes(path)


class TestQuickSuite:
    def test_covers_every_kind(self):
        suite = default_quick_suite()
        assert {r.kind for r in suite} == set(CHAOS_KINDS)

    def test_windows_are_staggered(self):
        # worker_kill runs in the harness's separate cluster phase on its
        # own clock, so only same-phase windows must not overlap.
        server_phase = [
            r for r in default_quick_suite() if r.kind != "worker_kill"
        ]
        suite = sorted(server_phase, key=lambda r: r.start_s)
        for earlier, later in zip(suite, suite[1:]):
            assert earlier.end_s <= later.start_s + 1e-9
