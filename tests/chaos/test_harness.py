"""End-to-end chaos harness runs (fast: short windows, small shapes)."""

import json

import pytest

from repro.chaos import ChaosRecipe, SLOSpec, run_chaos
from repro.errors import ConfigurationError
from repro.serve import ServeConfig
from repro.telemetry import MetricsRegistry

FAST = dict(
    requests_per_wave=8,
    concurrency=4,
    m=48,
    n=48,
    q=8,
    drain_margin_s=0.1,
)


def counter_value(registry, name, **labels):
    for row in registry.snapshot()[name]["values"]:
        if row["labels"] == labels:
            return row["value"]
    return 0.0


@pytest.fixture(scope="module")
def bitflip_report():
    recipes = [
        ChaosRecipe(
            kind="bitflip", site="gemm", intensity=0.5, duration_s=0.4,
            seed=7, name="flip",
        )
    ]
    return run_chaos(recipes, SLOSpec(), seed=3, **FAST)


class TestBitflipSuite:
    def test_run_is_clean_and_reconciled(self, bitflip_report):
        report = bitflip_report
        assert report.ok, [b.to_dict() for b in report.breaches]
        assert report.reconciliation_diffs == []
        assert report.result.silent_wrong == 0

    def test_flips_are_injected_and_caught(self, bitflip_report):
        report = bitflip_report
        [outcome] = report.recipes
        assert outcome.injections > 0
        r = report.result
        # Every critical flip must surface through honest channels.
        assert r.detected + r.corrected + r.recomputed > 0

    def test_injections_land_in_chaos_telemetry(self):
        registry = MetricsRegistry()
        recipes = [
            ChaosRecipe(
                kind="bitflip", site="gemm", intensity=0.5, duration_s=0.3,
                seed=5, name="flip",
            )
        ]
        report = run_chaos(
            recipes, SLOSpec(), seed=4, registry=registry, **FAST
        )
        [outcome] = report.recipes
        assert counter_value(
            registry, "abft_chaos_injections_total",
            kind="bitflip", site="gemm",
        ) == outcome.injections


class TestQueueBurst:
    def test_saturation_rejects_honestly_and_reconciles(self):
        recipes = [
            ChaosRecipe(
                kind="queue_burst", site="admission", intensity=64.0,
                duration_s=0.3, name="burst",
            )
        ]
        # Saturation is the point: keep the latency/burn objectives out
        # of the way and assert only on honest accounting.
        slo = SLOSpec(
            p99_latency_s=5.0, error_budget=0.99, burn_rate_limit=1e6
        )
        report = run_chaos(
            recipes, slo, seed=6,
            serve_config=ServeConfig(max_queue_depth=8),
            **FAST,
        )
        r = report.result
        assert r.rejection_reasons.get("queue_full", 0) > 0
        assert report.reconciliation_diffs == []
        assert r.dropped == 0
        assert r.served + r.rejected == r.submitted
        assert report.ok, [b.to_dict() for b in report.breaches]


class TestBackendFailure:
    def test_dispatch_faults_ride_the_never_silent_fallback(self):
        recipes = [
            ChaosRecipe(
                kind="backend_failure", site="blocked", intensity=1.0,
                duration_s=0.4, name="kill-blocked",
            )
        ]
        report = run_chaos(recipes, SLOSpec(), seed=8, **FAST)
        [outcome] = report.recipes
        assert outcome.injections > 0  # probes hit the poisoned backend
        assert report.result.silent_wrong == 0
        assert report.ok, [b.to_dict() for b in report.breaches]


class TestStallBreach:
    def test_stall_past_the_ceiling_breaches_p99(self):
        recipes = [
            ChaosRecipe(
                kind="stage_stall", site="multiply", intensity=0.05,
                duration_s=0.4, name="tarpit",
            )
        ]
        slo = SLOSpec(p99_latency_s=0.005)
        report = run_chaos(recipes, slo, seed=9, **FAST)
        assert not report.ok
        assert any(b.slo == "p99_latency" for b in report.breaches)
        assert report.result.p99_s > slo.p99_latency_s


class TestReportWriter:
    def test_writes_dated_pair(self, bitflip_report, tmp_path):
        paths = bitflip_report.write(tmp_path, run_date="2026-08-08")
        payload = json.loads(
            (tmp_path / "VALIDATION_REPORT_2026-08-08.json").read_text()
        )
        assert payload["date"] == "2026-08-08"
        assert payload["ok"] is True
        assert payload["recipes"][0]["injections"] > 0
        md = (tmp_path / "VALIDATION_REPORT_2026-08-08.md").read_text()
        assert "# Chaos validation report — 2026-08-08" in md
        assert "**PASS**" in md
        assert set(paths) == {"json", "markdown"}


class TestArguments:
    def test_empty_suite_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one recipe"):
            run_chaos([], SLOSpec())
