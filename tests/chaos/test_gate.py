"""The ``chaos-slo`` CI gate: clean suites pass, forced breaches fail."""

import pytest

from repro.chaos import ChaosRecipe, SLOSpec, dump_recipes
from repro.cigate import chaos_slo_gate
from repro.telemetry import MetricsRegistry


def write_suite(tmp_path, recipes):
    path = tmp_path / "recipes.json"
    dump_recipes(recipes, path)
    return path


def gauge_value(registry, name, **labels):
    for row in registry.snapshot()[name]["values"]:
        if row["labels"] == labels:
            return row["value"]
    return None


@pytest.fixture
def clean_suite(tmp_path):
    return write_suite(
        tmp_path,
        [
            ChaosRecipe(
                kind="bitflip", site="gemm", intensity=0.5, duration_s=0.4,
                seed=7, name="flip",
            )
        ],
    )


@pytest.fixture
def stall_suite(tmp_path):
    return write_suite(
        tmp_path,
        [
            ChaosRecipe(
                kind="stage_stall", site="multiply", intensity=0.05,
                duration_s=0.4, name="tarpit",
            )
        ],
    )


class TestGate:
    def test_clean_suite_passes(self, clean_suite):
        registry = MetricsRegistry()
        result = chaos_slo_gate(
            recipes_path=clean_suite, seed=11, registry=registry
        )
        assert result.gate == "chaos-slo"
        assert result.passed, result.detail
        assert result.measured == 0.0  # zero breaches
        assert "accounting reconciled" in result.detail
        assert gauge_value(
            registry, "abft_ci_gate_chaos", quantity="injections"
        ) > 0
        assert gauge_value(
            registry, "abft_ci_gate_chaos", quantity="silent_wrong"
        ) == 0

    def test_forced_stall_past_ceiling_fails(self, stall_suite):
        # The ISSUE-mandated regression: a stall recipe pushing p99 past
        # the declared ceiling must fail the gate (nonzero CI exit).
        result = chaos_slo_gate(
            recipes_path=stall_suite,
            slo=SLOSpec(p99_latency_s=0.005),
            seed=12,
            registry=MetricsRegistry(),
        )
        assert not result.passed
        assert result.measured >= 1.0
        assert "p99_latency" in result.detail

    def test_report_dir_gets_the_dated_pair(self, clean_suite, tmp_path):
        out = tmp_path / "chaos-report"
        chaos_slo_gate(
            recipes_path=clean_suite,
            seed=13,
            registry=MetricsRegistry(),
            report_dir=out,
        )
        names = sorted(p.name for p in out.iterdir())
        assert len(names) == 2
        assert names[0].startswith("VALIDATION_REPORT_")
        assert names[0].endswith(".json")
        assert names[1].endswith(".md")
