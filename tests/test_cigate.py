"""CI gates: coverage/throughput pass clean and fail on injected regressions."""

from __future__ import annotations

import json

import pytest

from repro.cigate import (
    DEFAULT_COVERAGE_FLOOR,
    coverage_gate,
    default_gate_backends,
    fused_coverage_gate,
    model_coverage_gate,
    pipeline_coverage_gate,
    run_ci_gate,
    throughput_gate,
)
from repro.cli import main
from repro.errors import ConfigurationError
from repro.telemetry import MetricsRegistry


def tiny_baseline(tmp_path, engine_seconds, repeats=100):
    """A doctored BENCH_engine.json at a fast-to-benchmark size."""
    path = tmp_path / "BENCH_engine.json"
    path.write_text(
        json.dumps(
            {
                "size": 128,
                "block_size": 64,
                "p": 2,
                "repeats": repeats,
                "engine_seconds": engine_seconds,
            }
        )
    )
    return path


class TestCoverageGate:
    def test_passes_at_default_floor(self):
        reg = MetricsRegistry()
        result = coverage_gate(n=128, num_injections=80, registry=reg)
        assert result.passed
        assert result.gate == "coverage"
        assert result.measured >= DEFAULT_COVERAGE_FLOOR
        assert result.describe().startswith("[PASS] coverage:")

    def test_fails_when_floor_is_unreachable(self):
        # Injected regression: no campaign detects more than 100%.
        result = coverage_gate(
            floor=1.01, n=128, num_injections=80, registry=MetricsRegistry()
        )
        assert not result.passed
        assert result.threshold == 1.01
        assert result.describe().startswith("[FAIL] coverage:")

    def test_publishes_gauges(self):
        reg = MetricsRegistry()
        result = coverage_gate(n=128, num_injections=80, registry=reg)
        gauges = reg.gauge("abft_ci_gate_coverage", labelnames=("quantity",))
        assert gauges.labels(quantity="detection_rate").get() == result.measured
        assert gauges.labels(quantity="baseline_clean").get() == 1.0
        assert gauges.labels(quantity="critical_errors").get() > 0

    def test_publishes_per_backend_gauges(self):
        reg = MetricsRegistry()
        result = coverage_gate(n=128, num_injections=80, registry=reg)
        by_backend = reg.gauge(
            "abft_ci_gate_coverage_by_backend",
            labelnames=("backend", "quantity"),
        )
        assert (
            by_backend.labels(backend="numpy", quantity="detection_rate").get()
            == result.measured
        )

    def test_blocked_backend_gate(self):
        reg = MetricsRegistry()
        result = coverage_gate(
            n=128, num_injections=80, backend="blocked", registry=reg
        )
        assert result.gate == "coverage[blocked]"
        assert result.passed
        assert "backend 'blocked'" in result.detail
        by_backend = reg.gauge(
            "abft_ci_gate_coverage_by_backend",
            labelnames=("backend", "quantity"),
        )
        assert (
            by_backend.labels(
                backend="blocked", quantity="detection_rate"
            ).get()
            == result.measured
        )

    def test_unavailable_backend_fails_instead_of_remeasuring_numpy(self):
        result = coverage_gate(
            n=128, num_injections=80, backend="cupy", registry=MetricsRegistry()
        )
        if result.passed:  # pragma: no cover - only on a CUDA machine
            pytest.skip("cupy is available here")
        assert result.gate == "coverage[cupy]"
        assert "fell back" in result.detail


class TestPipelineCoverageGate:
    def test_passes_at_default_floor(self):
        reg = MetricsRegistry()
        result = pipeline_coverage_gate(
            n=128, num_injections=80, registry=reg
        )
        assert result.passed
        assert result.gate == "pipeline-coverage"
        assert result.measured >= DEFAULT_COVERAGE_FLOOR
        assert result.describe().startswith("[PASS] pipeline-coverage:")

    def test_fails_when_floor_is_unreachable(self):
        result = pipeline_coverage_gate(
            floor=1.01, n=128, num_injections=80, registry=MetricsRegistry()
        )
        assert not result.passed
        assert result.describe().startswith("[FAIL] pipeline-coverage:")

    def test_publishes_gauges(self):
        reg = MetricsRegistry()
        result = pipeline_coverage_gate(
            n=128, num_injections=80, registry=reg
        )
        gauges = reg.gauge(
            "abft_ci_gate_pipeline_coverage", labelnames=("quantity",)
        )
        assert (
            gauges.labels(quantity="detection_rate").get() == result.measured
        )
        assert gauges.labels(quantity="baseline_clean").get() == 1.0
        assert gauges.labels(quantity="pipelined_ran").get() == 1.0
        assert gauges.labels(quantity="critical_errors").get() > 0


class TestFusedCoverageGate:
    def test_passes_at_default_floor(self):
        reg = MetricsRegistry()
        result = fused_coverage_gate(n=128, num_injections=40, registry=reg)
        assert result.passed
        assert result.gate == "fused-coverage"
        assert result.measured >= DEFAULT_COVERAGE_FLOOR
        assert result.describe().startswith("[PASS] fused-coverage:")

    def test_fails_when_floor_is_unreachable(self):
        result = fused_coverage_gate(
            floor=1.01, n=128, num_injections=40, registry=MetricsRegistry()
        )
        assert not result.passed
        assert result.threshold == 1.01

    def test_publishes_gauges_including_early_abort_proof(self):
        reg = MetricsRegistry()
        result = fused_coverage_gate(n=128, num_injections=40, registry=reg)
        gauges = reg.gauge(
            "abft_ci_gate_fused_coverage", labelnames=("quantity",)
        )
        assert gauges.labels(quantity="detection_rate").get() == result.measured
        assert gauges.labels(quantity="baseline_clean").get() == 1.0
        assert gauges.labels(quantity="fused_ran").get() == 1.0
        assert gauges.labels(quantity="critical_errors").get() > 0
        # Every detection must have been an early abort (proven by the
        # tile scan stopping before the last tile), so the abort rate
        # equals the detection rate exactly.
        assert (
            gauges.labels(quantity="early_abort_rate").get() == result.measured
        )


class TestModelCoverageGate:
    def test_passes_at_default_floor(self):
        reg = MetricsRegistry()
        result = model_coverage_gate(
            trials_per_layer=2,
            clean_trials=1,
            latency_repeats=3,
            registry=reg,
        )
        assert result.passed
        assert result.gate == "model-coverage"
        assert result.measured >= DEFAULT_COVERAGE_FLOOR
        assert "false positives" in result.detail
        assert result.describe().startswith("[PASS] model-coverage:")

    def test_fails_when_floor_is_unreachable(self):
        result = model_coverage_gate(
            floor=1.01,
            trials_per_layer=2,
            clean_trials=1,
            latency_repeats=3,
            registry=MetricsRegistry(),
        )
        assert not result.passed
        assert result.threshold == 1.01

    def test_publishes_gauges(self):
        reg = MetricsRegistry()
        result = model_coverage_gate(
            trials_per_layer=2,
            clean_trials=1,
            latency_repeats=3,
            registry=reg,
        )
        gauges = reg.gauge(
            "abft_ci_gate_model_coverage", labelnames=("quantity",)
        )
        assert gauges.labels(quantity="detection_rate").get() == result.measured
        assert gauges.labels(quantity="false_positives").get() == 0.0
        assert gauges.labels(quantity="clean_runs").get() == 2.0
        # fp32 MLP + fp16 attention, both swept at every layer.
        assert gauges.labels(quantity="protected_trials").get() > 0
        assert gauges.labels(quantity="plan_coverage").get() >= (
            DEFAULT_COVERAGE_FLOOR
        )
        # The roofline claim: the mixed plan must beat all-full outright.
        assert gauges.labels(quantity="latency_ratio").get() < 1.0


class TestThroughputGate:
    def test_passes_against_committed_baseline(self):
        # BENCH_engine.json at the repo root is the real CI contract.
        result = throughput_gate(repeats=3, registry=MetricsRegistry())
        assert result.passed
        assert result.measured <= result.threshold
        assert "ms/call" in result.detail

    def test_fails_against_doctored_fast_baseline(self, tmp_path):
        # Injected regression: the baseline claims 1 microsecond per call.
        baseline = tiny_baseline(tmp_path, engine_seconds=1e-4)
        result = throughput_gate(
            repeats=3, baseline_path=baseline, registry=MetricsRegistry()
        )
        assert not result.passed
        assert result.describe().startswith("[FAIL] throughput:")

    def test_passes_against_generous_baseline(self, tmp_path):
        baseline = tiny_baseline(tmp_path, engine_seconds=1000.0)
        result = throughput_gate(
            repeats=3, baseline_path=baseline, registry=MetricsRegistry()
        )
        assert result.passed

    def test_missing_baseline_is_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="baseline"):
            throughput_gate(
                baseline_path=tmp_path / "nope.json", registry=MetricsRegistry()
            )


class TestRunCiGate:
    def test_default_backends_start_with_numpy(self):
        backends = default_gate_backends()
        assert backends[0] == "numpy"
        assert "cupy" not in backends  # non-deterministic, never auto-gated

    def test_clean_quick_run_exits_zero(self):
        # chaos=False: the chaos-slo gate has its own live-traffic suite
        # in tests/chaos/test_gate.py; this also pins the skip behaviour.
        reg = MetricsRegistry()
        code, results = run_ci_gate(quick=True, chaos=False, registry=reg)
        assert code == 0
        expected = [
            "coverage" if b == "numpy" else f"coverage[{b}]"
            for b in default_gate_backends()
        ] + ["pipeline-coverage", "fused-coverage", "model-coverage", "throughput"]
        assert [r.gate for r in results] == expected
        assert "chaos-slo" not in [r.gate for r in results]
        assert all(r.passed for r in results)
        pass_gauge = reg.gauge("abft_ci_gate_pass", labelnames=("gate",))
        assert pass_gauge.labels(gate="coverage").get() == 1.0
        assert pass_gauge.labels(gate="throughput").get() == 1.0

    def test_explicit_backend_list(self, tmp_path):
        reg = MetricsRegistry()
        code, results = run_ci_gate(
            quick=True,
            chaos=False,
            backends=("numpy", "blocked"),
            baseline_path=tiny_baseline(tmp_path, engine_seconds=1000.0),
            registry=reg,
        )
        assert code == 0
        assert [r.gate for r in results] == [
            "coverage",
            "coverage[blocked]",
            "pipeline-coverage",
            "fused-coverage",
            "model-coverage",
            "throughput",
        ]

    def test_injected_regression_exits_nonzero(self, tmp_path):
        reg = MetricsRegistry()
        code, results = run_ci_gate(
            quick=True,
            chaos=False,
            coverage_floor=1.01,
            backends=("numpy",),
            baseline_path=tiny_baseline(tmp_path, engine_seconds=1e-4),
            registry=reg,
        )
        assert code == 1
        assert not any(r.passed for r in results)
        pass_gauge = reg.gauge("abft_ci_gate_pass", labelnames=("gate",))
        assert pass_gauge.labels(gate="coverage").get() == 0.0
        assert pass_gauge.labels(gate="throughput").get() == 0.0


class TestCliCommand:
    @pytest.fixture(autouse=True)
    def fresh_global_registry(self):
        # main() runs against the process-global registry; the chaos gate
        # drives real serve traffic through it, so isolate these tests
        # from CLI tests that assert absolute global-counter values.
        from repro.telemetry import get_registry, set_registry

        previous = get_registry()
        set_registry(MetricsRegistry())
        yield
        set_registry(previous)

    def test_quick_gate_exits_zero(self, capsys):
        assert main(["ci-gate", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "[PASS] coverage:" in out
        assert "[PASS] pipeline-coverage:" in out
        assert "[PASS] fused-coverage:" in out
        assert "[PASS] throughput:" in out
        assert "[PASS] chaos-slo:" in out
        assert "all gates passed" in out

    def test_impossible_floor_exits_nonzero(self, capsys):
        assert main(
            ["ci-gate", "--quick", "--coverage-floor", "1.01", "--skip-chaos"]
        ) == 1
        out = capsys.readouterr().out
        assert "[FAIL] coverage:" in out
        assert "GATE FAILURE" in out

    def test_telemetry_out_records_the_gates(self, tmp_path, capsys):
        out_path = tmp_path / "telemetry.jsonl"
        assert main(
            ["--telemetry-out", str(out_path), "ci-gate", "--quick", "--skip-chaos"]
        ) == 0
        capsys.readouterr()
        lines = [json.loads(line) for line in out_path.read_text().splitlines()]
        span_paths = [ev["path"] for ev in lines if ev["type"] == "span"]
        assert "ci_gate.coverage" in span_paths
        assert "ci_gate.pipeline_coverage" in span_paths
        assert "ci_gate.fused_coverage" in span_paths
        assert "ci_gate.model_coverage" in span_paths
        assert "ci_gate.throughput" in span_paths
        snapshots = [ev for ev in lines if ev["type"] == "snapshot"]
        assert len(snapshots) == 1
        metrics = snapshots[0]["metrics"]
        assert "abft_ci_gate_pass" in metrics
        assert "abft_campaign_injections_total" in metrics
        assert "abft_engine_calls_total" in metrics
