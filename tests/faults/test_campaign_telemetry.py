"""Campaign counters: per-injection labels and outcome accounting."""

from __future__ import annotations

import pytest

from repro.faults.campaign import CampaignConfig, FaultCampaign, _detection_outcome
from repro.telemetry import InMemorySink, MetricsRegistry, NULL_REGISTRY
from repro.workloads import SUITE_UNIT


@pytest.fixture
def campaign_config() -> CampaignConfig:
    return CampaignConfig(
        n=128, suite=SUITE_UNIT, num_injections=40, block_size=64, p=2, seed=7
    )


class TestOutcomeLabel:
    def test_mapping(self):
        assert _detection_outcome(True, True) == "detected"
        assert _detection_outcome(False, True) == "missed"
        assert _detection_outcome(True, False) == "false_positive"
        assert _detection_outcome(False, False) == "tolerated"


class TestCampaignCounters:
    def test_injection_totals_match_records(self, campaign_config):
        reg = MetricsRegistry()
        campaign = FaultCampaign(campaign_config, registry=reg)
        result = campaign.run()

        injections = reg.counter(
            "abft_campaign_injections_total", labelnames=("site",)
        )
        total = sum(child.get() for _, child in injections.children())
        assert total == campaign_config.num_injections == len(result.records)

        outcomes = reg.counter(
            "abft_campaign_outcomes_total",
            labelnames=("scheme", "site", "severity", "outcome", "backend"),
        )
        per_scheme: dict[str, float] = {}
        for (scheme, _site, _sev, _out, _bk), child in outcomes.children():
            per_scheme[scheme] = per_scheme.get(scheme, 0.0) + child.get()
        # One outcome sample per (injection, scheme).
        assert per_scheme == {
            "aabft": float(campaign_config.num_injections),
            "sea": float(campaign_config.num_injections),
        }

    def test_detected_plus_missed_equals_critical(self, campaign_config):
        reg = MetricsRegistry()
        result = FaultCampaign(campaign_config, registry=reg).run()
        outcomes = reg.counter(
            "abft_campaign_outcomes_total",
            labelnames=("scheme", "site", "severity", "outcome", "backend"),
        )
        critical_counted = sum(
            child.get()
            for (scheme, _site, severity, outcome, _bk), child in outcomes.children()
            if scheme == "aabft"
            and severity == "critical"
            and outcome in ("detected", "missed")
        )
        assert critical_counted == result.num_critical()
        detected = sum(
            child.get()
            for (scheme, _site, _sev, outcome, _bk), child in outcomes.children()
            if scheme == "aabft" and outcome == "detected"
        )
        rate = result.detection_rate("aabft")
        assert detected == round(rate * result.num_critical())

    def test_spans_stream_to_attached_sink(self, campaign_config):
        reg = MetricsRegistry()
        sink = InMemorySink()
        reg.attach(sink)
        FaultCampaign(campaign_config, registry=reg).run()
        names = [e["name"] for e in sink.events if e["type"] == "span"]
        assert names == ["campaign.prepare", "campaign.run"]

    def test_null_registry_runs_unmetered(self, campaign_config):
        campaign = FaultCampaign(campaign_config, registry=NULL_REGISTRY)
        result = campaign.run()
        assert len(result.records) == campaign_config.num_injections
        assert NULL_REGISTRY.snapshot() == {}

    def test_metering_does_not_change_results(self, campaign_config):
        metered = FaultCampaign(
            campaign_config, registry=MetricsRegistry()
        ).run()
        unmetered = FaultCampaign(campaign_config, registry=NULL_REGISTRY).run()
        assert len(metered.records) == len(unmetered.records)
        for left, right in zip(metered.records, unmetered.records):
            assert left.delta == right.delta
            assert left.detected == right.detected
            assert left.classification.error_class is right.classification.error_class
