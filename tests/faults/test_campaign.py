"""Fault-injection campaigns: setup, locality optimisation, rates."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults.campaign import CampaignConfig, FaultCampaign
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultSite, FaultSpec
from repro.fp.errorvec import ErrorVector
from repro.workloads import SUITE_UNIT


@pytest.fixture(scope="module")
def prepared_campaign():
    config = CampaignConfig(
        n=128, suite=SUITE_UNIT, num_injections=10, block_size=64, seed=11
    )
    campaign = FaultCampaign(config)
    campaign.prepare()
    return campaign


class TestConfig:
    def test_size_must_be_block_multiple(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(n=100, suite=SUITE_UNIT, num_injections=1)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown schemes"):
            CampaignConfig(
                n=128, suite=SUITE_UNIT, num_injections=1, schemes=("tmr",)
            )

    def test_positive_injections(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(n=128, suite=SUITE_UNIT, num_injections=0)


class TestPreparation:
    def test_fault_free_passes_all_schemes(self, prepared_campaign):
        """No false positives on the prepared workload — precondition for
        meaningful detection rates."""
        assert prepared_campaign.fault_free_pass == {"aabft": True, "sea": True}

    def test_epsilon_arrays_have_check_shapes(self, prepared_campaign):
        c = prepared_campaign
        assert c.col_eps["aabft"].shape == (2, 130)
        assert c.row_eps["aabft"].shape == (130, 2)

    def test_sea_bounds_looser_everywhere(self, prepared_campaign):
        c = prepared_campaign
        assert np.all(c.col_eps["sea"] > c.col_eps["aabft"])
        assert np.all(c.row_eps["sea"] > c.row_eps["aabft"])


class TestSingleInjection:
    def _spec(self, site, bit, k=0):
        return FaultSpec(
            sm_id=0,
            site=site,
            module_row=5,
            module_col=6,
            error_vector=ErrorVector(
                mask=1 << bit, field="mantissa", bit_indices=(bit,)
            ),
            k_injection=k,
        )

    def test_high_bit_merge_fault_is_critical_and_detected(self, prepared_campaign):
        record = prepared_campaign.inject_one(self._spec(FaultSite.MERGE_ADD, 51))
        assert record.is_critical
        assert record.detected["aabft"]
        assert abs(record.delta) > 1e-6

    def test_low_bit_fault_is_benign(self, prepared_campaign):
        record = prepared_campaign.inject_one(
            self._spec(FaultSite.INNER_ADD, 0, k=127)
        )
        assert not record.is_critical
        assert not record.detected["aabft"]  # below tolerance by design

    def test_delta_matches_local_replay(self, prepared_campaign):
        """The campaign's locality optimisation must agree with a full
        sequential replay of the affected element."""
        from repro.kernels.matmul import sequential_inner_product

        spec = self._spec(FaultSite.INNER_MUL, 40, k=64)
        record = prepared_campaign.inject_one(spec)
        c = prepared_campaign
        r, q = record.encoded_row, record.encoded_col
        injector = FaultInjector(spec, np.random.default_rng(1))
        injector.resolve_direct()
        clean = sequential_inner_product(c.a_cc[r], c.b_rc[:, q])
        faulty = sequential_inner_product(c.a_cc[r], c.b_rc[:, q], injector)
        assert record.delta == faulty - clean

    def test_injection_before_prepare_raises(self):
        campaign = FaultCampaign(
            CampaignConfig(n=128, suite=SUITE_UNIT, num_injections=1)
        )
        with pytest.raises(RuntimeError, match="prepare"):
            campaign.inject_one(self._spec(FaultSite.MERGE_ADD, 51))


class TestFullRun:
    def test_run_produces_records_and_rates(self):
        config = CampaignConfig(
            n=128, suite=SUITE_UNIT, num_injections=90, block_size=64, seed=7
        )
        result = FaultCampaign(config).run()
        assert len(result.records) == 90
        assert result.num_critical() > 20
        rate_aabft = result.detection_rate("aabft")
        rate_sea = result.detection_rate("sea")
        assert 0.0 <= rate_sea <= rate_aabft <= 1.0
        assert rate_aabft > 0.7

    def test_summary_renders(self):
        config = CampaignConfig(
            n=128, suite=SUITE_UNIT, num_injections=30, block_size=64, seed=8
        )
        result = FaultCampaign(config).run()
        text = result.summary()
        assert "inner_mul" in text
        assert "aabft" in text

    def test_exponent_faults_always_detected(self):
        """Paper Section VI-C: all sign/exponent injections were detected."""
        config = CampaignConfig(
            n=128,
            suite=SUITE_UNIT,
            num_injections=60,
            block_size=64,
            fields=("exponent", "sign"),
            seed=9,
        )
        result = FaultCampaign(config).run()
        assert result.detection_rate("aabft") == 1.0
        assert result.detection_rate("sea") == 1.0

    def test_site_filter(self):
        config = CampaignConfig(
            n=128,
            suite=SUITE_UNIT,
            num_injections=40,
            block_size=64,
            sites=(FaultSite.MERGE_ADD,),
            seed=10,
        )
        result = FaultCampaign(config).run()
        assert all(r.spec.site is FaultSite.MERGE_ADD for r in result.records)
        assert result.num_critical(FaultSite.INNER_MUL) == 0


class TestBackendDispatch:
    """Campaigns can run the reference product on any registered backend;
    the injection sites then live inside backend-dispatched tile compute."""

    def base_kwargs(self, **extra):
        kwargs = dict(
            n=128, suite=SUITE_UNIT, num_injections=8, block_size=64, seed=11
        )
        kwargs.update(extra)
        return kwargs

    def test_blocked_backend_matches_numpy_at_same_tile(self):
        ref = FaultCampaign(
            CampaignConfig(**self.base_kwargs(gemm_tile=64))
        )
        ref.prepare()
        blocked = FaultCampaign(
            CampaignConfig(**self.base_kwargs(backend="blocked"))
        )
        blocked.prepare()
        assert blocked.backend_used == "blocked"
        assert blocked.backend_fallback is None
        # blocked defaults its tile to block_size=64: bytes must agree.
        assert blocked.c_fc.tobytes() == ref.c_fc.tobytes()
        # And the injected outcomes are byte-for-byte the same campaign.
        ref_result = FaultCampaign(
            CampaignConfig(**self.base_kwargs(gemm_tile=64))
        ).run()
        blocked_result = FaultCampaign(
            CampaignConfig(**self.base_kwargs(backend="blocked"))
        ).run()
        assert [r.detected for r in blocked_result.records] == [
            r.detected for r in ref_result.records
        ]

    def test_unavailable_backend_records_fallback(self):
        campaign = FaultCampaign(
            CampaignConfig(**self.base_kwargs(backend="cupy"))
        )
        campaign.prepare()
        if campaign.backend_fallback is None:  # pragma: no cover - CUDA host
            pytest.skip("cupy is available here")
        assert campaign.backend_used == "numpy"
        assert "cupy" in campaign.backend_fallback

    def test_backend_config_validation(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(**self.base_kwargs(backend=""))
        with pytest.raises(ConfigurationError):
            CampaignConfig(**self.base_kwargs(gemm_tile=0))
