"""Fault specifications, the injector, and campaign sampling."""

import numpy as np
import pytest

from repro.errors import FaultSpecError
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultSite, FaultSpec
from repro.faults.sampling import ALL_SITES, FaultSampler
from repro.fp.errorvec import ErrorVector
from repro.gpusim.device import K20C
from repro.gpusim.kernel import Dim3, LaunchConfig
from repro.gpusim.scheduler import BlockScheduler

VEC = ErrorVector(mask=1 << 30, field="mantissa", bit_indices=(30,))


class TestFaultSpec:
    def test_valid_spec(self):
        spec = FaultSpec(
            sm_id=3, site=FaultSite.INNER_MUL, module_row=1, module_col=2,
            error_vector=VEC, k_injection=10,
        )
        assert "inner_mul" in spec.describe()
        assert "SM3" in spec.describe()

    def test_validation(self):
        with pytest.raises(FaultSpecError):
            FaultSpec(-1, FaultSite.INNER_MUL, 0, 0, VEC)
        with pytest.raises(FaultSpecError):
            FaultSpec(0, FaultSite.INNER_MUL, -1, 0, VEC)
        with pytest.raises(FaultSpecError):
            FaultSpec(0, FaultSite.INNER_MUL, 0, 0, VEC, k_injection=-1)


class TestInjector:
    def _assignments(self, blocks=26):
        scheduler = BlockScheduler(K20C)
        return scheduler.assign(LaunchConfig(grid=Dim3(x=blocks), block=Dim3(x=1)))

    def test_resolve_picks_block_on_target_sm(self, rng):
        spec = FaultSpec(4, FaultSite.INNER_ADD, 2, 3, VEC, 5)
        injector = FaultInjector(spec, rng)
        act = injector.resolve(self._assignments(), (8, 8))
        assert act.linear_block_index % 13 == 4
        assert act.element_row == 2
        assert act.element_col == 3

    def test_module_offsets_wrap_to_block(self, rng):
        spec = FaultSpec(0, FaultSite.INNER_ADD, 10, 11, VEC)
        injector = FaultInjector(spec, rng)
        act = injector.resolve(self._assignments(), (4, 4))
        assert act.element_row == 2
        assert act.element_col == 3

    def test_strikes_only_at_k_injection(self, rng):
        spec = FaultSpec(0, FaultSite.INNER_ADD, 0, 0, VEC, k_injection=7)
        injector = FaultInjector(spec, rng)
        injector.resolve_direct()
        assert injector.strikes(FaultSite.INNER_ADD, 7)
        assert not injector.strikes(FaultSite.INNER_ADD, 6)
        assert not injector.strikes(FaultSite.INNER_MUL, 7)
        assert not injector.strikes(FaultSite.MERGE_ADD)

    def test_merge_strike_ignores_k(self, rng):
        spec = FaultSpec(0, FaultSite.MERGE_ADD, 0, 0, VEC, k_injection=3)
        injector = FaultInjector(spec, rng)
        injector.resolve_direct()
        assert injector.strikes(FaultSite.MERGE_ADD)
        assert injector.strikes(FaultSite.MERGE_ADD, k=None)

    def test_unresolved_never_strikes(self, rng):
        injector = FaultInjector(
            FaultSpec(0, FaultSite.MERGE_ADD, 0, 0, VEC), rng
        )
        assert not injector.strikes(FaultSite.MERGE_ADD)
        assert not injector.targets_block(0)

    def test_apply_records_activation(self, rng):
        injector = FaultInjector(
            FaultSpec(0, FaultSite.MERGE_ADD, 0, 0, VEC), rng
        )
        injector.resolve_direct()
        out = injector.apply(1.0)
        assert out != 1.0
        assert injector.activation.fired
        assert injector.activation.original_value == 1.0
        assert injector.activation.faulty_value == out


class TestSampler:
    def _sampler(self, **kw):
        defaults = dict(
            num_sms=13, inner_dim=256, block_rows=65, block_cols=65
        )
        defaults.update(kw)
        return FaultSampler(**defaults)

    def test_sample_respects_ranges(self, rng):
        sampler = self._sampler()
        for spec in sampler.sample_many(200, rng):
            assert 0 <= spec.sm_id < 13
            assert 0 <= spec.k_injection < 256
            assert 0 <= spec.module_row < 65
            assert spec.site in ALL_SITES
            assert spec.error_vector.field == "mantissa"
            assert spec.error_vector.num_flips == 1

    def test_all_sites_drawn(self, rng):
        sampler = self._sampler()
        sites = {s.site for s in sampler.sample_many(100, rng)}
        assert sites == set(ALL_SITES)

    def test_multi_flip_sampling(self, rng):
        sampler = self._sampler(num_flips=3)
        assert all(
            s.error_vector.num_flips == 3 for s in sampler.sample_many(20, rng)
        )

    def test_field_selection(self, rng):
        sampler = self._sampler(fields=("sign",))
        assert all(
            s.error_vector.field == "sign" for s in sampler.sample_many(10, rng)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            self._sampler(num_sms=0)
        with pytest.raises(ValueError):
            self._sampler(sites=())

    def test_deterministic_given_seed(self):
        sampler = self._sampler()
        s1 = sampler.sample_many(10, np.random.default_rng(5))
        s2 = sampler.sample_many(10, np.random.default_rng(5))
        assert [s.describe() for s in s1] == [s.describe() for s in s2]
