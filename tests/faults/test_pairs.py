"""Double-fault injection (the PairInjectionRecord extension)."""

import pytest

from repro.faults.campaign import CampaignConfig, FaultCampaign
from repro.faults.model import FaultSite, FaultSpec
from repro.fp.errorvec import ErrorVector
from repro.workloads import SUITE_UNIT


@pytest.fixture(scope="module")
def campaign():
    config = CampaignConfig(
        n=128, suite=SUITE_UNIT, num_injections=1, block_size=64, seed=13
    )
    c = FaultCampaign(config)
    c.prepare()
    return c


def _spec(bit, sm=0, row=3, col=4, k=10, site=FaultSite.MERGE_ADD):
    return FaultSpec(
        sm_id=sm,
        site=site,
        module_row=row,
        module_col=col,
        error_vector=ErrorVector(mask=1 << bit, field="mantissa", bit_indices=(bit,)),
        k_injection=k,
    )


class TestInjectPair:
    def test_two_distant_criticals_detected(self, campaign):
        pair = campaign.inject_pair(
            _spec(51, sm=0, row=1, col=2), _spec(51, sm=3, row=5, col=6)
        )
        assert pair.any_critical
        assert pair.detected["aabft"]
        assert pair.detected["sea"]

    def test_same_block_flag(self, campaign):
        # SMs 0..3 hold one block each at n=128/BS=64 (4 blocks): same SM
        # means same block.
        pair = campaign.inject_pair(
            _spec(51, sm=2, row=1, col=2), _spec(50, sm=2, row=7, col=8)
        )
        assert pair.same_block
        distant = campaign.inject_pair(
            _spec(51, sm=0, row=1, col=2), _spec(50, sm=3, row=7, col=8)
        )
        assert not distant.same_block

    def test_two_benign_faults_pass(self, campaign):
        pair = campaign.inject_pair(
            _spec(0, sm=0, k=127), _spec(0, sm=1, k=127)
        )
        assert not pair.any_critical
        assert not pair.detected["aabft"]

    def test_aliasing_compounds_in_shared_comparison(self, campaign):
        """Two faults on the same element: the column comparison sees the
        sum of the deltas; with identical specs the deltas compound rather
        than cancel, so detection holds."""
        spec = _spec(51, sm=1, row=2, col=3)
        pair = campaign.inject_pair(spec, spec)
        single = campaign.inject_one(spec)
        assert pair.first.encoded_row == pair.second.encoded_row or True
        assert pair.detected["aabft"] >= single.detected["aabft"]

    def test_cancellation_is_representable(self, campaign):
        """Manufactured exact cancellation in the shared column comparison:
        fold +delta and -delta into the same key and verify the combined
        detection logic sees a net-zero adjustment (the documented ABFT
        aliasing escape, exercised directly on the fold)."""
        rows, cols = campaign.row_layout, campaign.col_layout
        rec = campaign.inject_one(_spec(51, sm=1, row=2, col=3))
        blk_row = rec.encoded_row // rows.stride
        c = rec.encoded_col
        base = campaign.col_diff[blk_row, c]
        eps = campaign.col_eps["aabft"][blk_row, c]
        # delta and its negation cancel: the comparison stays clean even
        # though |delta| alone would be far beyond eps.
        assert abs(base + rec.delta - rec.delta) <= eps
        assert abs(rec.delta) > eps

    def test_requires_prepare(self):
        config = CampaignConfig(
            n=128, suite=SUITE_UNIT, num_injections=1, block_size=64, seed=14
        )
        with pytest.raises(RuntimeError, match="prepare"):
            FaultCampaign(config).inject_pair(_spec(51), _spec(50))

    def test_run_pairs_count(self, campaign):
        records = campaign.run_pairs(7)
        assert len(records) == 7
        assert all(r.detected.keys() == {"aabft", "sea"} for r in records)
