"""Nested timing spans: paths, histogram landing, disabled path."""

from __future__ import annotations

import threading

import pytest

from repro.telemetry import (
    NULL_REGISTRY,
    InMemorySink,
    MetricsRegistry,
    SPAN_HISTOGRAM,
    current_span,
    span,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestNesting:
    def test_paths_nest_and_unwind(self, registry):
        sink = InMemorySink()
        registry.attach(sink)
        with span("a", registry=registry) as outer:
            assert current_span() is outer
            with span("b", registry=registry) as inner:
                assert inner.path == "a/b"
                assert inner.depth == 1
        assert current_span() is None
        # Children close before parents in the event stream.
        assert [e["path"] for e in sink.events] == ["a/b", "a"]

    def test_sibling_spans_share_parent_path(self, registry):
        sink = InMemorySink()
        registry.attach(sink)
        with span("root", registry=registry):
            with span("x", registry=registry):
                pass
            with span("y", registry=registry):
                pass
        assert [e["path"] for e in sink.events] == ["root/x", "root/y", "root"]

    def test_annotate_adds_event_labels(self, registry):
        sink = InMemorySink()
        registry.attach(sink)
        with span("work", registry=registry) as sp:
            sp.annotate(items=4)
        assert sink.events[0]["labels"] == {"items": 4}


class TestRecording:
    def test_duration_lands_in_histogram(self, registry):
        with span("stage", registry=registry):
            pass
        fam = registry.histogram(SPAN_HISTOGRAM, labelnames=("span",))
        child = fam.labels(span="stage")
        assert child.count == 1
        assert child.sum >= 0.0

    def test_exception_still_records(self, registry):
        sink = InMemorySink()
        registry.attach(sink)
        with pytest.raises(RuntimeError):
            with span("boom", registry=registry):
                raise RuntimeError("inner failure")
        assert [e["name"] for e in sink.events] == ["boom"]

    def test_span_sets_seconds_on_exit(self, registry):
        with span("timed", registry=registry) as sp:
            assert sp.seconds is None
        assert sp.seconds is not None and sp.seconds >= 0.0


class TestDisabled:
    def test_null_registry_yields_none(self):
        with span("ignored", registry=NULL_REGISTRY) as sp:
            assert sp is None
        assert current_span() is None

    def test_disabled_span_leaves_no_state(self):
        reg = MetricsRegistry(enabled=False)
        with span("ignored", registry=reg):
            pass
        assert reg.snapshot() == {}


class TestThreads:
    def test_span_stacks_are_per_thread(self, registry):
        seen = {}

        def worker():
            with span("thread-span", registry=registry) as sp:
                seen["child_parentless"] = sp.path == "thread-span"

        with span("main-span", registry=registry):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # The worker thread must not have inherited main's span as parent.
        assert seen["child_parentless"] is True
