"""MetricsRegistry: counters, gauges, histograms, labels, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    NULL_REGISTRY,
    MetricsRegistry,
    get_registry,
    set_registry,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_get(self, registry):
        c = registry.counter("requests_total", "help text")
        c.inc()
        c.inc(2.5)
        assert c.get() == 3.5

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("neg_total")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_labelled_children_are_independent(self, registry):
        fam = registry.counter("by_site_total", labelnames=("site",))
        fam.labels(site="inner_mul").inc(3)
        fam.labels(site="inner_add").inc(5)
        assert fam.labels(site="inner_mul").get() == 3
        assert fam.labels(site="inner_add").get() == 5

    def test_same_labels_same_child(self, registry):
        fam = registry.counter("shared_total", labelnames=("k",))
        assert fam.labels(k="x") is fam.labels(k="x")

    def test_wrong_label_names_rejected(self, registry):
        fam = registry.counter("strict_total", labelnames=("site",))
        with pytest.raises(ConfigurationError):
            fam.labels(wrong="x")

    def test_labelled_family_rejects_bare_inc(self, registry):
        fam = registry.counter("labelled_total", labelnames=("site",))
        with pytest.raises(ConfigurationError):
            fam.inc()


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.get() == 7


class TestHistogram:
    def test_bucket_boundaries_are_le(self, registry):
        h = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        h.observe(0.1)   # == first bound -> first bucket (le semantics)
        h.observe(0.5)
        h.observe(2.0)   # overflow
        snap = h.get()
        assert snap["buckets"][0.1] == 1
        assert snap["buckets"][1.0] == 1
        assert snap["overflow"] == 1
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(2.6)

    def test_bad_buckets_rejected(self, registry):
        with pytest.raises(ConfigurationError):
            registry.histogram("bad", buckets=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("empty", buckets=())


class TestRegistration:
    def test_redeclaration_is_idempotent(self, registry):
        a = registry.counter("twice_total", "first")
        b = registry.counter("twice_total", "second")
        assert a is b

    def test_kind_conflict_rejected(self, registry):
        registry.counter("conflict")
        with pytest.raises(ConfigurationError):
            registry.gauge("conflict")

    def test_label_conflict_rejected(self, registry):
        registry.counter("labels_total", labelnames=("a",))
        with pytest.raises(ConfigurationError):
            registry.counter("labels_total", labelnames=("b",))

    def test_reset_zeroes_values(self, registry):
        c = registry.counter("resettable_total")
        c.inc(7)
        registry.reset()
        assert c.get() == 0.0


class TestSnapshot:
    def test_snapshot_structure(self, registry):
        registry.counter("c_total", "a counter", ("x",)).labels(x="1").inc(4)
        registry.gauge("g").set(2.5)
        snap = registry.snapshot()
        assert snap["c_total"]["type"] == "counter"
        assert snap["c_total"]["values"] == [
            {"labels": {"x": "1"}, "value": 4.0}
        ]
        assert snap["g"]["values"][0]["value"] == 2.5


class TestDisabled:
    def test_null_registry_noops(self):
        c = NULL_REGISTRY.counter("ignored_total")
        c.inc(5)
        assert c.get() == 0.0
        NULL_REGISTRY.histogram("ignored_seconds").observe(1.0)
        NULL_REGISTRY.gauge("ignored").labels().set(3)
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.prometheus_text() == ""

    def test_disabled_registry_drops_events(self):
        reg = MetricsRegistry(enabled=False)
        events = []

        class Sink:
            def emit(self, event):
                events.append(event)

        reg.attach(Sink())
        reg.emit({"type": "span"})
        assert events == []


class TestDefaultRegistry:
    def test_get_set_roundtrip(self):
        original = get_registry()
        replacement = MetricsRegistry()
        try:
            previous = set_registry(replacement)
            assert previous is original
            assert get_registry() is replacement
        finally:
            set_registry(original)

    def test_set_rejects_non_registry(self):
        with pytest.raises(ConfigurationError):
            set_registry(object())


class TestThreadSafety:
    def test_concurrent_increments_are_exact(self, registry):
        fam = registry.counter("hammer_total", labelnames=("worker",))
        hist = registry.histogram("hammer_seconds", buckets=(0.5, 1.5))
        barrier = threading.Barrier(8)

        def hammer(worker: int) -> None:
            child = fam.labels(worker=str(worker % 2))
            barrier.wait()
            for _ in range(2000):
                child.inc()
                hist.observe(1.0)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert fam.labels(worker="0").get() == 8000
        assert fam.labels(worker="1").get() == 8000
        assert hist.count == 16000
        assert hist.get()["buckets"][1.5] == 16000
