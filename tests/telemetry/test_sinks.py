"""Sinks: in-memory capture, JSON-lines round-trip, Prometheus exposition."""

from __future__ import annotations

import json

from repro.telemetry import (
    InMemorySink,
    JsonLinesSink,
    MetricsRegistry,
    PrometheusTextSink,
    span,
)


class TestInMemorySink:
    def test_collects_emitted_events(self):
        reg = MetricsRegistry()
        sink = InMemorySink()
        reg.attach(sink)
        reg.emit({"type": "custom", "x": 1})
        assert sink.events == [{"type": "custom", "x": 1}]
        sink.clear()
        assert sink.events == []

    def test_detach_stops_delivery(self):
        reg = MetricsRegistry()
        sink = InMemorySink()
        reg.attach(sink)
        reg.detach(sink)
        reg.emit({"type": "custom"})
        assert sink.events == []


class TestJsonLinesSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        reg = MetricsRegistry()
        with JsonLinesSink(path) as sink:
            reg.attach(sink)
            with span("outer", registry=reg):
                with span("inner", registry=reg, k=3):
                    pass
            reg.counter("events_total").inc(2)
            reg.write_snapshot()
            reg.detach(sink)

        lines = [json.loads(line) for line in path.read_text().splitlines()]
        spans = [ev for ev in lines if ev["type"] == "span"]
        assert [s["path"] for s in spans] == ["outer/inner", "outer"]
        assert spans[0]["labels"] == {"k": 3}
        assert all(s["seconds"] >= 0.0 for s in spans)

        snapshot = [ev for ev in lines if ev["type"] == "snapshot"]
        assert len(snapshot) == 1
        metrics = snapshot[0]["metrics"]
        assert metrics["events_total"]["values"][0]["value"] == 2.0
        # The span histogram made it into the snapshot too.
        assert "abft_span_seconds" in metrics

    def test_emit_after_close_is_safe(self, tmp_path):
        sink = JsonLinesSink(tmp_path / "t.jsonl")
        sink.close()
        sink.emit({"type": "late"})  # must not raise


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("runs_total", "Total runs", ("site",)).labels(
            site="inner_add"
        ).inc(3)
        reg.gauge("depth", "Current depth").set(2.0)
        text = reg.prometheus_text()
        assert "# HELP runs_total Total runs" in text
        assert "# TYPE runs_total counter" in text
        assert 'runs_total{site="inner_add"} 3.0' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2.0" in text
        assert text.endswith("\n")

    def test_histogram_exposition_is_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "Latency", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            h.observe(value)
        text = reg.prometheus_text()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1.0"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text
        assert "lat_seconds_sum 5.55" in text

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("esc_total", labelnames=("v",)).labels(
            v='quo"te\\slash\nline'
        ).inc()
        text = reg.prometheus_text()
        assert r'esc_total{v="quo\"te\\slash\nline"} 1.0' in text

    def test_text_sink_exports_atomically(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("x_total").inc()
        sink = PrometheusTextSink(tmp_path / "metrics.prom")
        out = sink.export(reg)
        assert out.read_text() == reg.prometheus_text()
        assert not (tmp_path / "metrics.prom.tmp").exists()
