"""Shared fixtures for the A-ABFT reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; tests that need several draws share the stream."""
    return np.random.default_rng(0xA_ABF7)


@pytest.fixture
def small_pair(rng):
    """A 96x96 operand pair with uniform(-1, 1) entries (block size 32)."""
    a = rng.uniform(-1.0, 1.0, (96, 96))
    b = rng.uniform(-1.0, 1.0, (96, 96))
    return a, b


@pytest.fixture
def rect_pair(rng):
    """A rectangular (m != n != q) pair exercising non-square paths."""
    a = rng.uniform(-1.0, 1.0, (64, 96))
    b = rng.uniform(-1.0, 1.0, (96, 128))
    return a, b


@pytest.fixture
def simulator():
    """A fresh K20c simulator."""
    from repro.gpusim import GpuSimulator

    return GpuSimulator()
