"""Deadline skew: requests expiring mid-batch must land on the ladder.

A request whose deadline expires between admission and dispatch (e.g.
because the clock jumped forward — the chaos ``clock_skew`` fault) must
resolve to an *explicit* outcome on every execution policy: a
``deadline`` rejection when the server rejects expired work, or the
ladder's last rung (``UNCHECKED``) when it serves it.  Nothing may be
silently dropped, and the ``abft_serve_*`` counters must account for
every request.
"""

import numpy as np
import pytest

from repro.engine import ExecutionPolicy
from repro.serve import MatmulServer, ServeConfig, VerificationStatus
from repro.telemetry import MetricsRegistry

POLICIES = ("serial", "fused", "pipelined")


class FakeClock:
    """Deterministic monotonic clock for deadline tests."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


@pytest.fixture
def operands():
    rng = np.random.default_rng(11)
    a = rng.uniform(-1, 1, (64, 64))
    bs = [rng.uniform(-1, 1, (64, 8)) for _ in range(6)]
    return a, bs


def make_server(mode, *, reject_expired, clock):
    config = ServeConfig(
        batch_window_s=0.0,
        execution=ExecutionPolicy(mode=mode),
        reject_expired=reject_expired,
    )
    return MatmulServer(
        config,
        registry=MetricsRegistry(),
        auto_start=False,
        clock=clock,
    )


def counter_value(registry, name, **labels):
    family = registry._families[name]
    return family.labels(**labels).get() if labels else family.get()


@pytest.mark.parametrize("mode", POLICIES)
class TestExpiredMidBatch:
    def test_expired_requests_are_rejected_with_reason(self, operands, mode):
        a, bs = operands
        clock = FakeClock()
        server = make_server(mode, reject_expired=True, clock=clock)
        futs = [server.submit(a, b, deadline_s=1.0) for b in bs]
        clock.advance(5.0)  # every deadline expires while queued
        server.start()
        server.stop(drain=True)
        responses = [f.result() for f in futs]
        assert all(r.status is VerificationStatus.REJECTED for r in responses)
        assert all(r.rejected_reason == "deadline" for r in responses)
        reg = server.registry
        assert counter_value(
            reg, "abft_serve_rejections_total", reason="deadline"
        ) == len(bs)
        assert counter_value(reg, "abft_serve_dropped_total") == 0

    def test_expired_requests_land_on_last_rung(self, operands, mode):
        a, bs = operands
        clock = FakeClock()
        server = make_server(mode, reject_expired=False, clock=clock)
        futs = [server.submit(a, b, deadline_s=1.0) for b in bs]
        clock.advance(5.0)
        server.start()
        server.stop(drain=True)
        responses = [f.result() for f in futs]
        # Served, explicitly flagged unverified — never silently dropped.
        assert all(r.status is VerificationStatus.UNCHECKED for r in responses)
        assert all(r.c is not None for r in responses)
        assert all(not r.verified for r in responses)
        for r, b in zip(responses, bs):
            assert np.allclose(r.c, a @ b)
        reg = server.registry
        assert counter_value(
            reg, "abft_serve_degradations_total", rung="unchecked"
        ) == len(bs)
        assert counter_value(reg, "abft_serve_dropped_total") == 0

    def test_mixed_live_and_expired_batch_reconciles(self, operands, mode):
        a, bs = operands
        clock = FakeClock()
        server = make_server(mode, reject_expired=True, clock=clock)
        live = [server.submit(a, b) for b in bs[:3]]  # no deadline
        doomed = [server.submit(a, b, deadline_s=1.0) for b in bs[3:]]
        clock.advance(5.0)  # expires only the deadlined half mid-queue
        server.start()
        server.stop(drain=True)
        live_r = [f.result() for f in live]
        doomed_r = [f.result() for f in doomed]
        assert all(r.status is VerificationStatus.FULL for r in live_r)
        assert all(r.status is VerificationStatus.REJECTED for r in doomed_r)
        assert all(r.rejected_reason == "deadline" for r in doomed_r)
        reg = server.registry
        completed = counter_value(
            reg, "abft_serve_requests_total", outcome="completed"
        )
        rejected = counter_value(
            reg, "abft_serve_requests_total", outcome="rejected"
        )
        assert completed == len(live_r)
        assert rejected == len(doomed_r)
        assert completed + rejected == len(bs)
        assert counter_value(reg, "abft_serve_dropped_total") == 0

    def test_degraded_rung_when_skew_eats_most_of_the_budget(
        self, operands, mode
    ):
        a, bs = operands
        clock = FakeClock()
        server = make_server(mode, reject_expired=True, clock=clock)
        # 70% of the budget gone at dispatch: remaining fraction 0.3 sits
        # between the default degrade fractions (0.5, 0.2) -> sea rung.
        futs = [server.submit(a, b, deadline_s=10.0) for b in bs]
        clock.advance(7.0)
        server.start()
        server.stop(drain=True)
        responses = [f.result() for f in futs]
        assert all(r.status is VerificationStatus.DEGRADED for r in responses)
        assert all(r.scheme == "sea" for r in responses)
        assert all(r.verified for r in responses)
        reg = server.registry
        assert counter_value(
            reg, "abft_serve_degradations_total", rung="sea"
        ) == len(bs)
        assert counter_value(reg, "abft_serve_dropped_total") == 0
