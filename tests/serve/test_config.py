"""ServeConfig validation and the degradation-rung helper."""

import pytest

from repro.engine import AbftConfig
from repro.errors import ConfigurationError
from repro.serve import DEGRADATION_RUNGS, ServeConfig, rung_for_fraction


class TestRungForFraction:
    def test_full_protection_above_first_threshold(self):
        assert rung_for_fraction(0.9, (0.5, 0.2)) == 0
        assert rung_for_fraction(0.5, (0.5, 0.2)) == 0  # at threshold: keep

    def test_each_threshold_crossed_walks_one_rung(self):
        assert rung_for_fraction(0.4, (0.5, 0.2)) == 1
        assert rung_for_fraction(0.1, (0.5, 0.2)) == 2

    def test_monotone_in_pressure(self):
        fractions = (0.5, 0.2)
        rungs = [
            rung_for_fraction(f / 100.0, fractions) for f in range(100, 0, -1)
        ]
        assert rungs == sorted(rungs)  # never walks back up

    def test_no_thresholds_means_no_degradation(self):
        assert rung_for_fraction(0.01, ()) == 0


class TestServeConfigValidation:
    def test_defaults_are_valid(self):
        cfg = ServeConfig()
        assert cfg.degradation_ladder == DEGRADATION_RUNGS
        assert cfg.max_queue_depth == 256

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue_depth": 0},
            {"max_batch_size": 0},
            {"batch_window_s": -0.1},
            {"default_deadline_s": 0.0},
            {"max_retries": -1},
            {"drain_timeout_s": -1.0},
            {"abft": "not-a-config"},
            {"degradation_ladder": ()},
            {"degradation_ladder": ("full", "bogus")},
            # unordered (weakest first) and duplicate ladders
            {"degradation_ladder": ("sea", "full"), "degrade_fractions": (0.5,)},
            {"degradation_ladder": ("full", "full"), "degrade_fractions": (0.5,)},
            # fraction count must match ladder steps
            {"degradation_ladder": ("full", "sea"), "degrade_fractions": ()},
            {"degrade_fractions": (0.5, 0.5)},      # not strictly decreasing
            {"degrade_fractions": (1.5, 0.2)},      # outside (0, 1)
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises((ConfigurationError, TypeError)):
            ServeConfig(**kwargs)

    def test_shorter_ladder_allowed(self):
        cfg = ServeConfig(
            degradation_ladder=("full", "sea"), degrade_fractions=(0.3,)
        )
        assert cfg.rung_name(0) == "full"
        assert cfg.rung_name(1) == "sea"
        assert cfg.rung_name(99) == "sea"  # clamped to the last rung

    def test_replace_revalidates(self):
        cfg = ServeConfig()
        assert cfg.replace(max_batch_size=8).max_batch_size == 8
        with pytest.raises(ConfigurationError):
            cfg.replace(max_batch_size=0)

    def test_carries_abft_config(self):
        abft = AbftConfig(block_size=32, p=1)
        assert ServeConfig(abft=abft).abft == abft
