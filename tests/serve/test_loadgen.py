"""The closed-loop load generator: tallies, percentiles, invariants."""

import numpy as np
import pytest

from repro.serve import (
    LoadgenResult,
    MatmulServer,
    ServeConfig,
    percentile,
    run_loadgen,
)
from repro.telemetry import MetricsRegistry


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 1) == 1.0

    def test_empty_sample(self):
        assert percentile([], 99) == 0.0

    def test_invalid_pct(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0)


class TestRunLoadgen:
    def test_clean_run_serves_everything(self):
        result = run_loadgen(
            requests=30, concurrency=6, m=64, n=64, q=8, seed=5,
            registry=MetricsRegistry(),
        )
        assert result.ok, result.violations
        assert result.submitted == 30
        assert result.served == 30
        assert result.rejected == 0 and result.dropped == 0
        assert result.status_counts == {"full": 30}
        assert result.max_batch_size > 1  # batches formed under concurrency
        assert len(result.latencies_s) == 30
        assert result.p50_s <= result.p99_s
        assert result.throughput_rps > 0

    def test_summary_is_json_friendly(self):
        import json

        result = run_loadgen(
            requests=10, concurrency=4, m=64, n=64, q=8,
            registry=MetricsRegistry(),
        )
        summary = json.loads(json.dumps(result.summary()))
        assert summary["submitted"] == 10
        assert summary["ok"] is True
        assert "p99" in summary["latency_s"]

    def test_drives_an_existing_server(self):
        registry = MetricsRegistry()
        with MatmulServer(
            ServeConfig(batch_window_s=0.001), registry=registry
        ) as server:
            result = run_loadgen(
                server, requests=12, concurrency=4, m=64, n=64, q=8
            )
        assert result.ok and result.served == 12

    def test_backpressure_counted_not_dropped(self):
        # queue far smaller than the concurrency window: rejections happen,
        # but every one is explicit — nothing vanishes
        cfg = ServeConfig(batch_window_s=0.05, max_queue_depth=2, max_batch_size=2)
        result = run_loadgen(
            requests=40, concurrency=20, m=64, n=64, q=8,
            serve_config=cfg, registry=MetricsRegistry(),
        )
        assert result.ok, result.violations
        assert result.rejected > 0
        assert result.rejection_reasons.get("queue_full", 0) == result.rejected
        assert result.served + result.rejected == 40
        assert result.dropped == 0

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            run_loadgen(requests=0)
        with pytest.raises(ValueError):
            run_loadgen(concurrency=0)


class TestInvariantDetection:
    def test_tally_flags_silent_degradation(self):
        from repro.serve.loadgen import _tally
        from repro.serve.request import MatmulResponse, VerificationStatus

        response = MatmulResponse(
            request_id="r1",
            status=VerificationStatus.DEGRADED,
            c=np.zeros((2, 2)),
            report=object(),
        )
        result = _tally([(response, 0.01, None)], 1, 0.1, None)
        assert not result.ok
        assert "without deadline pressure" in result.violations[0]

    def test_tally_flags_missing_result(self):
        from repro.serve.loadgen import _tally
        from repro.serve.request import MatmulResponse, VerificationStatus

        response = MatmulResponse(
            request_id="r1", status=VerificationStatus.FULL, c=None
        )
        result = _tally([(response, 0.01, None)], 1, 0.1, None)
        assert any("without a result" in v for v in result.violations)

    def test_tally_flags_dropped_requests(self):
        from repro.serve.loadgen import _tally

        result = _tally([(RuntimeError("boom"), 0.01, None)], 2, 0.1, None)
        assert result.dropped == 1
        assert any("died without a response" in v for v in result.violations)
        assert any("only 1 resolved" in v for v in result.violations)

    def test_loadgen_result_ok_property(self):
        clean = LoadgenResult(submitted=1, wall_s=0.1)
        assert clean.ok
        dirty = LoadgenResult(submitted=1, wall_s=0.1, violations=["x"])
        assert not dirty.ok


class TestResultVerification:
    def _response(self, status, **overrides):
        from repro.serve.request import MatmulResponse

        fields = dict(
            request_id="r1",
            status=status,
            c=np.zeros((2, 2)),
            report=object(),
        )
        fields.update(overrides)
        return MatmulResponse(**fields)

    def test_silent_wrong_answer_is_a_violation(self):
        from repro.serve.loadgen import _tally
        from repro.serve.request import VerificationStatus

        response = self._response(VerificationStatus.FULL)
        result = _tally([(response, 0.01, True)], 1, 0.1, None)
        assert result.silent_wrong == 1
        assert result.honest_wrong == 0
        assert any("SILENT WRONG ANSWER" in v for v in result.violations)

    def test_detected_wrong_answer_is_honest(self):
        from repro.serve.loadgen import _tally
        from repro.serve.request import VerificationStatus

        response = self._response(VerificationStatus.FULL, detected=True)
        result = _tally([(response, 0.01, True)], 1, 0.1, None)
        assert result.silent_wrong == 0
        assert result.honest_wrong == 1
        assert result.ok, result.violations

    def test_unchecked_wrong_answer_is_honest(self):
        from repro.serve.loadgen import _tally
        from repro.serve.request import VerificationStatus

        response = self._response(VerificationStatus.UNCHECKED, report=None)
        result = _tally([(response, 0.01, True)], 1, 0.1, 1.0)
        assert result.silent_wrong == 0
        assert result.honest_wrong == 1
        assert result.ok, result.violations

    def test_loadgen_verifies_clean_traffic(self):
        result = run_loadgen(
            requests=12, concurrency=4, m=64, n=64, q=8, seed=2,
            registry=MetricsRegistry(), verify_results=True,
        )
        assert result.ok, result.violations
        assert result.silent_wrong == 0
        assert result.honest_wrong == 0


class TestCounterReconciliation:
    def _tally_for(self, **overrides):
        fields = dict(
            submitted=3,
            wall_s=0.1,
            status_counts={"full": 2, "rejected": 1},
            rejection_reasons={"deadline": 1},
        )
        fields.update(overrides)
        return LoadgenResult(**fields)

    def _delta_for(self):
        return {
            ("abft_serve_requests_total", ("outcome", "completed")): 2,
            ("abft_serve_requests_total", ("outcome", "rejected")): 1,
            ("abft_serve_rejections_total", ("reason", "deadline")): 1,
        }

    def test_balanced_books_produce_no_diffs(self):
        from repro.serve.loadgen import reconcile_counters

        assert reconcile_counters(self._tally_for(), self._delta_for()) == []

    def test_mismatch_is_a_labelled_diff_not_a_bare_assert(self):
        from repro.serve.loadgen import reconcile_counters

        delta = self._delta_for()
        delta[("abft_serve_requests_total", ("outcome", "completed"))] = 3
        [diff] = reconcile_counters(self._tally_for(), delta)
        assert "abft_serve_requests_total{outcome=completed}" in diff
        assert "moved 3" in diff and "client tallied 2" in diff and "+1" in diff

    def test_unexplained_movement_is_reported(self):
        from repro.serve.loadgen import reconcile_counters

        delta = self._delta_for()
        delta[("abft_serve_rejections_total", ("reason", "shutdown"))] = 2
        [diff] = reconcile_counters(self._tally_for(), delta)
        assert "shutdown" in diff
        assert "moved 2" in diff or "unexplained" in diff

    def test_degradation_ladder_rungs_map_to_statuses(self):
        from repro.serve.loadgen import reconcile_counters

        tally = self._tally_for(
            status_counts={"full": 1, "degraded": 1, "unchecked": 1},
            rejection_reasons={},
        )
        delta = {
            ("abft_serve_requests_total", ("outcome", "completed")): 3,
            ("abft_serve_degradations_total", ("rung", "sea")): 1,
            ("abft_serve_degradations_total", ("rung", "unchecked")): 1,
        }
        assert reconcile_counters(tally, delta) == []

    def test_snapshot_round_trip_against_a_live_registry(self):
        from repro.serve.loadgen import (
            counter_delta,
            serve_counter_snapshot,
        )

        registry = MetricsRegistry()
        before = serve_counter_snapshot(registry)
        run_loadgen(
            requests=8, concurrency=4, m=64, n=64, q=8,
            registry=registry, reconcile=False,
        )
        delta = counter_delta(
            before, serve_counter_snapshot(registry)
        )
        assert delta[
            ("abft_serve_requests_total", ("outcome", "completed"))
        ] == 8
