"""MatmulServer: coalescing, backpressure, degradation ladder, recovery."""

import numpy as np
import pytest

from repro.abft.checking import check_partitioned
from repro.abft.result import AbftResult
from repro.engine import AbftConfig, MatmulEngine
from repro.serve import (
    MatmulRequest,
    MatmulServer,
    ServeConfig,
    VerificationStatus,
)
from repro.telemetry import MetricsRegistry


class FakeClock:
    """Deterministic monotonic clock for deadline tests."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class FaultyEngine(MatmulEngine):
    """Corrupts one element of the first fused result per call."""

    def __init__(self, *args, fail_forever=False, **kwargs):
        super().__init__(*args, **kwargs)
        self.fail_forever = fail_forever

    def _corrupt(self, res):
        c_fc = res.c_fc.copy()
        c_fc[3, 5] += 1.0
        report = check_partitioned(
            c_fc, res.row_layout, res.col_layout, res.provider
        )
        c = res.c.copy()
        c[3, 5] += 1.0
        return AbftResult(
            c=c, c_fc=c_fc, report=report, row_layout=res.row_layout,
            col_layout=res.col_layout, provider=res.provider,
        )

    def execute_batch(self, requests, **kwargs):
        results = super().execute_batch(requests, **kwargs)
        if results:
            results[0] = self._corrupt(results[0])
        return results

    def matmul(self, a, b, **kwargs):
        res = super().matmul(a, b, **kwargs)
        if self.fail_forever:
            res = self._corrupt(res)
        return res


@pytest.fixture
def operands():
    rng = np.random.default_rng(7)
    a = rng.uniform(-1, 1, (64, 64))
    bs = [rng.uniform(-1, 1, (64, 8)) for _ in range(6)]
    return a, bs


def make_server(config=None, **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    kwargs.setdefault("auto_start", False)
    return MatmulServer(config or ServeConfig(batch_window_s=0.0), **kwargs)


def counter_value(registry, name, **labels):
    family = registry._families[name]
    return family.labels(**labels).get() if labels else family.get()


class TestMicroBatching:
    def test_same_shape_requests_coalesce(self, operands):
        a, bs = operands
        server = make_server()
        futs = [server.submit(a, b) for b in bs]
        server.start()
        server.stop(drain=True)
        responses = [f.result() for f in futs]
        assert all(r.status is VerificationStatus.FULL for r in responses)
        assert responses[0].batch_size == len(bs)
        hist = server.registry._families["abft_serve_batch_size"].get()
        assert hist["count"] == 1 and hist["sum"] == len(bs)

    def test_batch_results_bitwise_match_serial(self, operands):
        a, bs = operands
        reference = [MatmulEngine().matmul(a, b).c for b in bs]
        server = make_server()
        futs = [server.submit(a, b) for b in bs]
        server.start()
        server.stop(drain=True)
        for fut, ref in zip(futs, reference):
            assert np.array_equal(fut.result().c, ref)

    def test_different_shapes_split_batches(self, operands):
        a, bs = operands
        rng = np.random.default_rng(8)
        other = rng.uniform(-1, 1, (64, 16))
        server = make_server()
        f1 = server.submit(a, bs[0])
        f2 = server.submit(a, other)
        f3 = server.submit(a, bs[1])
        server.start()
        server.stop(drain=True)
        assert f1.result().batch_size == 2  # coalesced with f3 across f2
        assert f2.result().batch_size == 1
        assert f3.result().batch_size == 2

    def test_different_configs_split_batches(self, operands):
        a, bs = operands
        server = make_server()
        f1 = server.submit(a, bs[0])
        f2 = server.submit(a, bs[1], config=AbftConfig(p=3))
        server.start()
        server.stop(drain=True)
        assert f1.result().batch_size == 1
        assert f2.result().batch_size == 1

    def test_max_batch_size_bounds_coalescing(self, operands):
        a, bs = operands
        server = make_server(ServeConfig(batch_window_s=0.0, max_batch_size=4))
        futs = [server.submit(a, b) for b in bs]
        server.start()
        server.stop(drain=True)
        sizes = sorted(f.result().batch_size for f in futs)
        assert sizes == [2, 2, 4, 4, 4, 4]

    def test_encoded_handles_accepted(self, operands):
        a, bs = operands
        server = make_server()
        handle = server.engine.encode(a, side="a")
        futs = [server.submit(handle, b) for b in bs[:3]]
        server.start()
        server.stop(drain=True)
        assert all(f.result().status is VerificationStatus.FULL for f in futs)
        assert futs[0].result().batch_size == 3


class TestBackpressure:
    def test_queue_full_rejections_explicit_and_counted(self, operands):
        a, bs = operands
        server = make_server(ServeConfig(batch_window_s=0.0, max_queue_depth=2))
        futs = [server.submit(a, bs[i % len(bs)]) for i in range(5)]
        rejected = [f.result() for f in futs if f.done()]
        assert len(rejected) == 3
        assert all(r.status is VerificationStatus.REJECTED for r in rejected)
        assert all(r.rejected_reason == "queue_full" for r in rejected)
        assert counter_value(
            server.registry, "abft_serve_rejections_total", reason="queue_full"
        ) == 3
        server.start()
        server.stop(drain=True)
        served = [f.result() for f in futs if f.result().ok]
        assert len(served) == 2
        assert counter_value(
            server.registry, "abft_serve_requests_total", outcome="completed"
        ) == 2
        assert counter_value(
            server.registry, "abft_serve_requests_total", outcome="rejected"
        ) == 3

    def test_queue_depth_gauge_tracks_admissions(self, operands):
        a, bs = operands
        server = make_server()
        server.submit(a, bs[0])
        server.submit(a, bs[1])
        assert server.queue_depth == 2
        assert server.registry._families["abft_serve_queue_depth"].get() == 2
        server.start()
        server.stop(drain=True)
        assert server.registry._families["abft_serve_queue_depth"].get() == 0

    def test_submit_after_stop_rejected_as_shutdown(self, operands):
        a, bs = operands
        server = make_server()
        server.start()
        server.stop(drain=True)
        response = server.submit(a, bs[0]).result()
        assert response.status is VerificationStatus.REJECTED
        assert response.rejected_reason == "shutdown"

    def test_stop_without_drain_rejects_queued(self, operands):
        a, bs = operands
        server = make_server()  # dispatcher never started
        futs = [server.submit(a, b) for b in bs[:3]]
        server.stop(drain=False)
        for fut in futs:
            assert fut.result().rejected_reason == "shutdown"


class TestDegradationLadder:
    def run_with_pressure(self, deadline_s, advance, config=None, **kwargs):
        rng = np.random.default_rng(3)
        a = rng.uniform(-1, 1, (64, 64))
        b = rng.uniform(-1, 1, (64, 8))
        clock = FakeClock()
        server = make_server(config, clock=clock, **kwargs)
        fut = server.submit(a, b, deadline_s=deadline_s)
        clock.t = advance
        server.start()
        server.stop(drain=True)
        return server, fut.result()

    def test_no_deadline_stays_full(self, operands):
        a, bs = operands
        server = make_server()
        fut = server.submit(a, bs[0])
        server.start()
        server.stop(drain=True)
        assert fut.result().status is VerificationStatus.FULL
        assert fut.result().scheme == "aabft"

    def test_mild_pressure_degrades_to_sea(self):
        server, response = self.run_with_pressure(10.0, 7.0)  # 30% remaining
        assert response.status is VerificationStatus.DEGRADED
        assert response.scheme == "sea"
        assert response.report is not None  # still checked, never silent
        assert counter_value(
            server.registry, "abft_serve_degradations_total", rung="sea"
        ) == 1

    def test_severe_pressure_drops_to_unchecked_but_flagged(self):
        server, response = self.run_with_pressure(10.0, 9.5)  # 5% remaining
        assert response.status is VerificationStatus.UNCHECKED
        assert response.scheme is None and response.report is None
        assert not response.verified
        assert counter_value(
            server.registry, "abft_serve_degradations_total", rung="unchecked"
        ) == 1

    def test_ladder_walked_in_order_with_increasing_pressure(self):
        statuses = [
            self.run_with_pressure(10.0, advance)[1].status
            for advance in (1.0, 7.0, 9.5)
        ]
        assert statuses == [
            VerificationStatus.FULL,
            VerificationStatus.DEGRADED,
            VerificationStatus.UNCHECKED,
        ]

    def test_expired_deadline_rejected(self):
        server, response = self.run_with_pressure(10.0, 11.0)
        assert response.status is VerificationStatus.REJECTED
        assert response.rejected_reason == "deadline"
        assert counter_value(
            server.registry, "abft_serve_rejections_total", reason="deadline"
        ) == 1

    def test_expired_served_unchecked_when_rejection_disabled(self):
        server, response = self.run_with_pressure(
            10.0, 11.0, config=ServeConfig(batch_window_s=0.0, reject_expired=False)
        )
        assert response.status is VerificationStatus.UNCHECKED

    def test_degraded_result_is_numerically_correct(self):
        rng = np.random.default_rng(3)
        a = rng.uniform(-1, 1, (64, 64))
        b = rng.uniform(-1, 1, (64, 8))
        clock = FakeClock()
        server = make_server(clock=clock)
        fut_sea = server.submit(a, b, deadline_s=10.0)
        clock.t = 7.0
        server.start()
        server.stop(drain=True)
        assert np.allclose(fut_sea.result().c, a @ b)


class TestRecovery:
    def test_detected_error_corrected(self, operands):
        a, bs = operands
        clean = MatmulEngine().matmul(a, bs[0]).c
        registry = MetricsRegistry()
        engine = FaultyEngine(registry=registry)
        server = make_server(engine=engine, registry=registry)
        futs = [server.submit(a, b) for b in bs[:3]]
        server.start()
        server.stop(drain=True)
        response = futs[0].result()
        assert response.corrected and not response.detected
        assert response.status is VerificationStatus.FULL
        assert response.report.error_detected  # detection report preserved
        assert np.allclose(response.c, clean, rtol=0, atol=1e-9)
        assert counter_value(
            server.registry, "abft_serve_retries_total", kind="corrected"
        ) == 1
        assert counter_value(
            server.registry, "abft_serve_detections_total"
        ) == 1
        # untouched batch members stay pristine
        assert all(not f.result().detected for f in futs[1:])

    def test_detected_error_recomputed_when_correction_disabled(self, operands):
        a, bs = operands
        clean = MatmulEngine().matmul(a, bs[0]).c
        registry = MetricsRegistry()
        engine = FaultyEngine(registry=registry)
        server = make_server(
            ServeConfig(batch_window_s=0.0, correct_detected=False),
            engine=engine,
            registry=registry,
        )
        futs = [server.submit(a, b) for b in bs[:2]]
        server.start()
        server.stop(drain=True)
        response = futs[0].result()
        assert response.recomputed and response.retries == 1
        assert not response.detected
        assert np.array_equal(response.c, clean)
        assert counter_value(
            server.registry, "abft_serve_retries_total", kind="recomputed"
        ) == 1

    def test_exhausted_retries_reported_honestly(self, operands):
        a, bs = operands
        registry = MetricsRegistry()
        engine = FaultyEngine(registry=registry, fail_forever=True)
        server = make_server(
            ServeConfig(
                batch_window_s=0.0, correct_detected=False, max_retries=2
            ),
            engine=engine,
            registry=registry,
        )
        futs = [server.submit(a, b) for b in bs[:2]]
        server.start()
        server.stop(drain=True)
        response = futs[0].result()
        assert response.detected  # never silently claims success
        assert response.retries == 2 and not response.recomputed
        assert response.report.error_detected


class TestLifecycle:
    def test_context_manager_drains(self, operands):
        a, bs = operands
        with MatmulServer(
            ServeConfig(batch_window_s=0.0), registry=MetricsRegistry()
        ) as server:
            futs = [server.submit(a, b) for b in bs]
        assert all(f.result().ok for f in futs)

    def test_auto_start_on_first_submit(self, operands):
        a, bs = operands
        server = MatmulServer(
            ServeConfig(batch_window_s=0.0), registry=MetricsRegistry()
        )
        assert not server.started
        fut = server.submit(a, bs[0])
        assert server.started
        assert fut.result(timeout=30).status is VerificationStatus.FULL
        server.stop()

    def test_submit_request_object(self, operands):
        a, bs = operands
        server = make_server()
        fut = server.submit_request(MatmulRequest(a=a, b=bs[0], request_id="x1"))
        server.start()
        server.stop(drain=True)
        assert fut.result().request_id == "x1"

    def test_request_ids_assigned_when_missing(self, operands):
        a, bs = operands
        server = make_server()
        futs = [server.submit(a, b) for b in bs[:2]]
        server.start()
        server.stop(drain=True)
        assert [f.result().request_id for f in futs] == ["r1", "r2"]

    def test_invalid_deadline_rejected_at_construction(self, operands):
        a, bs = operands
        with pytest.raises(ValueError):
            MatmulRequest(a=a, b=bs[0], deadline_s=0.0)

    def test_accounting_invariant_across_outcomes(self, operands):
        a, bs = operands
        server = make_server(ServeConfig(batch_window_s=0.0, max_queue_depth=4))
        futs = [server.submit(a, bs[i % len(bs)]) for i in range(7)]
        server.start()
        server.stop(drain=True)
        completed = counter_value(
            server.registry, "abft_serve_requests_total", outcome="completed"
        )
        rejected = counter_value(
            server.registry, "abft_serve_requests_total", outcome="rejected"
        )
        dropped = counter_value(server.registry, "abft_serve_dropped_total")
        assert completed + rejected == len(futs)
        assert dropped == 0
        assert all(f.result() is not None for f in futs)


class TestBackendRouting:
    """Per-request backend pin/exclude merges into the batch AbftConfig."""

    @pytest.fixture(autouse=True)
    def clear_env_pin(self, monkeypatch):
        # These tests assert the negotiated backend, so an ambient
        # AABFT_BACKEND pin must not leak in.
        monkeypatch.delenv("AABFT_BACKEND", raising=False)

    def run_one(self, server, a, b, **submit_kwargs):
        fut = server.submit(a, b, **submit_kwargs)
        server.start()
        server.stop(drain=True)
        return fut.result()

    def test_default_requests_report_numpy(self, operands):
        a, bs = operands
        response = self.run_one(make_server(), a, bs[0])
        assert response.status is VerificationStatus.FULL
        assert response.backend == "numpy"
        assert response.backend_fallback is None

    def test_pinned_backend_is_used_and_bitwise_identical(self, operands):
        a, bs = operands
        reference = self.run_one(make_server(), a, bs[0])
        response = self.run_one(make_server(), a, bs[0], backend="blocked")
        assert response.status is VerificationStatus.FULL
        assert response.backend == "blocked"
        assert response.backend_fallback is None
        assert response.c.tobytes() == reference.c.tobytes()

    def test_unknown_backend_pin_is_rejected(self, operands):
        a, bs = operands
        response = self.run_one(make_server(), a, bs[0], backend="imaginary")
        assert response.status is VerificationStatus.REJECTED
        assert response.rejected_reason == "invalid_backend"

    def test_unavailable_pin_serves_with_recorded_fallback(self, operands):
        a, bs = operands
        response = self.run_one(make_server(), a, bs[0], backend="cupy")
        if response.backend_fallback is None:  # pragma: no cover - CUDA host
            pytest.skip("cupy is available here")
        assert response.status is VerificationStatus.FULL
        assert response.backend == "numpy"
        assert "cupy" in response.backend_fallback

    def test_exclude_backends_merges_into_config(self, operands):
        a, bs = operands
        server = make_server()
        fut = server.submit(a, bs[0], exclude_backends=("blocked",))
        server.start()
        server.stop(drain=True)
        response = fut.result()
        assert response.status is VerificationStatus.FULL
        assert response.backend == "numpy"

    def test_backend_pins_split_batches(self, operands):
        a, bs = operands
        server = make_server()
        f1 = server.submit(a, bs[0])
        f2 = server.submit(a, bs[1], backend="blocked")
        server.start()
        server.stop(drain=True)
        r1, r2 = f1.result(), f2.result()
        assert (r1.backend, r2.backend) == ("numpy", "blocked")
        # Different pins may not coalesce into one fused batch.
        assert r1.batch_size == 1 and r2.batch_size == 1

    def test_unchecked_responses_carry_numpy_backend(self):
        # Severe deadline pressure drives the unchecked rung; even there
        # the response says which backend computed the product.
        rng = np.random.default_rng(3)
        a = rng.uniform(-1, 1, (64, 64))
        b = rng.uniform(-1, 1, (64, 8))
        clock = FakeClock()
        server = make_server(clock=clock)
        fut = server.submit(a, b, deadline_s=10.0)
        clock.t = 9.5  # 5% remaining -> unchecked rung
        server.start()
        server.stop(drain=True)
        response = fut.result()
        assert response.status is VerificationStatus.UNCHECKED
        assert response.backend == "numpy"
