"""Fused execute_batch: bitwise identity with the serial path, fallbacks,
metrics, and the deprecated matmul_many/matmul_fused shims."""

import numpy as np
import pytest

from repro.engine import AbftConfig, ExecutionPolicy, MatmulEngine
from repro.engine.fused import fused_supported
from repro.errors import ShapeError

FUSED = ExecutionPolicy(mode="fused")


@pytest.fixture
def engine():
    return MatmulEngine()


def assert_results_bitwise_equal(fused, serial):
    for got, ref in zip(fused, serial):
        assert np.array_equal(got.c, ref.c)
        assert np.array_equal(got.c_fc, ref.c_fc)
        assert got.detected == ref.detected
        assert got.report.num_checks == ref.report.num_checks


class TestBitwiseIdentity:
    def test_shared_left_operand(self, engine):
        rng = np.random.default_rng(0)
        a = rng.uniform(-1, 1, (64, 64))
        bs = [rng.uniform(-1, 1, (64, 8)) for _ in range(4)]
        serial = [MatmulEngine().matmul(a, b) for b in bs]
        fused = engine.execute_batch([(a, b) for b in bs], policy=FUSED)
        assert_results_bitwise_equal(fused, serial)

    def test_distinct_pairs(self, engine):
        rng = np.random.default_rng(1)
        pairs = [
            (rng.uniform(-1, 1, (64, 64)), rng.uniform(-1, 1, (64, 8)))
            for _ in range(3)
        ]
        serial = [MatmulEngine().matmul(a, b) for a, b in pairs]
        fused = engine.execute_batch(pairs, policy=FUSED)
        assert_results_bitwise_equal(fused, serial)

    def test_padded_shapes(self, engine):
        rng = np.random.default_rng(2)
        a = rng.uniform(-1, 1, (100, 130))  # non-multiples of block size
        bs = [rng.uniform(-1, 1, (130, 70)) for _ in range(3)]
        serial = [MatmulEngine().matmul(a, b) for b in bs]
        fused = engine.execute_batch([(a, b) for b in bs], policy=FUSED)
        assert_results_bitwise_equal(fused, serial)

    def test_float32_batch(self, engine):
        rng = np.random.default_rng(3)
        a = rng.uniform(-1, 1, (64, 64)).astype(np.float32)
        bs = [rng.uniform(-1, 1, (64, 8)).astype(np.float32) for _ in range(3)]
        serial = [MatmulEngine().matmul(a, b) for b in bs]
        fused = engine.execute_batch([(a, b) for b in bs], policy=FUSED)
        assert fused[0].c.dtype == np.float32
        assert_results_bitwise_equal(fused, serial)

    def test_epsilon_floor_respected(self, engine):
        rng = np.random.default_rng(4)
        a = rng.uniform(-1, 1, (64, 64))
        bs = [rng.uniform(-1, 1, (64, 8)) for _ in range(3)]
        cfg = AbftConfig(epsilon_floor=1e-10)
        serial = [MatmulEngine().matmul(a, b, config=cfg) for b in bs]
        fused = engine.execute_batch(
            [(a, b) for b in bs], policy=FUSED, config=cfg
        )
        assert_results_bitwise_equal(fused, serial)

    def test_encoded_handles_reused(self, engine):
        rng = np.random.default_rng(5)
        a = rng.uniform(-1, 1, (64, 64))
        bs = [rng.uniform(-1, 1, (64, 8)) for _ in range(3)]
        handle = engine.encode(a, side="a")
        serial = [MatmulEngine().matmul(a, b) for b in bs]
        before = engine.stats().encode_reuses
        fused = engine.execute_batch([(handle, b) for b in bs], policy=FUSED)
        assert_results_bitwise_equal(fused, serial)
        assert engine.stats().encode_reuses - before == 3

    def test_detection_matches_serial(self, engine):
        rng = np.random.default_rng(6)
        a = rng.uniform(-1, 1, (64, 64))
        bs = [rng.uniform(-1, 1, (64, 8)) for _ in range(3)]
        fused = engine.execute_batch([(a, b) for b in bs], policy=FUSED)
        assert all(not r.detected for r in fused)
        # inject into a fused result; its provider must still locate it
        from repro.abft.checking import check_partitioned

        res = fused[1]
        res.c_fc[3, 5] += 1.0
        report = check_partitioned(
            res.c_fc, res.row_layout, res.col_layout, res.provider
        )
        assert report.error_detected
        assert (3, 5) in report.located_errors


class TestFallbacks:
    def test_sea_scheme_falls_back_to_serial(self, engine):
        rng = np.random.default_rng(7)
        a = rng.uniform(-1, 1, (64, 64))
        bs = [rng.uniform(-1, 1, (64, 8)) for _ in range(3)]
        cfg = AbftConfig(scheme="sea")
        results = engine.execute_batch(
            [(a, b) for b in bs], policy=FUSED, config=cfg
        )
        serial = [MatmulEngine().matmul(a, b, config=cfg) for b in bs]
        assert_results_bitwise_equal(results, serial)

    def test_heterogeneous_shapes_fall_back(self, engine):
        rng = np.random.default_rng(8)
        a = rng.uniform(-1, 1, (64, 64))
        b1 = rng.uniform(-1, 1, (64, 8))
        b2 = rng.uniform(-1, 1, (64, 16))
        cfg = engine.config
        assert not fused_supported([a, a], [b1, b2], cfg)
        results = engine.execute_batch([(a, b1), (a, b2)], policy=FUSED)
        assert results[0].c.shape == (64, 8)
        assert results[1].c.shape == (64, 16)

    def test_single_pair_falls_back(self, engine):
        rng = np.random.default_rng(9)
        a = rng.uniform(-1, 1, (64, 64))
        b = rng.uniform(-1, 1, (64, 8))
        assert not fused_supported([a], [b], engine.config)
        results = engine.execute_batch([(a, b)], policy=FUSED)
        assert len(results) == 1 and not results[0].detected

    def test_mixed_precision_pairs_fall_back(self, engine):
        # an all-float32 pair resolves to float32 while the batch as a
        # whole resolves to float64 -> per-pair dtypes diverge, no fusing
        rng = np.random.default_rng(10)
        a64 = rng.uniform(-1, 1, (64, 64))
        b64 = rng.uniform(-1, 1, (64, 8))
        a32 = a64.astype(np.float32)
        b32 = b64.astype(np.float32)
        assert not fused_supported([a32, a64], [b32, b64], engine.config)
        results = engine.execute_batch([(a32, b32), (a64, b64)], policy=FUSED)
        assert results[0].c.dtype == np.float32
        assert results[1].c.dtype == np.float64

    def test_uniform_promotion_still_fuses(self, engine):
        # float32 right operands against a float64 left operand promote
        # uniformly to float64 -> the fused path applies and stays bitwise
        rng = np.random.default_rng(14)
        a = rng.uniform(-1, 1, (64, 64))
        bs = [rng.uniform(-1, 1, (64, 8)).astype(np.float32) for _ in range(2)]
        assert fused_supported([a, a], bs, engine.config)
        serial = [MatmulEngine().matmul(a, b) for b in bs]
        fused = engine.execute_batch([(a, b) for b in bs], policy=FUSED)
        assert_results_bitwise_equal(fused, serial)

    def test_malformed_request_raises(self, engine):
        rng = np.random.default_rng(11)
        a = rng.uniform(-1, 1, (64, 64))
        b = rng.uniform(-1, 1, (64, 8))
        with pytest.raises(ShapeError):
            engine.execute_batch([(a, b), (a, b, b)], policy=FUSED)


class TestMetrics:
    def test_fused_counts_calls_and_reuses(self, engine):
        rng = np.random.default_rng(12)
        a = rng.uniform(-1, 1, (64, 64))
        bs = [rng.uniform(-1, 1, (64, 8)) for _ in range(4)]
        engine.execute_batch([(a, b) for b in bs], policy=FUSED)
        stats = engine.stats()
        assert stats.calls == 4
        assert stats.batched_calls == 1
        # the shared A is encoded once, reused for the other three pairs
        assert stats.encode_reuses == 3

    def test_stage_timers_accumulate(self, engine):
        rng = np.random.default_rng(13)
        a = rng.uniform(-1, 1, (64, 64))
        bs = [rng.uniform(-1, 1, (64, 8)) for _ in range(3)]
        engine.execute_batch([(a, b) for b in bs], policy=FUSED)
        stats = engine.stats()
        assert stats.encode_seconds > 0
        assert stats.multiply_seconds > 0
        assert stats.check_seconds > 0


class TestDeprecatedShims:
    def test_matmul_many_warns_and_matches(self, engine):
        rng = np.random.default_rng(15)
        a = rng.uniform(-1, 1, (64, 64))
        bs = [rng.uniform(-1, 1, (64, 8)) for _ in range(2)]
        serial = [MatmulEngine().matmul(a, b) for b in bs]
        with pytest.warns(DeprecationWarning, match="matmul_many"):
            results = engine.matmul_many(a, bs)
        assert_results_bitwise_equal(results, serial)

    def test_matmul_fused_warns_and_matches(self, engine):
        rng = np.random.default_rng(16)
        a = rng.uniform(-1, 1, (64, 64))
        bs = [rng.uniform(-1, 1, (64, 8)) for _ in range(2)]
        serial = [MatmulEngine().matmul(a, b) for b in bs]
        with pytest.warns(DeprecationWarning, match="matmul_fused"):
            results = engine.matmul_fused(a, bs)
        assert_results_bitwise_equal(results, serial)

    def test_shim_length_mismatch_raises(self, engine):
        rng = np.random.default_rng(17)
        a = [rng.uniform(-1, 1, (64, 64)) for _ in range(2)]
        b = [rng.uniform(-1, 1, (64, 8)) for _ in range(3)]
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ShapeError):
                engine.matmul_fused(a, b)
