"""submit_model: per-layer deadline ladder, never-silent degradation."""

import numpy as np
import pytest

from repro.models import ProtectionPlanner, attention, mlp
from repro.serve import (
    MatmulServer,
    ModelRequest,
    ServeConfig,
    VerificationStatus,
)
from repro.telemetry import MetricsRegistry


class SteppingClock:
    """A fake monotonic clock advancing a fixed step per reading."""

    def __init__(self, step=0.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


def make_server(step=0.0):
    return MatmulServer(
        ServeConfig(batch_window_s=0.0),
        registry=MetricsRegistry(),
        auto_start=False,
        clock=SteppingClock(step),
    )


def small_model():
    return mlp(name="sm", batch=16, d_in=32, hidden=32, depth=3, d_out=8)


class TestSubmitModel:
    def test_no_deadline_serves_full(self):
        server = make_server()
        response = server.submit_model(
            ModelRequest(model=small_model())
        ).result(timeout=30)
        assert response.status is VerificationStatus.FULL
        assert response.ok and response.verified
        assert response.degraded_layers == ()
        assert response.output.shape == (16, 8)
        assert not response.detected
        server.stop()

    def test_result_carries_per_layer_record(self):
        server = make_server()
        response = server.submit_model(
            ModelRequest(model=small_model())
        ).result(timeout=30)
        assert len(response.result.layers) == 3
        # The default planner upgrades the two hidden layers to SEA to hit
        # its coverage target; the skinny head stays an explicit hole.
        assert response.result.layer_run("fc1").protected
        assert response.result.layer_run("fc2").protected
        assert not response.result.layer_run("head").protected
        server.stop()

    def test_fp16_model_serves_full(self):
        server = make_server()
        model = attention(name="a16", batch=16, d_model=32, dtype="float16")
        response = server.submit_model(ModelRequest(model=model)).result(
            timeout=30
        )
        assert response.status is VerificationStatus.FULL
        assert response.output.dtype == np.float16
        server.stop()

    def test_explicit_plan_is_honoured(self):
        server = make_server()
        model = small_model()
        plan = ProtectionPlanner(
            coverage_target=0.0,
            full_intensity=float("inf"),
            sea_intensity=float("inf"),
        ).plan(model)
        response = server.submit_model(
            ModelRequest(model=model, plan=plan)
        ).result(timeout=30)
        # Nothing protected ran and the response says so — never silent.
        assert response.status is VerificationStatus.UNCHECKED
        assert not response.verified
        # Unchecked was the *plan*, not a deadline downgrade.
        assert response.degraded_layers == ()
        server.stop()

    def test_expired_deadline_degrades_to_unchecked_never_silent(self):
        # Every clock reading advances 1s against a 0.5s deadline: by the
        # first layer dispatch the budget is gone, so the whole pass walks
        # to the unchecked rung — and names every degraded layer.
        server = make_server(step=1.0)
        response = server.submit_model(
            ModelRequest(model=small_model(), deadline_s=0.5)
        ).result(timeout=30)
        assert response.status is VerificationStatus.UNCHECKED
        # head was *planned* unchecked — only below-plan layers are named.
        assert set(response.degraded_layers) == {"fc1", "fc2"}
        assert response.output is not None  # finished, not killed mid-model
        for run in response.result.layers:
            assert run.rung == "unchecked"
        assert response.result.layer_run("fc1").degraded
        assert not response.result.layer_run("head").degraded
        server.stop()

    def test_rejected_after_stop(self):
        server = make_server()
        server.stop()
        response = server.submit_model(
            ModelRequest(model=small_model())
        ).result(timeout=30)
        assert response.status is VerificationStatus.REJECTED
        assert response.rejected_reason == "shutdown"
        assert not response.ok
        assert response.output is None

    def test_request_ids_assigned(self):
        server = make_server()
        request = ModelRequest(model=small_model())
        response = server.submit_model(request).result(timeout=30)
        assert response.request_id == request.request_id
        assert response.request_id.startswith("m")
        server.stop()

    def test_wrong_request_type_rejected(self):
        server = make_server()
        with pytest.raises(TypeError, match="ModelRequest"):
            server.submit_model(small_model())
        server.stop()


class TestModelRequestValidation:
    @pytest.mark.parametrize("deadline", [0.0, -1.0])
    def test_non_positive_deadline_rejected(self, deadline):
        with pytest.raises(ValueError, match="deadline_s"):
            ModelRequest(model=small_model(), deadline_s=deadline)

    def test_none_deadline_accepted(self):
        assert ModelRequest(model=small_model()).deadline_s is None
