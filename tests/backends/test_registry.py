"""Backend registry: registration, lazy build, capability negotiation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    Backend,
    BackendCapabilities,
    BackendRegistry,
    NumpyBackend,
    default_registry,
    get_backend,
    negotiate,
)
from repro.backends.registry import ENV_BACKEND
from repro.engine import AbftConfig
from repro.errors import ConfigurationError


class CountingBackend(Backend):
    """A numpy clone that records how many times it was constructed."""

    built = 0

    def __init__(self):
        type(self).built += 1
        self._inner = NumpyBackend()

    @property
    def name(self):
        return "counting"

    def capabilities(self):
        return BackendCapabilities(name="counting")

    def matmul(self, a, b, *, out=None, tile=None, pool=None):
        return self._inner.matmul(a, b, out=out, tile=tile, pool=pool)


class UnavailableBackend(Backend):
    @property
    def name(self):
        return "broken"

    def capabilities(self):
        return BackendCapabilities(name="broken")

    def availability(self):
        return False, "hardware missing"

    def matmul(self, a, b, *, out=None, tile=None, pool=None):
        raise AssertionError("must never dispatch")


class NonDeterministicBackend(Backend):
    @property
    def name(self):
        return "fuzzy"

    def capabilities(self):
        return BackendCapabilities(name="fuzzy", deterministic=False)

    def matmul(self, a, b, *, out=None, tile=None, pool=None):
        return a @ b


class TinyBackend(Backend):
    """Capability-limited: refuses anything beyond 100 elements."""

    @property
    def name(self):
        return "tiny"

    def capabilities(self):
        return BackendCapabilities(name="tiny", max_elements=100)

    def matmul(self, a, b, *, out=None, tile=None, pool=None):
        return a @ b


def make_registry() -> BackendRegistry:
    registry = BackendRegistry()
    registry.register("numpy", NumpyBackend)
    registry.register("counting", CountingBackend)
    registry.register("broken", UnavailableBackend)
    registry.register("fuzzy", NonDeterministicBackend)
    registry.register("tiny", TinyBackend)
    return registry


class TestRegistry:
    def test_lazy_single_instantiation(self):
        registry = make_registry()
        CountingBackend.built = 0
        assert CountingBackend.built == 0  # registration builds nothing
        first = registry.get("counting")
        second = registry.get("counting")
        assert first is second
        assert CountingBackend.built == 1

    def test_unknown_name_is_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            make_registry().get("nope")

    def test_duplicate_requires_replace(self):
        registry = make_registry()
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("numpy", NumpyBackend)
        registry.register("numpy", CountingBackend, replace=True)
        assert isinstance(registry.get("numpy"), CountingBackend)

    def test_contains_and_names(self):
        registry = make_registry()
        assert "numpy" in registry and "nope" not in registry
        assert registry.names()[0] == "numpy"

    def test_default_registry_ships_three_backends(self):
        names = default_registry().names()
        assert names == ["numpy", "blocked", "cupy"]
        assert get_backend("numpy").availability() == (True, None)

    def test_describe_reports_availability(self):
        rows = {row["name"]: row for row in make_registry().describe()}
        assert rows["numpy"]["available"]
        assert not rows["broken"]["available"]
        assert rows["broken"]["reason"] == "hardware missing"
        assert rows["fuzzy"]["deterministic"] is False


class TestNegotiation:
    DTYPE = np.dtype(np.float64)

    def negotiate(self, config, *, m=64, n=64, q=64, environ=None, tuner=None):
        return negotiate(
            config,
            m,
            n,
            q,
            self.DTYPE,
            registry=make_registry(),
            autotuner=tuner,
            environ=environ if environ is not None else {},
        )

    def test_auto_defaults_to_numpy(self):
        sel = self.negotiate(AbftConfig())
        assert (sel.backend, sel.source) == ("numpy", "default")
        assert sel.fallback_from is None

    def test_config_pin_wins(self):
        sel = self.negotiate(AbftConfig(backend="counting"))
        assert (sel.backend, sel.source) == ("counting", "pinned")

    def test_env_pin_applies_to_auto_configs(self):
        sel = self.negotiate(
            AbftConfig(), environ={ENV_BACKEND: "counting"}
        )
        assert (sel.backend, sel.source) == ("counting", "env")

    def test_config_pin_beats_env_pin(self):
        sel = self.negotiate(
            AbftConfig(backend="counting"), environ={ENV_BACKEND: "fuzzy"}
        )
        assert (sel.backend, sel.source) == ("counting", "pinned")

    def test_unavailable_pin_falls_back_with_reason(self):
        sel = self.negotiate(AbftConfig(backend="broken"))
        assert sel.backend == "numpy"
        assert sel.fallback_from == "broken"
        assert sel.fallback_reason == "hardware missing"

    def test_unknown_pin_falls_back_with_reason(self):
        sel = self.negotiate(AbftConfig(backend="imaginary"))
        assert sel.backend == "numpy"
        assert "unknown backend" in sel.fallback_reason

    def test_excluded_pin_falls_back(self):
        # Config validation forbids pinning an excluded backend, so the
        # exclusion arrives via the environment pin instead.
        sel = self.negotiate(
            AbftConfig(exclude_backends=("counting",)),
            environ={ENV_BACKEND: "counting"},
        )
        assert sel.backend == "numpy"
        assert sel.fallback_reason == "excluded by config"

    def test_capability_mismatch_falls_back(self):
        sel = self.negotiate(AbftConfig(backend="tiny"), m=64, n=64, q=64)
        assert sel.backend == "numpy"
        assert sel.fallback_from == "tiny"

    def test_pinned_non_deterministic_backend_is_allowed(self):
        sel = self.negotiate(AbftConfig(backend="fuzzy"))
        assert sel.backend == "fuzzy"

    def test_autotuned_winner_serves_auto_configs(self):
        class Tuner:
            def lookup(self, m, n, q, dtype, config):
                from repro.backends import TunedChoice

                return TunedChoice(
                    backend="counting",
                    tile=32,
                    per_call_s=1.0,
                    baseline_per_call_s=2.0,
                )

        sel = self.negotiate(AbftConfig(), tuner=Tuner())
        assert (sel.backend, sel.tile, sel.source) == (
            "counting",
            32,
            "autotuned",
        )

    def test_explicit_tile_beats_autotuned_tile(self):
        class Tuner:
            def lookup(self, m, n, q, dtype, config):
                from repro.backends import TunedChoice

                return TunedChoice(
                    backend="counting",
                    tile=32,
                    per_call_s=1.0,
                    baseline_per_call_s=2.0,
                )

        sel = self.negotiate(AbftConfig(gemm_tile=48), tuner=Tuner())
        assert (sel.backend, sel.tile) == ("counting", 48)

    def test_autotuned_non_deterministic_winner_is_rejected(self):
        class Tuner:
            def lookup(self, m, n, q, dtype, config):
                from repro.backends import TunedChoice

                return TunedChoice(
                    backend="fuzzy",
                    tile=None,
                    per_call_s=1.0,
                    baseline_per_call_s=2.0,
                )

        sel = self.negotiate(AbftConfig(), tuner=Tuner())
        assert sel.backend == "numpy"
        assert "non-deterministic" in sel.fallback_reason

    def test_autotuned_tile_dies_with_its_backend(self):
        # When the cached winner's backend is rejected, its tile must not
        # leak into the numpy fallback: the bytes would silently change.
        class Tuner:
            def lookup(self, m, n, q, dtype, config):
                from repro.backends import TunedChoice

                return TunedChoice(
                    backend="broken",
                    tile=32,
                    per_call_s=1.0,
                    baseline_per_call_s=2.0,
                )

        sel = self.negotiate(AbftConfig(), tuner=Tuner())
        assert (sel.backend, sel.tile) == ("numpy", None)


class TestConfigValidation:
    def test_numpy_cannot_be_excluded(self):
        with pytest.raises(ConfigurationError, match="terminal fallback"):
            AbftConfig(exclude_backends=("numpy",))

    def test_pinned_and_excluded_conflict(self):
        with pytest.raises(ConfigurationError):
            AbftConfig(backend="blocked", exclude_backends=("blocked",))

    def test_gemm_tile_must_be_positive(self):
        with pytest.raises(ValueError):
            AbftConfig(gemm_tile=0)

    def test_describe_mentions_backend_choices(self):
        text = AbftConfig(
            backend="blocked", gemm_tile=64, exclude_backends=("cupy",)
        ).describe()
        assert "backend=blocked" in text
        assert "gemm_tile=64" in text
        assert "cupy" in text
