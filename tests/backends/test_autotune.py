"""Autotuner: cache persistence, hysteresis, never-slower guarantee."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.backends import Autotuner, AutotuneCache, TunedChoice
from repro.backends.autotune import default_cache_path
from repro.engine import AbftConfig
from repro.telemetry import MetricsRegistry


@pytest.fixture
def cache(tmp_path) -> AutotuneCache:
    return AutotuneCache(tmp_path / "autotune.json")


CHOICE = TunedChoice(
    backend="blocked", tile=64, per_call_s=0.5, baseline_per_call_s=1.0
)


class TestCache:
    def test_round_trip_through_disk(self, cache):
        cache.put("k1", CHOICE)
        reloaded = AutotuneCache(cache.path)
        assert reloaded.get("k1") == CHOICE
        assert reloaded.keys() == ["k1"]
        assert len(reloaded) == 1

    def test_missing_file_reads_empty(self, tmp_path):
        assert AutotuneCache(tmp_path / "nope.json").get("k") is None

    def test_corrupt_file_reads_empty(self, cache):
        cache.path.write_text("{not json")
        assert cache.get("k") is None
        # ...and stays writable: the corrupt file is replaced atomically.
        cache.put("k", CHOICE)
        assert json.loads(cache.path.read_text())["entries"]["k"][
            "backend"
        ] == "blocked"

    def test_unwritable_path_degrades_to_memory(self, tmp_path):
        target = tmp_path / "not-a-dir.json" / "cache.json"
        tmp_path.joinpath("not-a-dir.json").write_text("a file, not a dir")
        cache = AutotuneCache(target)
        cache.put("k", CHOICE)  # must not raise
        assert cache.get("k") == CHOICE  # held in memory

    def test_clear_removes_file(self, cache):
        cache.put("k", CHOICE)
        assert cache.path.exists()
        cache.clear()
        assert not cache.path.exists() and len(cache) == 0

    def test_null_tile_survives_round_trip(self, cache):
        none_tile = TunedChoice(
            backend="numpy", tile=None, per_call_s=1.0, baseline_per_call_s=1.0
        )
        cache.put("k", none_tile)
        assert AutotuneCache(cache.path).get("k").tile is None

    def test_env_var_overrides_default_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv("AABFT_AUTOTUNE_CACHE", str(tmp_path / "env.json"))
        assert default_cache_path() == tmp_path / "env.json"


class TestAutotuner:
    def test_key_covers_shape_dtype_and_config(self, cache):
        tuner = Autotuner(cache, repeats=1)
        config = AbftConfig(block_size=32, p=3, scheme="sea")
        key = tuner.key(10, 20, 30, np.float32, config)
        assert key == "10x20x30/float32/sea/bs32/p3"

    def test_tune_persists_and_lookup_serves_cache(self, cache):
        reg = MetricsRegistry()
        tuner = Autotuner(cache, repeats=1, metrics_registry=reg)
        config = AbftConfig()
        choice = tuner.tune(96, 96, 48, config=config)
        assert isinstance(choice, TunedChoice)
        hit = tuner.lookup(96, 96, 48, np.float64, config)
        assert hit == choice
        counter = reg.counter(
            "abft_backend_autotune_total", labelnames=("event",)
        )
        assert counter.labels(event="tuned").get() == 1.0
        assert counter.labels(event="cache_hit").get() == 1.0

    def test_lookup_miss_is_counted_not_timed(self, cache):
        reg = MetricsRegistry()
        tuner = Autotuner(cache, repeats=1, metrics_registry=reg)
        assert tuner.lookup(7, 7, 7, np.float64, AbftConfig()) is None
        counter = reg.counter(
            "abft_backend_autotune_total", labelnames=("event",)
        )
        assert counter.labels(event="cache_miss").get() == 1.0

    def test_winner_never_slower_than_numpy_baseline(self, cache):
        tuner = Autotuner(cache, repeats=2)
        choice = tuner.tune(128, 96, 64)
        if choice.backend == "numpy":
            assert choice.per_call_s == choice.baseline_per_call_s
        else:
            # Hysteresis: a non-numpy winner must beat the reference.
            assert choice.per_call_s < choice.baseline_per_call_s
        assert choice.speedup >= 1.0

    def test_total_hysteresis_always_keeps_numpy(self, cache):
        # hysteresis -> 1 means nothing can beat the reference margin.
        tuner = Autotuner(cache, repeats=1, hysteresis=0.999)
        choice = tuner.tune(96, 64, 64)
        assert choice.backend == "numpy"

    def test_cached_winner_skips_timing_unless_forced(self, cache):
        tuner = Autotuner(cache, repeats=1)
        planted = TunedChoice(
            backend="numpy", tile=None, per_call_s=123.0,
            baseline_per_call_s=123.0,
        )
        cache.put(tuner.key(64, 64, 64, np.float64, AbftConfig()), planted)
        assert tuner.tune(64, 64, 64) == planted  # served, not re-timed
        retuned = tuner.tune(64, 64, 64, force=True)
        assert retuned.per_call_s < 123.0

    def test_candidate_tiles_subdivide_the_encoded_result(self, cache):
        tuner = Autotuner(cache, repeats=1)
        tiles = tuner.candidate_tiles(256, 256, 64)
        assert tiles and all(t < 256 + 256 // 64 for t in tiles)
        assert tuner.candidate_tiles(64, 64, 64) == [64]

    def test_validation(self, cache):
        with pytest.raises(ValueError):
            Autotuner(cache, repeats=0)
        with pytest.raises(ValueError):
            Autotuner(cache, hysteresis=1.5)


class TestFusionTuning:
    def test_fusion_fields_survive_cache_round_trip(self, tmp_path):
        path = tmp_path / "autotune.json"
        cache = AutotuneCache(path)
        planted = TunedChoice(
            backend="numpy", tile=None, per_call_s=1.0,
            baseline_per_call_s=1.0, fusion="fused", fused_tile_blocks=None,
            fused_per_call_s=0.8, separate_check_s=0.3,
        )
        cache.put("k", planted)
        reloaded = AutotuneCache(path).get("k")
        assert reloaded == planted
        assert reloaded.fusion == "fused"
        assert reloaded.fused_tile_blocks is None

    def test_decision_carries_timed_evidence(self, cache):
        tuner = Autotuner(cache, repeats=1)
        choice = tuner.tune(96, 64, 96)
        assert choice.fusion in ("fused", "separate")
        assert choice.fused_per_call_s is not None
        assert choice.separate_check_s is not None
        if choice.fusion == "fused":
            # Only where it wins: the fused evidence must beat the
            # separate GEMM + grid-check total.
            assert choice.fused_per_call_s < (
                choice.per_call_s + choice.separate_check_s
            )

    def test_total_hysteresis_keeps_separate(self, cache):
        tuner = Autotuner(cache, repeats=1, hysteresis=0.999)
        choice = tuner.tune(96, 64, 96)
        assert choice.fusion == "separate"
        assert choice.fused_tile_blocks is None

    def test_candidate_tile_blocks_subdivide_the_encoded_result(self, cache):
        tuner = Autotuner(cache, repeats=1)
        blocks = tuner.candidate_tile_blocks(256, 256, 64)
        assert blocks == [2]  # 2*65 < 260; 4*65 does not subdivide
        assert tuner.candidate_tile_blocks(64, 64, 64) == []

    def test_fusion_decisions_are_counted(self, cache):
        registry = MetricsRegistry()
        tuner = Autotuner(cache, repeats=1, metrics_registry=registry)
        tuner.tune(96, 64, 96)
        snap = registry.snapshot()["abft_fused_autotune_total"]
        decided = {v["labels"]["decision"]: v["value"] for v in snap["values"]}
        assert sum(decided.values()) == 1.0
        assert set(decided) <= {"fused", "separate", "unsupported"}
