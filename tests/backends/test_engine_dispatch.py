"""Engine-level backend dispatch: bitwise identity and never-silent fallback."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import (
    Backend,
    BackendCapabilities,
    BackendRegistry,
    BlockedBackend,
    NumpyBackend,
)
from repro.engine import AbftConfig, MatmulEngine
from repro.telemetry import MetricsRegistry


@pytest.fixture(autouse=True)
def clear_env_pin(monkeypatch):
    # These tests assert the negotiation outcome itself, so an ambient
    # AABFT_BACKEND pin (e.g. the blocked-backend CI job) must not leak in.
    monkeypatch.delenv("AABFT_BACKEND", raising=False)


def fresh_engine(backends=None) -> MatmulEngine:
    return MatmulEngine(registry=MetricsRegistry(), backends=backends)


def operands(m, n, q, dtype, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, (m, n)).astype(dtype)
    b = rng.uniform(-1, 1, (n, q)).astype(dtype)
    return a, b


class TestBitwiseIdentity:
    """The acceptance criterion: protected results are bitwise identical
    across the numpy and blocked backends, for any tile geometry —
    including padded edge blocks at non-multiple shapes."""

    @settings(max_examples=12, deadline=None)
    @given(
        m=st.integers(1, 150),
        n=st.integers(2, 96),  # inner dim >= p (the default top-p is 2)
        q=st.integers(1, 150),
        tile=st.sampled_from([None, 16, 33, 64, 200]),
        dtype=st.sampled_from([np.float64, np.float32]),
    )
    def test_numpy_vs_blocked_property(self, m, n, q, tile, dtype):
        a, b = operands(m, n, q, dtype)
        engine = fresh_engine()
        r_np = engine.matmul(
            a, b, config=AbftConfig(backend="numpy", gemm_tile=tile)
        )
        r_bl = engine.matmul(
            a, b, config=AbftConfig(backend="blocked", gemm_tile=tile)
        )
        assert r_bl.backend == "blocked" and r_bl.backend_fallback is None
        assert r_np.c_fc.tobytes() == r_bl.c_fc.tobytes()
        assert r_np.c.tobytes() == r_bl.c.tobytes()
        assert r_np.report.num_failed == r_bl.report.num_failed

    def test_default_tile_matches_historical_bytes(self):
        # gemm_tile=None is one full-result tile: exactly the bytes the
        # engine produced before backends existed (a single BLAS call).
        a, b = operands(130, 70, 95, np.float64)
        engine = fresh_engine()
        r_default = engine.matmul(a, b)
        r_blocked = engine.matmul(a, b, config=AbftConfig(backend="blocked"))
        assert r_default.backend == "numpy"
        assert r_default.c_fc.tobytes() == r_blocked.c_fc.tobytes()

    def test_batch_modes_match_backend_dispatch(self):
        from repro.engine import ExecutionPolicy

        a, b = operands(96, 64, 80, np.float64)
        cfg = AbftConfig(backend="blocked", gemm_tile=32)
        engine = fresh_engine()
        single = engine.matmul(a, b, config=cfg)
        for mode in ("serial", "fused", "pipelined"):
            results = engine.execute_batch(
                [(a, b), (a, b)],
                policy=ExecutionPolicy(mode=mode),
                config=cfg,
            )
            assert [r.backend for r in results] == ["blocked", "blocked"]
            assert all(
                r.c_fc.tobytes() == single.c_fc.tobytes() for r in results
            )


class FailsAtDispatch(Backend):
    """Passes negotiation, then dies inside matmul."""

    @property
    def name(self):
        return "flaky"

    def capabilities(self):
        return BackendCapabilities(name="flaky")

    def matmul(self, a, b, *, out=None, tile=None, pool=None):
        raise RuntimeError("device lost")


def registry_with_flaky() -> BackendRegistry:
    registry = BackendRegistry()
    registry.register("numpy", NumpyBackend)
    registry.register("blocked", BlockedBackend)
    registry.register("flaky", FailsAtDispatch)
    return registry


class TestNeverSilentFallback:
    def test_selection_fallback_is_recorded_and_counted(self):
        a, b = operands(64, 48, 50, np.float64)
        reg = MetricsRegistry()
        engine = MatmulEngine(registry=reg)
        result = engine.matmul(a, b, config=AbftConfig(backend="cupy"))
        if result.backend_fallback is None:  # pragma: no cover - CUDA host
            pytest.skip("cupy is available here")
        assert result.backend == "numpy"
        assert "cupy" in result.backend_fallback
        fallbacks = reg.counter(
            "abft_backend_fallbacks_total", labelnames=("backend", "reason")
        )
        assert (
            fallbacks.labels(backend="cupy", reason="selection").get() == 1.0
        )

    def test_dispatch_failure_retries_on_numpy_same_bytes(self):
        a, b = operands(72, 40, 66, np.float64)
        reg = MetricsRegistry()
        engine = MatmulEngine(registry=reg, backends=registry_with_flaky())
        cfg = AbftConfig(backend="flaky", gemm_tile=32)
        result = engine.matmul(a, b, config=cfg)
        assert result.backend == "numpy"
        assert "device lost" in result.backend_fallback
        fallbacks = reg.counter(
            "abft_backend_fallbacks_total", labelnames=("backend", "reason")
        )
        assert (
            fallbacks.labels(backend="flaky", reason="dispatch").get() == 1.0
        )
        # The numpy retry keeps the SAME tile: bytes stay canonical.
        reference = engine.matmul(
            a, b, config=AbftConfig(backend="numpy", gemm_tile=32)
        )
        assert result.c_fc.tobytes() == reference.c_fc.tobytes()

    def test_dispatch_counter_tracks_backends(self):
        a, b = operands(64, 48, 50, np.float64)
        reg = MetricsRegistry()
        engine = MatmulEngine(registry=reg)
        engine.matmul(a, b)
        engine.matmul(a, b, config=AbftConfig(backend="blocked"))
        dispatch = reg.counter(
            "abft_backend_dispatch_total", labelnames=("backend",)
        )
        assert dispatch.labels(backend="numpy").get() == 1.0
        assert dispatch.labels(backend="blocked").get() == 1.0

    def test_env_pin_routes_auto_configs(self, monkeypatch):
        monkeypatch.setenv("AABFT_BACKEND", "blocked")
        a, b = operands(64, 48, 50, np.float64)
        result = fresh_engine().matmul(a, b)
        assert result.backend == "blocked"

    def test_autotuned_choice_feeds_the_plan(self, tmp_path):
        from repro.backends import Autotuner, AutotuneCache, TunedChoice

        cache = AutotuneCache(tmp_path / "cache.json")
        reg = MetricsRegistry()
        tuner = Autotuner(cache, repeats=1, metrics_registry=reg)
        engine = MatmulEngine(registry=reg, autotuner=tuner)
        a, b = operands(96, 64, 96, np.float64)
        # Plant a blocked winner for exactly this signature.
        key = tuner.key(96, 64, 96, np.float64, engine.config)
        cache.put(
            key,
            TunedChoice(
                backend="blocked", tile=64, per_call_s=0.5,
                baseline_per_call_s=1.0,
            ),
        )
        result = engine.matmul(a, b)
        assert result.backend == "blocked"
        assert result.backend_fallback is None
        # Bitwise: the tuned tile is part of the plan, and numpy at the
        # same tile reproduces the bytes.
        reference = fresh_engine().matmul(
            a, b, config=AbftConfig(backend="numpy", gemm_tile=64)
        )
        assert result.c_fc.tobytes() == reference.c_fc.tobytes()

    def test_engine_autotune_entry_point(self, tmp_path):
        from repro.backends import Autotuner, AutotuneCache

        tuner = Autotuner(AutotuneCache(tmp_path / "c.json"), repeats=1)
        engine = MatmulEngine(registry=MetricsRegistry(), autotuner=tuner)
        choice = engine.autotune(64, 64, 64)
        assert choice.baseline_per_call_s > 0
        assert (
            tuner.lookup(64, 64, 64, np.float64, engine.config) == choice
        )
