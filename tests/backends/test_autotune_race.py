"""AutotuneCache cross-process write safety (read-merge-write + flock).

The regression this guards: before the file lock, concurrent workers
each held an in-memory copy of the cache and rewrote the whole file on
``put``, so two processes tuning different keys clobbered each other's
winners despite per-write atomicity (last writer won).  With
merge-on-write under the lock, every key written by every process must
survive.
"""

from __future__ import annotations

import multiprocessing as mp

from repro.backends import AutotuneCache, TunedChoice

KEYS_PER_PROCESS = 20


def _writer(path, worker: int, barrier) -> None:
    cache = AutotuneCache(path)
    # Warm the in-memory copy *before* the other process writes anything,
    # reproducing the stale-snapshot half of the race.
    cache.get("absent")
    barrier.wait()
    for i in range(KEYS_PER_PROCESS):
        cache.put(
            f"w{worker}-k{i}",
            TunedChoice(
                backend="numpy",
                tile=None,
                per_call_s=0.001 * (i + 1),
                baseline_per_call_s=0.001 * (i + 1),
            ),
        )


class TestCrossProcessWrites:
    def test_two_racing_processes_lose_no_keys(self, tmp_path):
        path = tmp_path / "autotune.json"
        ctx = mp.get_context("spawn")
        barrier = ctx.Barrier(2)
        workers = [
            ctx.Process(target=_writer, args=(path, w, barrier))
            for w in range(2)
        ]
        for p in workers:
            p.start()
        for p in workers:
            p.join(timeout=120)
            assert p.exitcode == 0
        merged = AutotuneCache(path)
        assert len(merged) == 2 * KEYS_PER_PROCESS
        for w in range(2):
            for i in range(KEYS_PER_PROCESS):
                assert merged.get(f"w{w}-k{i}") is not None

    def test_put_merges_winners_persisted_by_other_processes(self, tmp_path):
        path = tmp_path / "autotune.json"
        ours = AutotuneCache(path)
        ours.get("absent")  # stale in-memory snapshot: empty
        theirs = AutotuneCache(path)
        choice = TunedChoice(
            backend="numpy", tile=None, per_call_s=1.0, baseline_per_call_s=1.0
        )
        theirs.put("theirs", choice)
        ours.put("ours", choice)
        # Pre-fix, "ours" rewrote the file from its stale snapshot and
        # dropped "theirs".
        assert set(AutotuneCache(path).keys()) == {"ours", "theirs"}
        # ...and the merge landed in our in-memory view too.
        assert ours.get("theirs") == choice
