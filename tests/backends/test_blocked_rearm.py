"""The blocked backend's determinism self-check re-arms on pool resize.

The cached verdict describes one executor configuration; resizing
``max_workers`` must tear down the pool and clear the verdict so the next
``availability()`` call probes the new configuration instead of trusting
a stale one.
"""

from __future__ import annotations

import pytest

from repro.backends.blocked import BlockedBackend


class TestSelfCheckRearm:
    def test_resize_clears_the_cached_verdict_and_reprobes(self):
        backend = BlockedBackend(max_workers=2)
        ok, reason = backend.availability()
        assert ok and reason is None
        assert backend._self_check is not None
        backend.max_workers = 3
        assert backend._self_check is None  # re-armed
        ok, reason = backend.availability()
        assert ok and reason is None

    def test_same_value_keeps_the_verdict(self):
        backend = BlockedBackend(max_workers=2)
        backend.availability()
        sentinel = backend._self_check
        backend.max_workers = 2
        assert backend._self_check is sentinel

    def test_resize_tears_down_the_executor(self):
        backend = BlockedBackend(max_workers=2)
        backend.availability()
        assert backend._executor is not None
        backend.max_workers = 4
        assert backend._executor is None
        assert backend.max_workers == 4

    def test_invalid_resize_rejected(self):
        backend = BlockedBackend(max_workers=2)
        with pytest.raises(ValueError):
            backend.max_workers = 0
