"""ClusterFrontend end-to-end: routing, accounting, worker-death recovery.

These tests spawn real worker processes (``spawn`` start method), so the
shapes are small and one warm cluster is shared per module where the
test does not need to damage it.
"""

import threading
import time

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterFrontend
from repro.serve import ServeConfig, VerificationStatus, run_loadgen
from repro.telemetry import MetricsRegistry


def counter_total(registry, name):
    snapshot = registry.snapshot()
    if name not in snapshot:
        return 0.0
    return sum(row["value"] for row in snapshot[name]["values"])


@pytest.fixture(scope="module")
def cluster():
    registry = MetricsRegistry()
    config = ClusterConfig(
        serve=ServeConfig(),
        num_workers=2,
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=0.5,
    )
    frontend = ClusterFrontend(config, registry=registry)
    frontend.wait_ready(timeout=60.0)
    yield frontend
    frontend.stop(drain=True)


class TestServing:
    def test_results_are_correct_and_fully_verified(self, cluster):
        rng = np.random.default_rng(11)
        a = rng.uniform(-1, 1, (48, 48))
        pairs = []
        for _ in range(24):
            b = rng.uniform(-1, 1, (48, 8))
            pairs.append((cluster.submit(a, b), a @ b))
        for fut, ref in pairs:
            response = fut.result(timeout=60.0)
            assert response.status is VerificationStatus.FULL
            assert np.allclose(response.c, ref)

    def test_routing_and_liveness_telemetry(self, cluster):
        assert cluster.alive_workers == 2
        routed = counter_total(cluster.registry, "abft_cluster_routing_total")
        assert routed >= 24
        transfers = counter_total(
            cluster.registry, "abft_cluster_operand_transfers_total"
        )
        assert transfers >= 2 * 24

    def test_mirrored_serve_counters_move(self, cluster):
        served = counter_total(cluster.registry, "abft_serve_requests_total")
        assert served >= 24
        assert counter_total(cluster.registry, "abft_serve_dropped_total") == 0

    def test_distinct_plan_shapes_exercise_the_ring(self, cluster):
        rng = np.random.default_rng(13)
        futures = []
        for m in (32, 40, 48, 56, 64):
            a = rng.uniform(-1, 1, (m, 32))
            b = rng.uniform(-1, 1, (32, 8))
            futures.append((cluster.submit(a, b), a @ b))
        for fut, ref in futures:
            response = fut.result(timeout=60.0)
            assert response.ok
            assert np.allclose(response.c, ref)


class TestShutdown:
    def test_post_shutdown_submissions_reject_explicitly(self):
        config = ClusterConfig(
            num_workers=1,
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=0.5,
        )
        frontend = ClusterFrontend(config, registry=MetricsRegistry())
        frontend.wait_ready(timeout=60.0)
        frontend.stop(drain=True)
        response = frontend.submit(np.ones((8, 8)), np.ones((8, 2))).result(
            timeout=10.0
        )
        assert response.status is VerificationStatus.REJECTED
        assert response.rejected_reason == "shutdown"


class TestWorkerDeathRecovery:
    def test_mid_load_kill_loses_nothing(self):
        """A worker SIGKILLed mid-load must cost zero requests.

        In-flight work re-queues to survivors, the worker restarts, the
        loadgen's closed-loop accounting reconciles, and not a single
        response is silently wrong.
        """
        registry = MetricsRegistry()
        config = ClusterConfig(
            serve=ServeConfig(max_queue_depth=256),
            num_workers=2,
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=0.5,
        )
        built = {}

        def factory():
            frontend = ClusterFrontend(config, registry=registry)
            frontend.wait_ready(timeout=60.0)
            built["frontend"] = frontend
            return frontend

        killed = {}

        def killer():
            deadline = time.monotonic() + 60.0
            while "frontend" not in built and time.monotonic() < deadline:
                time.sleep(0.002)
            frontend = built.get("frontend")
            if frontend is None:
                return
            # Wait for real in-flight work so the kill actually strands
            # requests on the victim.
            while frontend.pending_count < 4 and time.monotonic() < deadline:
                time.sleep(0.002)
            killed["shard"] = frontend.kill_worker()

        thread = threading.Thread(target=killer)
        thread.start()
        try:
            result = run_loadgen(
                client_factory=factory,
                requests=192,
                concurrency=16,
                m=64,
                n=64,
                q=8,
                seed=5,
                verify_results=True,
            )
        finally:
            thread.join(timeout=60.0)

        assert killed.get("shard") is not None, "kill never fired"
        assert result.ok, result.violations
        assert result.dropped == 0
        assert result.silent_wrong == 0
        assert result.served + result.rejected == result.submitted
        restarts = counter_total(
            registry, "abft_cluster_worker_restarts_total"
        )
        assert restarts >= 1
        assert result.requeued == counter_total(
            registry, "abft_cluster_requeued_total"
        )
