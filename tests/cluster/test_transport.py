"""Shared-memory operand transport: publish/fetch, reuse, lifetime."""

import gc

import numpy as np
import pytest

from repro.cluster.transport import OperandPublisher, OperandReceiver

THRESHOLD = 1024


@pytest.fixture
def publisher():
    pub = OperandPublisher(THRESHOLD)
    yield pub
    pub.close()


@pytest.fixture
def receiver():
    rec = OperandReceiver()
    yield rec
    rec.close()


class TestPublish:
    def test_small_operands_travel_inline(self, publisher, receiver):
        small = np.arange(8, dtype=np.float64).reshape(2, 4)
        payload = publisher.publish(small)
        assert payload[0] == "inline"
        assert publisher.active_segments == 0
        np.testing.assert_array_equal(receiver.fetch(payload), small)

    def test_large_operands_travel_via_shared_memory(self, publisher, receiver):
        large = np.random.default_rng(0).uniform(-1, 1, (64, 64))
        payload = publisher.publish(large)
        assert payload[0] == "shm"
        assert publisher.active_segments == 1
        view = receiver.fetch(payload)
        np.testing.assert_array_equal(view, large)
        assert not view.flags.writeable

    def test_same_array_object_reuses_one_segment(self, publisher):
        shared = np.random.default_rng(1).uniform(-1, 1, (64, 64))
        p1 = publisher.publish(shared)
        p2 = publisher.publish(shared)
        assert p1[1] == p2[1]
        assert publisher.active_segments == 1

    def test_distinct_arrays_get_distinct_segments(self, publisher):
        rng = np.random.default_rng(2)
        p1 = publisher.publish(rng.uniform(-1, 1, (64, 64)))
        p2 = publisher.publish(rng.uniform(-1, 1, (64, 64)))
        assert p1[1] != p2[1]


class TestLifetime:
    def test_segment_freed_after_release_and_collection(self, publisher):
        array = np.random.default_rng(3).uniform(-1, 1, (64, 64))
        payload = publisher.publish(array)
        publisher.release(payload)
        assert publisher.active_segments == 1  # source still alive
        del array
        gc.collect()
        assert publisher.active_segments == 0

    def test_inflight_reference_pins_segment(self, publisher):
        array = np.random.default_rng(4).uniform(-1, 1, (64, 64))
        payload = publisher.publish(array)
        del array
        gc.collect()
        assert publisher.active_segments == 1  # one in-flight reference
        publisher.release(payload)
        assert publisher.active_segments == 0

    def test_release_of_inline_payload_is_a_noop(self, publisher):
        publisher.release(("inline", np.zeros(2)))

    def test_close_unlinks_everything(self):
        pub = OperandPublisher(THRESHOLD)
        keep = np.random.default_rng(5).uniform(-1, 1, (64, 64))
        pub.publish(keep)
        pub.close()
        assert pub.active_segments == 0


class TestReceiverCache:
    def test_cache_hit_returns_same_view(self, publisher, receiver):
        shared = np.random.default_rng(6).uniform(-1, 1, (64, 64))
        payload = publisher.publish(shared)
        assert receiver.fetch(payload) is receiver.fetch(payload)

    def test_eviction_keeps_most_recent(self, publisher):
        rec = OperandReceiver(max_entries=1)
        try:
            rng = np.random.default_rng(7)
            a = rng.uniform(-1, 1, (64, 64))
            b = rng.uniform(-1, 1, (64, 64))
            pa, pb = publisher.publish(a), publisher.publish(b)
            rec.fetch(pa)
            rec.fetch(pb)
            np.testing.assert_array_equal(rec.fetch(pb), b)
        finally:
            rec.close()

    def test_unknown_payload_kind_rejected(self, receiver):
        with pytest.raises(ValueError, match="unknown operand payload"):
            receiver.fetch(("carrier_pigeon", "x"))

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError, match="max_entries"):
            OperandReceiver(max_entries=0)
