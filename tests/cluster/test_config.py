"""ClusterConfig validation."""

import pytest

from repro.cluster import ClusterConfig
from repro.errors import ConfigurationError
from repro.serve import ServeConfig


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = ClusterConfig()
        assert cfg.num_workers == 2
        assert isinstance(cfg.serve, ServeConfig)

    def test_serve_must_be_a_serve_config(self):
        with pytest.raises(ConfigurationError, match="ServeConfig"):
            ClusterConfig(serve={"max_batch_size": 8})

    @pytest.mark.parametrize(
        ("field", "value", "match"),
        [
            ("num_workers", 0, "num_workers"),
            ("vnodes", 0, "vnodes"),
            ("max_shard_inflight", 0, "max_shard_inflight"),
            ("shm_min_bytes", -1, "shm_min_bytes"),
            ("heartbeat_interval_s", 0.0, "heartbeat_interval_s"),
            ("max_restarts", -1, "max_restarts"),
            ("start_method", "threads", "start_method"),
            ("drain_timeout_s", -1.0, "drain_timeout_s"),
        ],
    )
    def test_field_bounds(self, field, value, match):
        with pytest.raises(ConfigurationError, match=match):
            ClusterConfig(**{field: value})

    def test_heartbeat_timeout_must_exceed_interval(self):
        with pytest.raises(ConfigurationError, match="exceed"):
            ClusterConfig(heartbeat_interval_s=1.0, heartbeat_timeout_s=1.0)

    @pytest.mark.parametrize("depth", [0, 513])
    def test_spill_depth_bounded_by_inflight(self, depth):
        with pytest.raises(ConfigurationError, match="spill_queue_depth"):
            ClusterConfig(max_shard_inflight=512, spill_queue_depth=depth)

    def test_replace_revalidates(self):
        cfg = ClusterConfig()
        assert cfg.replace(num_workers=5).num_workers == 5
        with pytest.raises(ConfigurationError, match="num_workers"):
            cfg.replace(num_workers=0)
