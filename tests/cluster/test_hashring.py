"""Consistent-hash ring: determinism, walk semantics, rehoming."""

import pytest

from repro.cluster import HashRing

KEYS = [((64, 64), (64, 8), "float64", None, i) for i in range(200)]


class TestValidation:
    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(vnodes=0)

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.node_for("anything") is None
        assert ring.preference("anything") == []
        assert len(ring) == 0


class TestPlacement:
    def test_deterministic_across_instances(self):
        a = HashRing(range(4))
        b = HashRing(range(4))
        for key in KEYS:
            assert a.node_for(key) == b.node_for(key)

    def test_preference_walk_covers_all_nodes_once(self):
        ring = HashRing(range(4))
        for key in KEYS[:50]:
            walk = ring.preference(key)
            assert sorted(walk) == [0, 1, 2, 3]
            assert walk[0] == ring.node_for(key)

    def test_add_is_idempotent(self):
        ring = HashRing([0, 1])
        before = [ring.node_for(k) for k in KEYS]
        ring.add(1)
        assert [ring.node_for(k) for k in KEYS] == before
        assert len(ring) == 2

    def test_keys_spread_across_nodes(self):
        ring = HashRing(range(4))
        owners = {ring.node_for(k) for k in KEYS}
        assert owners == {0, 1, 2, 3}


class TestRehoming:
    def test_removal_only_moves_the_dead_nodes_keys(self):
        ring = HashRing(range(4))
        before = {k: ring.node_for(k) for k in KEYS}
        ring.remove(2)
        for key, owner in before.items():
            if owner != 2:
                assert ring.node_for(key) == owner
            else:
                assert ring.node_for(key) != 2

    def test_dead_node_keys_move_to_next_walk_entry(self):
        ring = HashRing(range(4))
        walks = {k: ring.preference(k) for k in KEYS}
        ring.remove(2)
        for key, walk in walks.items():
            if walk[0] == 2:
                assert ring.node_for(key) == walk[1]

    def test_restart_restores_original_placement(self):
        ring = HashRing(range(4))
        before = {k: ring.node_for(k) for k in KEYS}
        ring.remove(1)
        ring.add(1)
        assert {k: ring.node_for(k) for k in KEYS} == before

    def test_remove_unknown_node_is_a_noop(self):
        ring = HashRing(range(2))
        before = {k: ring.node_for(k) for k in KEYS}
        ring.remove(99)
        assert {k: ring.node_for(k) for k in KEYS} == before
