"""End-to-end workflows across the whole stack."""

import numpy as np
import pytest

from repro import (
    AABFTPipeline,
    CampaignConfig,
    FaultCampaign,
    FaultInjector,
    FaultSite,
    FaultSpec,
    GpuSimulator,
    aabft_matmul,
    correct_single_error,
)
from repro.fp.errorvec import single_bit_vector
from repro.workloads import SUITE_DYNAMIC_K65536, SUITE_UNIT


class TestProtectDetectCorrect:
    """The full user story: multiply, get hit, detect, locate, correct."""

    def test_full_cycle_on_simulator(self, rng):
        a = rng.uniform(-1, 1, (128, 128))
        b = rng.uniform(-1, 1, (128, 128))
        sim = GpuSimulator()
        pipeline = AABFTPipeline(sim, block_size=64, p=2)

        spec = FaultSpec(
            sm_id=2,
            site=FaultSite.INNER_MUL,
            module_row=10,
            module_col=20,
            error_vector=single_bit_vector("exponent", rng),
            k_injection=64,
        )
        result = pipeline.run(a, b, injector=FaultInjector(spec, rng))
        assert result.detected
        assert len(result.report.located_errors) == 1

        fix = correct_single_error(
            result.c_fc,
            result.report,
            result.row_layout,
            result.col_layout,
            result.provider,
        )
        corrected_data = fix.corrected[
            np.ix_(
                result.row_layout.all_data_indices(),
                result.col_layout.all_data_indices(),
            )
        ]
        assert np.allclose(corrected_data, a @ b, rtol=1e-10)

    def test_repeated_protected_multiplications_reuse_simulator(self, rng):
        sim = GpuSimulator()
        pipeline = AABFTPipeline(sim, block_size=32)
        for _ in range(3):
            a = rng.uniform(-1, 1, (64, 64))
            b = rng.uniform(-1, 1, (64, 64))
            result = pipeline.run(a, b)
            assert not result.detected
            assert np.allclose(result.c, a @ b)


class TestSchemeComparisons:
    """The paper's comparative claims hold end to end."""

    def test_detection_hierarchy_on_unit_inputs(self):
        config = CampaignConfig(
            n=256, suite=SUITE_UNIT, num_injections=150, block_size=64, seed=42
        )
        result = FaultCampaign(config).run()
        assert result.false_positive_free == {"aabft": True, "sea": True}
        assert result.detection_rate("aabft") >= result.detection_rate("sea")
        assert result.detection_rate("aabft") > 0.8

    def test_detection_on_high_dynamic_inputs(self):
        """Figure 4's third panel uses kappa = 65536 inputs."""
        config = CampaignConfig(
            n=128,
            suite=SUITE_DYNAMIC_K65536,
            num_injections=120,
            block_size=64,
            seed=43,
        )
        result = FaultCampaign(config).run()
        assert result.false_positive_free["aabft"]
        assert result.detection_rate("aabft") >= result.detection_rate("sea")

    def test_size_independence_of_aabft_detection(self):
        """Paper: A-ABFT's detection 'does not depend on the size of the
        input matrices'; allow a few points of noise."""
        rates = []
        for n in (128, 256, 384):
            config = CampaignConfig(
                n=n, suite=SUITE_UNIT, num_injections=120, block_size=64, seed=44
            )
            rates.append(FaultCampaign(config).run().detection_rate("aabft"))
        assert max(rates) - min(rates) < 0.15

    def test_multibit_flips_same_trend(self):
        """3-bit neighbourhood flips: same qualitative behaviour as 1-bit
        (paper: 'the trend in the results was consistent')."""
        config = CampaignConfig(
            n=128,
            suite=SUITE_UNIT,
            num_injections=90,
            block_size=64,
            num_flips=3,
            seed=45,
        )
        result = FaultCampaign(config).run()
        assert result.detection_rate("aabft") >= result.detection_rate("sea")


class TestIterativeSolverScenario:
    """ABFT-protected matmul inside a small iterative computation — the
    scientific-computing use case the paper motivates."""

    def test_protected_power_iteration(self, rng):
        n = 64
        m = rng.uniform(0.0, 1.0, (n, n))
        m = (m + m.T) / 2  # symmetric, dominant eigenvalue real
        v = np.ones((n, 1))
        for _ in range(20):
            result = aabft_matmul(m, v, block_size=32)
            assert not result.detected
            v = result.c
            v /= np.linalg.norm(v)
        rayleigh = float((v.T @ (m @ v))[0, 0])
        assert rayleigh == pytest.approx(np.linalg.eigvalsh(m)[-1], rel=1e-6)
