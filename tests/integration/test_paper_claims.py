"""Executable checklist of the paper's headline claims.

One test per claim, each phrased as the paper states it and checked with
this library's measurements (quick-scale sizes; the full-size confirmations
live in EXPERIMENTS.md).  This module is the reproduction's summary: if it
passes, the paper's story holds in this implementation.
"""

import numpy as np
import pytest

from repro.experiments.bound_quality import measure_bound_quality
from repro.experiments.coverage import measure_coverage
from repro.experiments.table1 import run_table1
from repro.faults.campaign import CampaignConfig, FaultCampaign
from repro.workloads import SUITE_DYNAMIC_K65536, SUITE_UNIT


class TestAbstractClaims:
    """'...determines rounding error bounds autonomously at runtime with
    low performance overhead and high error coverage.'"""

    def test_autonomous_no_calibration_no_user_input(self, rng):
        """The scheme consumes nothing but the operands."""
        from repro import aabft_matmul

        a = rng.uniform(-1, 1, (128, 128))
        b = rng.uniform(-1, 1, (128, 128))
        result = aabft_matmul(a, b)  # no tolerances, no calibration data
        assert not result.detected

    def test_low_performance_overhead(self):
        """Conclusion: 'peak double-precision floating-point performance
        values of over 900 GFLOPS' (modelled here)."""
        rows = run_table1((8192,))
        assert rows[0].aabft > 900.0

    def test_overhead_as_low_as_claimed(self):
        """Section VI-A: 'the overhead of A-ABFT can be as low as 13.8%'."""
        rows = run_table1((8192,))
        assert rows[0].aabft_overhead < 0.15


class TestBoundQualityClaims:
    """Section VI-B / conclusion."""

    @pytest.fixture(scope="class")
    def measurement(self):
        rng = np.random.default_rng(2014)
        return measure_bound_quality(SUITE_UNIT, 512, rng, num_samples=64)

    def test_two_orders_of_magnitude_closer(self, measurement):
        """'The determined rounding error bounds are up to two orders of
        magnitude closer to the actual rounding error, compared to other
        state of the art approaches.'"""
        ratio = measurement.sea_tightness / measurement.aabft_tightness
        assert ratio > 30.0  # ~1.5-2 decades

    def test_bounds_are_valid_upper_bounds(self, measurement):
        assert measurement.avg_rounding_error < measurement.avg_aabft_bound

    def test_conservative_three_sigma_still_covers(self):
        """Section VI-B reports the 'worst case' 3-sigma setting; coverage
        of the actual errors must be total."""
        rng = np.random.default_rng(7)
        row = measure_coverage(SUITE_UNIT, 256, rng, num_samples=64)
        assert row.covered_at(3.0) == 1.0


class TestDetectionClaims:
    """Section VI-C / conclusion."""

    @pytest.fixture(scope="class")
    def campaign_result(self):
        config = CampaignConfig(
            n=512,
            suite=SUITE_UNIT,
            num_injections=300,
            block_size=64,
            seed=2014,
        )
        return FaultCampaign(config).run()

    def test_error_detection_rates_well_over_ninety_percent(self, campaign_result):
        """'...leads to error detection rates of well over 90%.'  (Figure 4
        shows per-operation rates mostly at or above 90; we assert the
        aggregate near that level.)"""
        assert campaign_result.detection_rate("aabft") > 0.85

    def test_aabft_beats_sea_everywhere(self, campaign_result):
        from repro.faults.sampling import ALL_SITES

        for site in ALL_SITES:
            assert campaign_result.detection_rate(
                "aabft", site
            ) >= campaign_result.detection_rate("sea", site)

    def test_sign_and_exponent_fully_detected(self):
        """'A-ABFT, as well as SEA-ABFT detected all faults that have been
        injected into the sign bit or the exponent.'"""
        config = CampaignConfig(
            n=256,
            suite=SUITE_UNIT,
            num_injections=150,
            block_size=64,
            fields=("sign", "exponent"),
            seed=5,
        )
        result = FaultCampaign(config).run()
        assert result.detection_rate("aabft") == 1.0
        assert result.detection_rate("sea") == 1.0

    def test_detection_size_independent(self):
        """'...the error detection capability of A-ABFT is not influenced
        by the size of the processed matrices.'"""
        rates = []
        for n in (128, 256, 512):
            config = CampaignConfig(
                n=n, suite=SUITE_UNIT, num_injections=200, block_size=64, seed=6
            )
            rates.append(FaultCampaign(config).run().detection_rate("aabft"))
        assert max(rates) - min(rates) < 0.12

    def test_no_false_positives_on_detection_inputs(self):
        """Detection rates are meaningless if clean runs flag; they never
        do, on any of the detection input classes."""
        for suite in (SUITE_UNIT, SUITE_DYNAMIC_K65536):
            config = CampaignConfig(
                n=128, suite=suite, num_injections=1, block_size=64, seed=8
            )
            campaign = FaultCampaign(config)
            campaign.prepare()
            assert campaign.fault_free_pass["aabft"], suite.name


class TestTableOneClaims:
    """Section VI-A's comparative performance story (modelled)."""

    @pytest.fixture(scope="class")
    def rows(self):
        return {r.n: r for r in run_table1()}

    def test_aabft_approaches_fixed_abft(self, rows):
        """'...the gap between both approaches becomes smaller and smaller
        with increasing matrix dimensions.'"""
        gaps = [1.0 - rows[n].aabft / rows[n].abft for n in (512, 2048, 8192)]
        assert gaps[0] > gaps[1] > gaps[2]

    def test_exceeds_tmr_and_sea_by_far_at_scale(self, rows):
        """'...exceeding the performance of TMR and SEA-ABFT by far,
        especially for larger matrix dimensions.'"""
        big = rows[8192]
        assert big.aabft > 1.25 * big.sea
        assert big.aabft > 2.5 * big.tmr

    def test_tmr_overhead_becomes_clearly_visible(self, rows):
        """'For growing matrix dimensions, the expected overhead of TMR
        becomes clearly visible.'"""
        assert rows[8192].tmr / rows[8192].unprotected < 0.4
