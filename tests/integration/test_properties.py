"""Property-based cross-module invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.abft.multiply import aabft_matmul
from repro.abft.pipeline import AABFTPipeline
from repro.faults.campaign import CampaignConfig, FaultCampaign
from repro.gpusim.simulator import GpuSimulator
from repro.workloads import SUITE_UNIT

slow_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestHostApiProperties:
    @slow_settings
    @given(
        m_blocks=st.integers(1, 3),
        n_extra=st.integers(0, 60),
        q_blocks=st.integers(1, 3),
        bs=st.sampled_from([8, 16, 32]),
        scale=st.sampled_from([1.0, 100.0, 1e-3]),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_protected_product_always_correct_and_clean(
        self, m_blocks, n_extra, q_blocks, bs, scale, seed
    ):
        """For any shape, block size and scale *within the model's
        validity domain* (inner dimension >= block size; see
        docs/THEORY.md on the reference-summation term): the protected
        product equals numpy's and fault-free checks pass."""
        n = bs + n_extra
        rng = np.random.default_rng(seed)
        a = rng.uniform(-scale, scale, (m_blocks * bs, n))
        b = rng.uniform(-scale, scale, (n, q_blocks * bs))
        result = aabft_matmul(a, b, block_size=bs)
        assert np.allclose(result.c, a @ b, rtol=1e-12, atol=1e-300)
        assert not result.detected

    @slow_settings
    @given(
        seed=st.integers(0, 2**31 - 1),
        delta_exp=st.integers(-8, 4),
        row=st.integers(0, 65),
        col=st.integers(0, 65),
    )
    def test_detection_threshold_consistency(self, seed, delta_exp, row, col):
        """Any corruption strictly above the element's column *and* row
        tolerances is detected; anything below both passes."""
        rng = np.random.default_rng(seed)
        a = rng.uniform(-1, 1, (64, 64))
        b = rng.uniform(-1, 1, (64, 64))
        result = aabft_matmul(a, b, block_size=32)
        from repro.abft.checking import check_partitioned

        delta = 10.0**delta_exp
        col_eps = result.provider.column_epsilon(
            row // 33, col
        )
        row_eps = result.provider.row_epsilon(row, col // 33)
        corrupted = result.c_fc.copy()
        corrupted[row, col] += delta
        report = check_partitioned(
            corrupted, result.row_layout, result.col_layout, result.provider
        )
        # Fault-free discrepancies are far below eps, so the corruption
        # dominates: detection iff delta clearly exceeds a tolerance.
        if delta > 4 * max(col_eps, row_eps):
            assert report.error_detected
        if delta < 0.25 * min(col_eps, row_eps):
            assert not report.error_detected


class TestPipelineEquivalenceProperty:
    @slow_settings
    @given(
        blocks=st.integers(1, 3),
        bs=st.sampled_from([16, 32]),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_simulated_pipeline_matches_host(self, blocks, bs, seed):
        """The kernel-by-kernel simulated pipeline and the direct host
        implementation agree on results and on every tolerance."""
        rng = np.random.default_rng(seed)
        n = blocks * bs
        a = rng.uniform(-1, 1, (n, n))
        b = rng.uniform(-1, 1, (n, n))
        sim = GpuSimulator()
        piped = AABFTPipeline(sim, block_size=bs, p=2).run(a, b)
        host = aabft_matmul(a, b, block_size=bs, p=2)
        assert np.allclose(piped.c, host.c, rtol=1e-13)
        assert piped.detected == host.detected
        for blk in range(piped.row_layout.num_blocks):
            assert piped.provider.column_epsilon(blk, 0) == pytest.approx(
                host.provider.column_epsilon(blk, 0), rel=1e-12
            )


class TestCampaignProperties:
    def test_detection_monotone_in_omega(self):
        """Loosening omega can only reduce detections (same faults)."""
        rates = []
        for omega in (1.0, 3.0, 6.0):
            config = CampaignConfig(
                n=128,
                suite=SUITE_UNIT,
                num_injections=100,
                block_size=64,
                omega=omega,
                seed=99,
            )
            result = FaultCampaign(config).run()
            # Use raw detections (not per-critical rates) since the
            # critical ground truth also depends on omega.
            detected = sum(1 for r in result.records if r.detected["aabft"])
            rates.append(detected)
        assert rates[0] >= rates[1] >= rates[2]

    def test_campaign_reproducible(self):
        config = CampaignConfig(
            n=128, suite=SUITE_UNIT, num_injections=50, block_size=64, seed=123
        )
        r1 = FaultCampaign(config).run()
        r2 = FaultCampaign(config).run()
        assert [x.delta for x in r1.records] == [x.delta for x in r2.records]
        assert [x.detected for x in r1.records] == [x.detected for x in r2.records]
