"""Cross-validation: the campaign's locality optimisation vs. the full
kernel-by-kernel pipeline.

The campaign evaluates each injection by replaying only the affected
element and updating the two checksum comparisons it participates in
(documented in :mod:`repro.faults.campaign`).  These tests verify that the
shortcut is decision-equivalent to running the complete simulated pipeline
with the identical fault."""

import numpy as np
import pytest

from repro.abft.pipeline import AABFTPipeline
from repro.faults.campaign import CampaignConfig, FaultCampaign
from repro.faults.injector import FaultInjector
from repro.gpusim.simulator import GpuSimulator
from repro.workloads import WorkloadSuite
from repro.workloads.generators import MatrixPair


class TestCampaignMatchesPipeline:
    @pytest.fixture(scope="class")
    def setting(self):
        """One fixed operand pair served by both execution paths."""
        rng = np.random.default_rng(77)
        a = rng.uniform(-1.0, 1.0, (128, 128))
        b = rng.uniform(-1.0, 1.0, (128, 128))
        suite = WorkloadSuite(
            name="fixed_pair",
            description="pinned operands for cross-validation",
            factory=lambda n, _rng: MatrixPair(a=a, b=b),
        )
        config = CampaignConfig(
            n=128, suite=suite, num_injections=1, block_size=64, seed=5
        )
        campaign = FaultCampaign(config)
        campaign.prepare()
        return a, b, campaign

    def test_detection_decisions_agree(self, setting):
        a, b, campaign = setting
        rng = np.random.default_rng(123)
        specs = campaign.sampler.sample_many(12, rng)
        for spec in specs:
            fast = campaign.inject_one(spec)

            sim = GpuSimulator()
            pipeline = AABFTPipeline(sim, block_size=64, p=2)
            # Drive the injector with a fresh-but-identical RNG stream so
            # both paths resolve the same block on the target SM.
            full = pipeline.run(
                a, b, injector=FaultInjector(spec, np.random.default_rng(9))
            )
            # The two paths may choose different blocks on the same SM
            # (independent RNG draws); detection must still agree because
            # the workload statistics are homogeneous — compare per spec
            # when the resolved element coincides, always compare the
            # "no corruption -> no detection" direction.
            if abs(fast.delta) == 0.0:
                assert not full.detected or full.report.num_failed == 0
        # At least one of the sampled faults must be visibly critical so
        # the loop above exercised real cases.
        assert any(campaign.inject_one(s).is_critical for s in specs)

    def test_same_element_same_decision(self, setting):
        """Pin the strike to a deterministic block (single-block SM) so both
        paths evaluate the identical element, then require exact agreement
        of the detection decision."""
        a, b, campaign = setting
        rng = np.random.default_rng(321)
        # 2x2 blocks -> SMs 0..3 hold exactly one block each: the block
        # choice is forced, so both paths strike the same element.
        for bit in (4, 20, 30, 40, 50):
            spec_rng = np.random.default_rng(1000 + bit)
            from repro.faults.model import FaultSite, FaultSpec
            from repro.fp.errorvec import ErrorVector

            spec = FaultSpec(
                sm_id=int(spec_rng.integers(4)),
                site=FaultSite.INNER_ADD,
                module_row=int(spec_rng.integers(65)),
                module_col=int(spec_rng.integers(65)),
                error_vector=ErrorVector(
                    mask=1 << bit, field="mantissa", bit_indices=(bit,)
                ),
                k_injection=int(spec_rng.integers(128)),
            )
            fast = campaign.inject_one(spec)

            sim = GpuSimulator()
            full = AABFTPipeline(sim, block_size=64, p=2).run(
                a, b, injector=FaultInjector(spec, np.random.default_rng(2))
            )
            assert fast.detected["aabft"] == full.detected, (
                bit,
                fast.delta,
                full.report.num_failed,
            )
