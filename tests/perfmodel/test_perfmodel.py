"""The analytic performance model and its Table I shape guarantees."""

import pytest

from repro.experiments.paper_data import TABLE1_GFLOPS, UNPROTECTED_PEAK_GFLOPS
from repro.gpusim.device import K20C
from repro.perfmodel.k20c import matmul_efficiency
from repro.perfmodel.model import KernelCost, SchemeTiming, roofline_seconds
from repro.perfmodel.schemes import (
    SCHEME_NAMES,
    aabft_timing,
    scheme_gflops,
    scheme_timing,
)

SIZES = (512, 1024, 2048, 3072, 4096, 5120, 6144, 7168, 8192)


class TestRoofline:
    def test_compute_bound(self):
        t = roofline_seconds(1.17e12, 0, 1.0, K20C, launches=0)
        assert t == pytest.approx(1.0)

    def test_memory_bound(self):
        t = roofline_seconds(1, 208e9, 1.0, K20C, launches=0)
        assert t == pytest.approx(1.0)

    def test_launch_overhead_additive(self):
        t = roofline_seconds(0, 0, 1.0, K20C, launches=3, launch_overhead_s=1e-5)
        assert t == pytest.approx(3e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            roofline_seconds(-1, 0, 0.5, K20C)
        with pytest.raises(ValueError):
            roofline_seconds(1, 0, 0.0, K20C)


class TestSchemeTiming:
    def test_overlapped_costs_hidden(self):
        timing = SchemeTiming(
            scheme="x",
            n=64,
            costs=[
                KernelCost("main", flops=1.17e12, bytes=0, efficiency=1.0, launches=0),
                KernelCost(
                    "side",
                    flops=1.17e11,
                    bytes=0,
                    efficiency=1.0,
                    launches=0,
                    overlapped=True,
                ),
            ],
            launch_overhead_s=0.0,
        )
        assert timing.seconds(K20C) == pytest.approx(1.0)

    def test_overlap_dominates_when_longer(self):
        timing = SchemeTiming(
            scheme="x",
            n=64,
            costs=[
                KernelCost("main", flops=1.17e11, bytes=0, efficiency=1.0, launches=0),
                KernelCost(
                    "side", flops=1.17e12, bytes=0, efficiency=1.0, launches=0,
                    overlapped=True,
                ),
            ],
            launch_overhead_s=0.0,
        )
        assert timing.seconds(K20C) == pytest.approx(1.0)

    def test_gflops_counts_useful_work_only(self):
        timing = scheme_timing("tmr", 1024)
        # TMR executes 3x the flops but GFLOPS is 2n^3/t.
        assert timing.gflops(K20C) < scheme_timing("unprotected", 1024).gflops(K20C) / 2.5

    def test_breakdown_names(self):
        breakdown = aabft_timing(1024).breakdown(K20C)
        assert "matmul" in breakdown
        assert "top_p_search" in breakdown

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            scheme_timing("dmr", 512)


class TestEfficiencyCurve:
    def test_monotone_saturating(self):
        effs = [matmul_efficiency(n) for n in SIZES]
        assert all(b > a for a, b in zip(effs, effs[1:]))
        assert effs[-1] < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            matmul_efficiency(0)


class TestTableOneShape:
    """The reproduction targets: ordering, crossovers and asymptotics of the
    paper's Table I must hold in the model."""

    def test_scheme_ordering_at_every_size(self):
        for n in SIZES:
            abft = scheme_gflops("abft", n)
            aabft = scheme_gflops("a-abft", n)
            sea = scheme_gflops("sea-abft", n)
            tmr = scheme_gflops("tmr", n)
            unprot = scheme_gflops("unprotected", n)
            assert unprot > abft > aabft > tmr
            assert abft > sea > tmr

    def test_aabft_sea_crossover_at_small_n(self):
        """The paper's Table I has SEA-ABFT *above* A-ABFT at n=512
        (307.75 vs 279.19) with A-ABFT overtaking by n=1024-2048; the model
        reproduces that crossover."""
        assert scheme_gflops("sea-abft", 512) > scheme_gflops("a-abft", 512)
        for n in SIZES[2:]:
            assert scheme_gflops("a-abft", n) > scheme_gflops("sea-abft", n)

    def test_aabft_gap_to_abft_closes_with_n(self):
        gap = [
            1.0 - scheme_gflops("a-abft", n) / scheme_gflops("abft", n)
            for n in SIZES
        ]
        assert gap[0] > gap[-1]
        assert gap[-1] < 0.06  # paper: 903 vs 943 => ~4%

    def test_tmr_plateaus_near_a_third_of_peak(self):
        tmr = scheme_gflops("tmr", 8192)
        unprot = scheme_gflops("unprotected", 8192)
        assert tmr == pytest.approx(unprot / 3.0, rel=0.10)

    def test_sea_persistent_large_n_gap(self):
        """SEA trails A-ABFT by ~25% even at n=8192 (712 vs 903)."""
        ratio = scheme_gflops("sea-abft", 8192) / scheme_gflops("a-abft", 8192)
        assert 0.65 < ratio < 0.9

    def test_aabft_overhead_close_to_paper(self):
        frac = scheme_gflops("a-abft", 8192) / scheme_gflops("unprotected", 8192)
        assert frac == pytest.approx(0.862, abs=0.05)

    def test_unprotected_peak_close_to_paper(self):
        assert scheme_gflops("unprotected", 8192) == pytest.approx(
            UNPROTECTED_PEAK_GFLOPS, rel=0.05
        )

    @pytest.mark.parametrize("n", SIZES)
    def test_within_quarter_of_published_cells(self, n):
        """Absolute sanity: every modelled cell within 25% of the paper."""
        paper = TABLE1_GFLOPS[n]
        model = [
            scheme_gflops(s, n) for s in ("abft", "a-abft", "sea-abft", "tmr")
        ]
        for m, p in zip(model, paper):
            assert abs(m - p) / p < 0.25, (n, m, p)

    def test_scheme_names_constant(self):
        assert set(SCHEME_NAMES) == {
            "abft",
            "a-abft",
            "sea-abft",
            "tmr",
            "unprotected",
        }
