"""Arithmetic intensity: hand-computed pins, dtype scaling, validation."""

import numpy as np
import pytest

from repro.perfmodel import arithmetic_intensity, gemm_bytes, gemm_flops


class TestHandComputedPins:
    def test_square_fp32_gemm(self):
        # m = n = k = 256, float32: 2 * 256^3 = 33_554_432 flops over
        # 3 * 256^2 * 4 = 786_432 bytes -> exactly 128/3 flops per byte.
        assert gemm_flops(256, 256, 256) == 33_554_432.0
        assert gemm_bytes(256, 256, 256, dtype="float32") == 786_432.0
        assert arithmetic_intensity(256, 256, 256, dtype="float32") == (
            pytest.approx(128.0 / 3.0, rel=1e-12)
        )

    def test_skinny_fp64_gemm(self):
        # m=1024, n=16, k=512, float64: 2*1024*16*512 = 16_777_216 flops,
        # (1024*512 + 512*16 + 1024*16) * 8 = 4_390_912 bytes -> 256/67.
        # Skinny GEMMs stay memory-bound: ai ~ 3.82 despite m = 1024.
        assert gemm_flops(1024, 16, 512) == 16_777_216.0
        assert gemm_bytes(1024, 16, 512, dtype="float64") == 4_390_912.0
        assert arithmetic_intensity(1024, 16, 512, dtype="float64") == (
            pytest.approx(256.0 / 67.0, rel=1e-12)
        )

    def test_flops_do_not_depend_on_dtype(self):
        assert gemm_flops(3, 5, 7) == 2.0 * 3 * 5 * 7


class TestDtypeScaling:
    def test_fp16_doubles_fp32_intensity(self):
        fp32 = arithmetic_intensity(128, 128, 128, dtype="float32")
        fp16 = arithmetic_intensity(128, 128, 128, dtype="float16")
        assert fp16 == pytest.approx(2.0 * fp32, rel=1e-12)

    def test_fp64_halves_fp32_intensity(self):
        fp32 = arithmetic_intensity(96, 64, 32, dtype="float32")
        fp64 = arithmetic_intensity(96, 64, 32, dtype="float64")
        assert fp64 == pytest.approx(0.5 * fp32, rel=1e-12)

    @pytest.mark.parametrize(
        "dtype", ["float32", np.float32, np.dtype(np.float32)]
    )
    def test_dtype_accepted_in_any_spelling(self, dtype):
        assert arithmetic_intensity(64, 64, 64, dtype=dtype) == (
            arithmetic_intensity(64, 64, 64, dtype="float32")
        )

    def test_default_dtype_is_float32(self):
        assert gemm_bytes(8, 8, 8) == gemm_bytes(8, 8, 8, dtype="float32")


class TestValidation:
    @pytest.mark.parametrize("bad", [(0, 8, 8), (8, -1, 8), (8, 8, 2.5)])
    def test_bad_dims_rejected(self, bad):
        m, n, k = bad
        with pytest.raises(ValueError, match="positive integer"):
            gemm_flops(m, n, k)
        with pytest.raises(ValueError, match="positive integer"):
            gemm_bytes(m, n, k)
        with pytest.raises(ValueError, match="positive integer"):
            arithmetic_intensity(m, n, k)

    def test_integer_valued_floats_accepted(self):
        # 8.0 is integer-valued; only true non-integers are rejected.
        assert gemm_flops(8.0, 8, 8) == gemm_flops(8, 8, 8)
