"""The aabft command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_exist(self):
        parser = build_parser()
        for cmd in (
            "table1",
            "bounds",
            "detect",
            "coverage",
            "all",
            "demo",
            "ci-gate",
            "serve",
            "loadgen",
            "bench",
            "backends",
            "autotune",
        ):
            args = parser.parse_args([cmd])
            assert args.command == cmd

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_telemetry_out_is_global(self):
        args = build_parser().parse_args(
            ["--telemetry-out", "events.jsonl", "demo"]
        )
        assert args.telemetry_out == "events.jsonl"
        assert build_parser().parse_args(["demo"]).telemetry_out is None

    def test_ci_gate_options(self):
        args = build_parser().parse_args(
            [
                "ci-gate",
                "--quick",
                "--coverage-floor",
                "0.9",
                "--throughput-tolerance",
                "0.5",
                "--baseline",
                "custom.json",
            ]
        )
        assert args.quick is True
        assert args.coverage_floor == 0.9
        assert args.throughput_tolerance == 0.5
        assert args.baseline == "custom.json"
        assert args.skip_chaos is False
        assert args.chaos_recipes is None
        assert args.chaos_report is None

    def test_ci_gate_chaos_options(self):
        args = build_parser().parse_args(
            [
                "ci-gate",
                "--chaos-recipes",
                "suite.json",
                "--chaos-report",
                "report-dir",
                "--skip-chaos",
            ]
        )
        assert args.chaos_recipes == "suite.json"
        assert args.chaos_report == "report-dir"
        assert args.skip_chaos is True

    def test_chaos_run_options(self):
        args = build_parser().parse_args(
            [
                "chaos",
                "run",
                "--recipes",
                "suite.json",
                "--report",
                "out-dir",
                "--p99-ms",
                "100",
                "--error-budget",
                "0.25",
                "--burn-limit",
                "3.0",
            ]
        )
        assert args.command == "chaos"
        assert args.chaos_command == "run"
        assert args.recipes == "suite.json"
        assert args.report == "out-dir"
        assert args.p99_ms == 100
        assert args.error_budget == 0.25
        assert args.burn_limit == 3.0

    def test_chaos_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos"])

    def test_loadgen_verify_results_flag(self):
        assert build_parser().parse_args(
            ["loadgen", "--verify-results"]
        ).verify_results is True
        assert build_parser().parse_args(["loadgen"]).verify_results is False

    def test_detect_options(self):
        args = build_parser().parse_args(
            ["detect", "--injections", "7", "--flips", "3", "--field", "exponent"]
        )
        assert args.injections == 7
        assert args.flips == 3
        assert args.field == "exponent"

    def test_serve_options(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--requests", "reqs.jsonl",
                "--m", "128", "--n", "64", "--q", "8",
                "--deadline-s", "0.5",
                "--max-batch", "16",
                "--window-s", "0.01",
                "--queue-depth", "64",
            ]
        )
        assert args.requests == "reqs.jsonl"
        assert (args.m, args.n, args.q) == (128, 64, 8)
        assert args.deadline_s == 0.5
        assert args.max_batch == 16
        assert args.window_s == 0.01
        assert args.queue_depth == 64

    def test_serve_defaults_to_stdin(self):
        assert build_parser().parse_args(["serve"]).requests == "-"

    def test_loadgen_options(self):
        args = build_parser().parse_args(
            [
                "loadgen",
                "--requests", "50",
                "--concurrency", "8",
                "--m", "64", "--n", "64", "--q", "4",
                "--deadline-s", "2.0",
                "--fresh-a",
            ]
        )
        assert args.requests == 50
        assert args.concurrency == 8
        assert (args.m, args.n, args.q) == (64, 64, 4)
        assert args.deadline_s == 2.0
        assert args.fresh_a is True

    def test_bench_options(self):
        args = build_parser().parse_args(
            [
                "bench",
                "--which", "all",
                "--quick",
                "--compare",
                "--baseline", "custom.json",
                "--tolerance", "0.4",
            ]
        )
        assert args.which == "all"
        assert args.quick and args.compare
        assert args.baseline == "custom.json"
        assert args.tolerance == 0.4
        assert build_parser().parse_args(["bench"]).which == "serve"

    def test_bench_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--which", "bogus"])

    def test_ci_gate_backends_option(self):
        args = build_parser().parse_args(
            ["ci-gate", "--backends", "numpy,blocked"]
        )
        assert args.backends == "numpy,blocked"
        assert build_parser().parse_args(["ci-gate"]).backends is None

    def test_autotune_options(self):
        args = build_parser().parse_args(
            [
                "autotune",
                "--shapes", "128x128x64",
                "--block-size", "32",
                "--p", "3",
                "--scheme", "sea",
                "--repeats", "5",
                "--cache", "tune.json",
                "--force",
                "--expect-cached",
            ]
        )
        assert args.shapes == "128x128x64"
        assert args.block_size == 32
        assert args.p == 3
        assert args.scheme == "sea"
        assert args.repeats == 5
        assert args.cache == "tune.json"
        assert args.force and args.expect_cached


class TestModelParser:
    def test_model_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["model"])

    def test_model_plan_options(self):
        args = build_parser().parse_args(
            [
                "model", "plan",
                "--model", "attention",
                "--batch", "32",
                "--d-model", "128",
                "--dtype", "float16",
                "--coverage-target", "0.9",
                "--full-intensity", "40",
                "--sea-intensity", "12",
                "--json",
            ]
        )
        assert args.command == "model"
        assert args.model_command == "plan"
        assert args.model == "attention"
        assert args.batch == 32
        assert args.d_model == 128
        assert args.dtype == "float16"
        assert args.coverage_target == 0.9
        assert (args.full_intensity, args.sea_intensity) == (40.0, 12.0)
        assert args.json is True

    def test_model_run_options(self):
        args = build_parser().parse_args(
            [
                "model", "run",
                "--depth", "3",
                "--verify-results",
                "--inject-layer", "fc2",
                "--inject-row", "3",
                "--inject-col", "5",
                "--inject-field", "mantissa",
            ]
        )
        assert args.model_command == "run"
        assert args.verify_results is True
        assert args.inject_layer == "fc2"
        assert (args.inject_row, args.inject_col) == (3, 5)
        assert args.inject_field == "mantissa"

    def test_model_run_defaults(self):
        args = build_parser().parse_args(["model", "run"])
        assert args.model == "mlp"
        assert args.inject_layer is None
        assert args.inject_field == "exponent"
        assert args.coverage_target == 0.85

    def test_model_bench_options(self):
        args = build_parser().parse_args(
            [
                "model", "bench",
                "--quick",
                "--compare",
                "--baseline", "custom.json",
                "--tolerance", "0.4",
            ]
        )
        assert args.model_command == "bench"
        assert args.quick and args.compare
        assert args.baseline == "custom.json"
        assert args.tolerance == 0.4

    def test_model_rejects_unknown_dtype(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["model", "plan", "--dtype", "float8"])


class TestModelExecution:
    def test_plan_prints_decision_table(self, capsys):
        assert main(
            [
                "model", "plan",
                "--batch", "64", "--d-in", "64", "--hidden", "64",
                "--depth", "3", "--d-out", "8",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "fc1" in out and "head" in out

    def test_plan_json_mode(self, capsys):
        assert main(
            [
                "model", "plan", "--json",
                "--batch", "64", "--d-in", "64", "--hidden", "64",
                "--depth", "2",
            ]
        ) == 0
        plan = json.loads(capsys.readouterr().out)
        assert plan["coverage"] >= plan["coverage_target"]
        assert {a["layer"] for a in plan["assignments"]} == {"fc1", "head"}

    def test_run_verified_with_telemetry(self, capsys, tmp_path):
        telemetry = tmp_path / "model.jsonl"
        assert main(
            [
                "--telemetry-out", str(telemetry),
                "model", "run",
                "--batch", "32", "--d-in", "32", "--hidden", "32",
                "--depth", "2", "--block-size", "16",
                "--verify-results",
            ]
        ) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["verified"] is True
        assert summary["detected"] is False
        events = [
            json.loads(line) for line in telemetry.read_text().splitlines()
        ]
        snapshot = events[-1]
        assert snapshot["type"] == "snapshot"
        assert "abft_model_runs_total" in snapshot["metrics"]
        assert "abft_model_layers_total" in snapshot["metrics"]

    def test_run_spec_file(self, capsys, tmp_path):
        from repro.models import mlp

        spec = tmp_path / "model.json"
        spec.write_text(
            mlp(name="from-file", batch=16, d_in=32, hidden=32, depth=2)
            .to_json()
        )
        assert main(["model", "run", "--spec", str(spec)]) == 0
        assert json.loads(capsys.readouterr().out)["model"] == "from-file"

    def test_injected_fault_on_protected_layer_is_detected(self, capsys):
        assert main(
            [
                "model", "run",
                "--batch", "32", "--d-in", "32", "--hidden", "32",
                "--depth", "2", "--block-size", "16",
                "--coverage-target", "1.0",
                "--inject-layer", "fc1",
            ]
        ) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["detected"] is True


class TestExecution:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "A-ABFT" in out
        assert "8192" in out

    def test_demo_detects_or_tolerates(self, capsys):
        assert main(["--seed", "3", "demo", "--n", "128"]) == 0
        out = capsys.readouterr().out
        assert "fault-free run: detected=False" in out
        assert "injected:" in out

    def test_loadgen_end_to_end_with_telemetry(self, capsys, tmp_path):
        telemetry = tmp_path / "serve.jsonl"
        assert main(
            [
                "--telemetry-out", str(telemetry),
                "loadgen",
                "--requests", "20",
                "--concurrency", "5",
                "--m", "64", "--n", "64", "--q", "8",
            ]
        ) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["ok"] is True
        assert summary["served"] == 20
        assert summary["rejected"] == 0 and summary["dropped"] == 0
        assert summary["status_counts"] == {"full": 20}
        assert summary["max_batch_size"] > 1
        # the telemetry stream ends with a metrics snapshot carrying the
        # serve counters the CI job gates on
        events = [
            json.loads(line) for line in telemetry.read_text().splitlines()
        ]
        snapshot = events[-1]
        assert snapshot["type"] == "snapshot"
        metrics = snapshot["metrics"]
        assert "abft_serve_requests_total" in metrics
        assert "abft_serve_batch_size" in metrics
        completed = [
            v["value"]
            for v in metrics["abft_serve_requests_total"]["values"]
            if v["labels"].get("outcome") == "completed"
        ]
        assert completed == [20.0]
        dropped = metrics["abft_serve_dropped_total"]["values"]
        assert sum(v["value"] for v in dropped) == 0.0  # no child = never hit

    def test_bench_all_rejects_baseline(self, capsys):
        # Regression: --which all used to silently ignore --baseline,
        # comparing against the repo defaults instead of the given file.
        assert main(
            ["bench", "--which", "all", "--quick", "--compare",
             "--baseline", "custom.json"]
        ) == 2
        err = capsys.readouterr().err
        assert "--baseline cannot be combined with --which all" in err

    def test_backends_lists_registry(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "numpy" in out
        assert "blocked" in out
        assert "cupy" in out

    def test_autotune_caches_and_reuses(self, capsys, tmp_path):
        cache = tmp_path / "autotune.json"
        argv = [
            "autotune", "--shapes", "96x96x48", "--repeats", "1",
            "--cache", str(cache),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "tuned" in first and cache.exists()
        # Second run must serve the winner from the cache without timing.
        assert main(argv + ["--expect-cached"]) == 0
        second = capsys.readouterr().out
        assert "cached" in second

    def test_autotune_expect_cached_fails_on_cold_cache(self, capsys, tmp_path):
        assert main(
            ["autotune", "--shapes", "96x96x48",
             "--cache", str(tmp_path / "cold.json"), "--expect-cached"]
        ) == 1
        assert "no cached winner" in capsys.readouterr().err

    def test_serve_reads_jsonl_requests(self, capsys, tmp_path):
        spec = tmp_path / "requests.jsonl"
        spec.write_text(
            "# comment lines are skipped\n"
            '{"m": 64, "n": 64, "q": 8, "count": 3, "seed": 11, "id": "w"}\n'
            '{"m": 64, "n": 64, "q": 8, "seed": 12}\n'
        )
        assert main(
            ["serve", "--requests", str(spec), "--window-s", "0.001"]
        ) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        responses, summary = lines[:-1], lines[-1]["summary"]
        assert summary == {"submitted": 4, "served": 4, "rejected": 0}
        assert [r["request_id"] for r in responses[:3]] == [
            "w.0", "w.1", "w.2",
        ]
        assert all(r["status"] == "full" for r in responses)
        assert max(r["batch_size"] for r in responses) > 1
