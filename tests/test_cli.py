"""The aabft command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_exist(self):
        parser = build_parser()
        for cmd in (
            "table1",
            "bounds",
            "detect",
            "coverage",
            "all",
            "demo",
            "ci-gate",
        ):
            args = parser.parse_args([cmd])
            assert args.command == cmd

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_telemetry_out_is_global(self):
        args = build_parser().parse_args(
            ["--telemetry-out", "events.jsonl", "demo"]
        )
        assert args.telemetry_out == "events.jsonl"
        assert build_parser().parse_args(["demo"]).telemetry_out is None

    def test_ci_gate_options(self):
        args = build_parser().parse_args(
            [
                "ci-gate",
                "--quick",
                "--coverage-floor",
                "0.9",
                "--throughput-tolerance",
                "0.5",
                "--baseline",
                "custom.json",
            ]
        )
        assert args.quick is True
        assert args.coverage_floor == 0.9
        assert args.throughput_tolerance == 0.5
        assert args.baseline == "custom.json"

    def test_detect_options(self):
        args = build_parser().parse_args(
            ["detect", "--injections", "7", "--flips", "3", "--field", "exponent"]
        )
        assert args.injections == 7
        assert args.flips == 3
        assert args.field == "exponent"


class TestExecution:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "A-ABFT" in out
        assert "8192" in out

    def test_demo_detects_or_tolerates(self, capsys):
        assert main(["--seed", "3", "demo", "--n", "128"]) == 0
        out = capsys.readouterr().out
        assert "fault-free run: detected=False" in out
        assert "injected:" in out
