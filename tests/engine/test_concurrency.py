"""Concurrency stress: parallel batches racing plan-cache eviction.

A small LRU plan cache plus many threads issuing different-shape
``execute_batch`` calls forces constant plan eviction and re-creation
while results are in flight.  Results must stay bitwise correct and the
engine's ``abft_engine_*`` counters must add up exactly.
"""

import threading

import numpy as np
import pytest

from repro.engine import ExecutionPolicy, MatmulEngine

SERIAL = ExecutionPolicy(mode="serial")
FUSED = ExecutionPolicy(mode="fused")
PIPELINED = ExecutionPolicy(mode="pipelined")

THREADS = 8
ROUNDS = 6
# more shapes than cache slots -> guaranteed eviction churn
SHAPES = [(64, 64, 8), (96, 64, 8), (64, 96, 8), (128, 64, 8), (64, 128, 8)]


@pytest.fixture
def workload():
    rng = np.random.default_rng(42)
    pairs = {}
    for m, n, q in SHAPES:
        a = rng.uniform(-1, 1, (m, n))
        bs = [rng.uniform(-1, 1, (n, q)) for _ in range(3)]
        pairs[(m, n, q)] = (a, bs)
    reference = {
        shape: [MatmulEngine().matmul(a, b).c for b in bs]
        for shape, (a, bs) in pairs.items()
    }
    return pairs, reference


class TestPlanCacheRaces:
    def test_parallel_batches_racing_eviction(self, workload):
        pairs, reference = workload
        engine = MatmulEngine(plan_cache_size=2)  # far fewer slots than shapes
        errors = []
        barrier = threading.Barrier(THREADS)

        def worker(idx):
            try:
                barrier.wait(timeout=30)
                for round_no in range(ROUNDS):
                    shape = SHAPES[(idx + round_no) % len(SHAPES)]
                    a, bs = pairs[shape]
                    results = engine.execute_batch(
                        [(a, b) for b in bs], policy=SERIAL
                    )
                    for res, ref in zip(results, reference[shape]):
                        if not np.array_equal(res.c, ref):
                            raise AssertionError(
                                f"bitwise divergence at shape {shape}"
                            )
                        if res.detected:
                            raise AssertionError(
                                f"false positive at shape {shape}"
                            )
            except Exception as exc:  # noqa: BLE001 - collected for the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        engine.close()
        assert not errors, errors[0]

        stats = engine.stats()
        expected_calls = THREADS * ROUNDS * 3  # 3 products per batch
        assert stats.calls == expected_calls
        assert stats.batched_calls == THREADS * ROUNDS
        # every product looked its plan up exactly once: hit or miss, never
        # both, never lost — even while other threads evicted concurrently
        assert stats.plan_hits + stats.plan_misses == expected_calls
        assert stats.plan_evictions > 0  # the small LRU actually churned
        assert stats.detections == 0

    def test_counter_totals_consistent_under_races(self, workload):
        pairs, _ = workload
        engine = MatmulEngine(plan_cache_size=2)
        barrier = threading.Barrier(THREADS)
        errors = []

        def worker(idx):
            try:
                barrier.wait(timeout=30)
                for round_no in range(ROUNDS):
                    shape = SHAPES[(idx + round_no) % len(SHAPES)]
                    a, bs = pairs[shape]
                    engine.execute_batch([(a, b) for b in bs], policy=SERIAL)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        engine.close()
        assert not errors, errors[0]

        stats = engine.stats()
        calls = THREADS * ROUNDS * 3
        assert stats.calls == calls
        # each batch pre-encodes its shared A once; all 3 products then run
        # against the handle, so every product counts one encode reuse
        assert stats.encode_reuses == THREADS * ROUNDS * 3
        # every plan lookup is accounted exactly once
        assert stats.plan_hits + stats.plan_misses == calls
        assert stats.plan_misses >= len(SHAPES)

    def test_fused_batches_race_plan_eviction(self, workload):
        pairs, reference = workload
        engine = MatmulEngine(plan_cache_size=2)
        barrier = threading.Barrier(THREADS)
        errors = []

        def worker(idx):
            try:
                barrier.wait(timeout=30)
                for round_no in range(ROUNDS):
                    shape = SHAPES[(idx + round_no) % len(SHAPES)]
                    a, bs = pairs[shape]
                    results = engine.execute_batch(
                        [(a, b) for b in bs], policy=FUSED
                    )
                    for res, ref in zip(results, reference[shape]):
                        if not np.array_equal(res.c, ref):
                            raise AssertionError(
                                f"bitwise divergence at shape {shape}"
                            )
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        engine.close()
        assert not errors, errors[0]
        stats = engine.stats()
        assert stats.calls == THREADS * ROUNDS * 3
        assert stats.plan_evictions > 0

    def test_pipelined_batches_race_plan_eviction(self, workload):
        """Pipelined slots race eviction and workspace-pool recycling.

        Every thread walks a different shape sequence, so chunk states,
        the bitwise-probe verdict cache and pooled chunk buffers are all
        exercised while the tiny LRU is evicting plans under them.
        """
        pairs, reference = workload
        engine = MatmulEngine(plan_cache_size=2)
        barrier = threading.Barrier(THREADS)
        errors = []

        def worker(idx):
            try:
                barrier.wait(timeout=30)
                for round_no in range(ROUNDS):
                    shape = SHAPES[(idx + round_no) % len(SHAPES)]
                    a, bs = pairs[shape]
                    results = engine.execute_batch(
                        [(a, b) for b in bs], policy=PIPELINED
                    )
                    for res, ref in zip(results, reference[shape]):
                        if not np.array_equal(res.c, ref):
                            raise AssertionError(
                                f"bitwise divergence at shape {shape}"
                            )
                        if res.detected:
                            raise AssertionError(
                                f"false positive at shape {shape}"
                            )
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        engine.close()
        assert not errors, errors[0]
        stats = engine.stats()
        assert stats.calls == THREADS * ROUNDS * 3
        assert stats.plan_evictions > 0
        assert stats.detections == 0
