"""Engine integration of the fused online-ABFT path.

Negotiation (config pin, env pin, policy knob), bitwise parity against
the separate path across every batch mode, `abft_fused_*` telemetry,
never-silent per-item fallback, and early-abort surfacing through the
chaos seam.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.abft.providers import AABFTEpsilonProvider
from repro.engine import AbftConfig, ExecutionPolicy, MatmulEngine


@pytest.fixture
def operands():
    rng = np.random.default_rng(11)
    a = rng.uniform(-1, 1, (96, 48))
    bs = [rng.uniform(-1, 1, (48, 64)) for _ in range(4)]
    return a, bs


def counter_value(engine, name, **labels):
    family = engine.registry.snapshot().get(name, {"values": []})
    total = 0.0
    for entry in family["values"]:
        if all(entry["labels"].get(k) == v for k, v in labels.items()):
            total += entry["value"]
    return total


FUSED = AbftConfig(block_size=16, fusion="fused")
SEPARATE = AbftConfig(block_size=16, fusion="separate")


class TestNegotiation:
    def test_config_pin_runs_fused_with_identical_bytes(self, operands):
        a, bs = operands
        fused = MatmulEngine(FUSED).matmul(a, bs[0])
        separate = MatmulEngine(SEPARATE).matmul(a, bs[0])
        assert fused.fused and fused.fused_fallback is None
        assert not separate.fused
        # Degenerate single-tile fusion: the separate path's exact bytes.
        assert fused.c_fc.tobytes() == separate.c_fc.tobytes()
        assert np.array_equal(
            fused.report.column_disc, separate.report.column_disc
        )
        assert np.array_equal(fused.report.row_disc, separate.report.row_disc)

    def test_env_pin_routes_auto_configs(self, operands, monkeypatch):
        monkeypatch.setenv("AABFT_FUSION", "fused")
        a, bs = operands
        result = MatmulEngine(AbftConfig(block_size=16)).matmul(a, bs[0])
        assert result.fused

    def test_config_pin_beats_env_pin(self, operands, monkeypatch):
        monkeypatch.setenv("AABFT_FUSION", "fused")
        a, bs = operands
        result = MatmulEngine(SEPARATE).matmul(a, bs[0])
        assert not result.fused

    def test_policy_knob_threads_through_execute_batch(self, operands):
        a, bs = operands
        engine = MatmulEngine(SEPARATE)
        pairs = [(a, b) for b in bs]
        results = engine.execute_batch(
            pairs, policy=ExecutionPolicy(mode="serial", fusion="fused")
        )
        assert all(r.fused for r in results)

    @pytest.mark.parametrize("mode", ["serial", "fused", "pipelined"])
    def test_batch_modes_match_per_call_fused_bytes(self, operands, mode):
        a, bs = operands
        per_call = [MatmulEngine(FUSED).matmul(a, b) for b in bs]
        engine = MatmulEngine(FUSED)
        results = engine.execute_batch(
            [(a, b) for b in bs], policy=ExecutionPolicy(mode=mode)
        )
        for got, want in zip(results, per_call):
            assert got.fused
            assert got.c_fc.tobytes() == want.c_fc.tobytes()


class TestTelemetry:
    def test_fused_counters_advance(self, operands):
        a, bs = operands
        engine = MatmulEngine(FUSED)
        engine.matmul(a, bs[0])
        assert counter_value(engine, "abft_fused_calls_total") == 1.0
        assert counter_value(engine, "abft_fused_tiles_checked_total") >= 1.0
        assert counter_value(engine, "abft_fused_early_aborts_total") == 0.0

    def test_separate_runs_leave_fused_counters_untouched(self, operands):
        a, bs = operands
        engine = MatmulEngine(SEPARATE)
        engine.matmul(a, bs[0])
        assert counter_value(engine, "abft_fused_calls_total") == 0.0


class TestNeverSilent:
    def test_missing_epsilon_grids_fall_back_with_counted_reason(
        self, operands, monkeypatch
    ):
        a, bs = operands
        monkeypatch.setattr(
            AABFTEpsilonProvider,
            "epsilon_grids",
            lambda self, *args, **kwargs: None,
        )
        engine = MatmulEngine(FUSED)
        result = engine.matmul(a, bs[0])
        # The product is still protected, just via the separate path,
        # and the fallback is recorded on the result and in telemetry.
        assert not result.fused
        assert result.fused_fallback is not None
        assert not result.detected
        assert counter_value(
            engine, "abft_fused_fallbacks_total", reason="no_epsilon_grids"
        ) == 1.0

    def test_fallback_bytes_match_the_separate_path(
        self, operands, monkeypatch
    ):
        a, bs = operands
        separate = MatmulEngine(SEPARATE).matmul(a, bs[0])
        monkeypatch.setattr(
            AABFTEpsilonProvider,
            "epsilon_grids",
            lambda self, *args, **kwargs: None,
        )
        fallen_back = MatmulEngine(FUSED).matmul(a, bs[0])
        assert fallen_back.c_fc.tobytes() == separate.c_fc.tobytes()


class TestEarlyAbort:
    def test_persistent_tile_flip_aborts_and_is_detected(self, operands):
        a, bs = operands
        engine = MatmulEngine(
            AbftConfig(block_size=16, fusion="fused", fused_tile_blocks=1)
        )

        def flip(event, **kw):
            if event != "tile_result" or kw["tile_index"] != 0:
                return
            tile = kw["c_tile"]
            cell = np.ascontiguousarray(tile[0, 0:1])
            cell.view(np.uint64)[:] ^= np.uint64(1 << 44)
            tile[0, 0] = cell[0]

        engine.set_chaos_hook(flip)
        result = engine.matmul(a, bs[0])
        assert result.fused
        assert result.detected
        assert counter_value(engine, "abft_fused_early_aborts_total") == 1.0
        assert counter_value(engine, "abft_fused_tile_recomputes_total") >= 1.0
