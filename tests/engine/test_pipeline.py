"""Stage-pipelined execute_batch: bitwise identity, scheduling, policy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    AbftConfig,
    ExecutionPolicy,
    MatmulEngine,
    PipelineSchedule,
    pipeline_supported,
    plan_schedule,
)
from repro.engine.pipeline import _greedy_slots
from repro.engine.stats import StageCost, StageCosts
from repro.errors import ConfigurationError
from repro.telemetry import MetricsRegistry

PIPELINED = ExecutionPolicy(mode="pipelined")


def fresh_engine(**kwargs) -> MatmulEngine:
    kwargs.setdefault("registry", MetricsRegistry())
    return MatmulEngine(**kwargs)


def assert_bitwise_equal(results, reference):
    assert len(results) == len(reference)
    for got, ref in zip(results, reference):
        assert got.c.tobytes() == ref.c.tobytes()
        assert got.c_fc.tobytes() == ref.c_fc.tobytes()
        assert got.detected == ref.detected
        assert got.report.num_checks == ref.report.num_checks
        assert np.array_equal(got.report.column_disc, ref.report.column_disc)
        assert np.array_equal(got.report.row_disc, ref.report.row_disc)


class TestBitwiseIdentity:
    """The hard invariant: pipelined results are bitwise identical to
    sequential matmul calls — including padded edge blocks, float32 and
    the per-item reference fallback when the concat probe fails."""

    @settings(max_examples=10, deadline=None)
    @given(
        m=st.integers(1, 120),
        n=st.integers(2, 96),  # inner dim >= p (the default top-p is 2)
        q=st.integers(1, 80),
        k=st.integers(2, 5),
        dtype=st.sampled_from([np.float64, np.float32]),
    )
    def test_pipelined_matches_serial_property(self, m, n, q, k, dtype):
        rng = np.random.default_rng(m * 1000 + n * 10 + q + k)
        a = rng.uniform(-1, 1, (m, n)).astype(dtype)
        bs = [rng.uniform(-1, 1, (n, q)).astype(dtype) for _ in range(k)]
        engine = fresh_engine()
        reference = [MatmulEngine().matmul(a, b) for b in bs]
        results = engine.execute_batch(
            [(a, b) for b in bs], policy=PIPELINED
        )
        assert_bitwise_equal(results, reference)

    def test_pipelined_matches_serial_on_blocked_backend(self):
        rng = np.random.default_rng(21)
        cfg = AbftConfig(backend="blocked", gemm_tile=32)
        a = rng.uniform(-1, 1, (100, 70))
        bs = [rng.uniform(-1, 1, (70, 40)) for _ in range(4)]
        reference = [MatmulEngine().matmul(a, b, config=cfg) for b in bs]
        engine = fresh_engine()
        results = engine.execute_batch(
            [(a, b) for b in bs], policy=PIPELINED, config=cfg
        )
        assert_bitwise_equal(results, reference)

    def test_small_chunks_defeating_coalescing_stay_bitwise(self):
        # chunk_size=1 forces one pair per chunk: no concatenation win,
        # maximum slot churn — the answer must not change.
        rng = np.random.default_rng(22)
        a = rng.uniform(-1, 1, (64, 48))
        bs = [rng.uniform(-1, 1, (48, 24)) for _ in range(5)]
        reference = [MatmulEngine().matmul(a, b) for b in bs]
        engine = fresh_engine()
        results = engine.execute_batch(
            [(a, b) for b in bs],
            policy=ExecutionPolicy(mode="pipelined", chunk_size=1),
        )
        assert_bitwise_equal(results, reference)

    def test_distinct_left_operands_stay_bitwise(self):
        rng = np.random.default_rng(23)
        pairs = [
            (rng.uniform(-1, 1, (64, 64)), rng.uniform(-1, 1, (64, 16)))
            for _ in range(4)
        ]
        reference = [MatmulEngine().matmul(a, b) for a, b in pairs]
        engine = fresh_engine()
        results = engine.execute_batch(pairs, policy=PIPELINED)
        assert_bitwise_equal(results, reference)

    def test_mixed_shapes_fall_back_and_stay_bitwise(self):
        rng = np.random.default_rng(24)
        a = rng.uniform(-1, 1, (64, 64))
        b1 = rng.uniform(-1, 1, (64, 8))
        b2 = rng.uniform(-1, 1, (64, 16))
        assert not pipeline_supported([a, a], [b1, b2], AbftConfig())
        engine = fresh_engine()
        results = engine.execute_batch([(a, b1), (a, b2)], policy=PIPELINED)
        reference = [MatmulEngine().matmul(a, b) for b in (b1, b2)]
        assert_bitwise_equal(results, reference)
        fallbacks = engine.registry.counter(
            "abft_pipeline_fallbacks_total", labelnames=("reason",)
        )
        assert fallbacks.labels(reason="unsupported").get() == 1

    def test_probe_pinned_signature_stays_bitwise_on_repeat(self):
        # Whatever verdict the first chunk's dual-compute probe reaches,
        # later batches of the same signature must reuse it and stay
        # bitwise — run the same batch twice through one engine.
        rng = np.random.default_rng(25)
        a = rng.uniform(-1, 1, (64, 48))
        bs = [rng.uniform(-1, 1, (48, 40)) for _ in range(4)]
        reference = [MatmulEngine().matmul(a, b) for b in bs]
        engine = fresh_engine()
        for _ in range(2):
            results = engine.execute_batch(
                [(a, b) for b in bs], policy=PIPELINED
            )
            assert_bitwise_equal(results, reference)

    def test_injected_fault_detected_through_pipelined_provider(self):
        from repro.abft.checking import check_partitioned

        rng = np.random.default_rng(26)
        a = rng.uniform(-1, 1, (64, 64))
        bs = [rng.uniform(-1, 1, (64, 16)) for _ in range(3)]
        engine = fresh_engine()
        results = engine.execute_batch([(a, b) for b in bs], policy=PIPELINED)
        res = results[2]
        assert not res.detected
        res.c_fc[3, 5] += 1.0
        report = check_partitioned(
            res.c_fc, res.row_layout, res.col_layout, res.provider
        )
        assert report.error_detected
        assert (3, 5) in report.located_errors


WARM = StageCosts(
    encode=StageCost(seconds=0.4, observations=100),
    multiply=StageCost(seconds=1.0, observations=100),
    check=StageCost(seconds=0.3, observations=100),
)
COLD = StageCosts()


def stage_complete(schedule: PipelineSchedule) -> None:
    """Every chunk is encoded, multiplied and checked exactly once, in
    dependency order, and the encode lane never runs past the window."""
    n = schedule.num_chunks
    done: dict[str, set[int]] = {"encode": set(), "multiply": set(), "check": set()}
    for stage, idx in schedule.slots:
        assert idx not in done[stage], f"duplicate {stage} slot {idx}"
        if stage == "multiply":
            assert idx in done["encode"], "multiply before encode"
        if stage == "check":
            assert idx in done["multiply"], "check before multiply"
        if stage == "encode":
            lead = len(done["encode"]) - len(done["multiply"])
            assert lead < schedule.window, "encode lane overran the window"
        done[stage].add(idx)
    assert all(len(v) == n for v in done.values())


class TestPlanSchedule:
    def test_cold_engine_stays_serial(self):
        schedule = plan_schedule([8], COLD, workers=4, policy=PIPELINED)
        assert not schedule.overlap
        assert schedule.window == 1
        assert schedule.predicted_serial_s == 0.0
        assert schedule.predicted_overlap_s == 0.0
        stage_complete(schedule)

    def test_single_worker_uses_one_chunk_per_group(self):
        schedule = plan_schedule([6, 4], WARM, workers=1, policy=PIPELINED)
        assert not schedule.overlap
        # one chunk per group: maximum amortisation when nothing overlaps
        assert schedule.chunks == ((0, 6), (1, 4))
        stage_complete(schedule)

    def test_warm_multiworker_overlaps(self):
        schedule = plan_schedule([24], WARM, workers=4, policy=PIPELINED)
        assert schedule.overlap
        assert schedule.window == PIPELINED.max_inflight
        assert schedule.num_chunks >= 2
        assert 0 < schedule.predicted_overlap_s < schedule.predicted_serial_s
        stage_complete(schedule)

    def test_blown_deadline_clamps_window(self):
        tight = ExecutionPolicy(mode="pipelined", deadline_s=1e-9)
        schedule = plan_schedule([24], WARM, workers=4, policy=tight)
        assert schedule.overlap
        assert schedule.window == 1
        stage_complete(schedule)

    def test_policy_chunk_size_honoured(self):
        policy = ExecutionPolicy(mode="pipelined", chunk_size=3)
        schedule = plan_schedule([7], WARM, workers=4, policy=policy)
        assert schedule.chunks == ((0, 3), (0, 3), (0, 1))
        stage_complete(schedule)

    def test_window_one_is_the_serial_slot_order(self):
        slots = _greedy_slots(3, window=1)
        assert slots == (
            ("encode", 0), ("multiply", 0), ("check", 0),
            ("encode", 1), ("multiply", 1), ("check", 1),
            ("encode", 2), ("multiply", 2), ("check", 2),
        )

    def test_wide_window_prefetches_encodes(self):
        slots = _greedy_slots(4, window=3)
        # the warm-up fills the window before the first multiply
        assert slots[:3] == (("encode", 0), ("encode", 1), ("encode", 2))
        assert slots[3] == ("multiply", 0)


class TestExecutionPolicy:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="mode"):
            ExecutionPolicy(mode="turbo")

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ConfigurationError, match="deadline_s"):
            ExecutionPolicy(deadline_s=0.0)
        with pytest.raises(ConfigurationError, match="chunk_size"):
            ExecutionPolicy(chunk_size=0)
        with pytest.raises(ConfigurationError, match="max_inflight"):
            ExecutionPolicy(max_inflight=0)

    def test_replace_revalidates(self):
        policy = ExecutionPolicy()
        assert policy.replace(mode="pipelined").mode == "pipelined"
        with pytest.raises(ConfigurationError):
            policy.replace(mode="nope")

    def test_execute_batch_rejects_non_policy(self):
        engine = fresh_engine()
        with pytest.raises(ConfigurationError, match="ExecutionPolicy"):
            engine.execute_batch([], policy={"mode": "auto"})


class TestTelemetry:
    def test_pipeline_metrics_publish(self):
        rng = np.random.default_rng(27)
        a = rng.uniform(-1, 1, (64, 64))
        bs = [rng.uniform(-1, 1, (64, 16)) for _ in range(4)]
        engine = fresh_engine()
        engine.execute_batch([(a, b) for b in bs], policy=PIPELINED)
        reg = engine.registry
        assert reg.counter("abft_pipeline_batches_total").get() == 1
        assert reg.counter("abft_pipeline_chunks_total").get() >= 1
        busy = reg.counter(
            "abft_pipeline_stage_busy_seconds_total", labelnames=("stage",)
        )
        for stage in ("encode", "multiply", "check"):
            assert busy.labels(stage=stage).get() > 0
        bubble = reg.gauge("abft_pipeline_bubble_fraction").get()
        assert 0.0 <= bubble <= 1.0
        occupancy = reg.gauge(
            "abft_pipeline_stage_occupancy", labelnames=("stage",)
        )
        for stage in ("encode", "multiply", "check"):
            assert 0.0 <= occupancy.labels(stage=stage).get() <= 1.0
        modes = reg.counter(
            "abft_engine_execute_batch_total", labelnames=("mode",)
        )
        assert modes.labels(mode="pipelined").get() == 1

    def test_mode_counter_tracks_auto_resolution(self):
        rng = np.random.default_rng(28)
        a = rng.uniform(-1, 1, (64, 64))
        bs = [rng.uniform(-1, 1, (64, 16)) for _ in range(2)]
        engine = fresh_engine()
        engine.execute_batch([(a, b) for b in bs])  # auto -> pipelined
        engine.execute_batch([(a, bs[0])])  # single pair -> serial
        modes = engine.registry.counter(
            "abft_engine_execute_batch_total", labelnames=("mode",)
        )
        assert modes.labels(mode="pipelined").get() == 1
        assert modes.labels(mode="serial").get() == 1

    def test_stage_costs_in_stats(self):
        rng = np.random.default_rng(29)
        a = rng.uniform(-1, 1, (64, 64))
        engine = fresh_engine()
        engine.matmul(a, a)
        costs = engine.stats().stage_costs
        assert isinstance(costs, StageCosts)
        for cost in (costs.encode, costs.multiply, costs.check):
            assert cost.observations >= 1
            assert cost.seconds > 0
            assert cost.mean == pytest.approx(
                cost.seconds / cost.observations
            )
        assert costs.mean_total() > 0

    def test_reset_stats_clears_pipeline_metrics(self):
        rng = np.random.default_rng(30)
        a = rng.uniform(-1, 1, (64, 64))
        bs = [rng.uniform(-1, 1, (64, 16)) for _ in range(3)]
        engine = fresh_engine()
        engine.execute_batch([(a, b) for b in bs], policy=PIPELINED)
        engine.reset_stats()
        reg = engine.registry
        assert reg.counter("abft_pipeline_batches_total").get() == 0
        assert reg.gauge("abft_pipeline_bubble_fraction").get() == 0.0
        modes = reg.counter(
            "abft_engine_execute_batch_total", labelnames=("mode",)
        )
        assert modes.labels(mode="pipelined").get() == 0
