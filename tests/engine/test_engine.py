"""MatmulEngine: plan caching, batching, operand reuse, stats, protocols."""

import numpy as np
import pytest

from repro import ProtectedResult
from repro.abft import aabft_matmul, fixed_abft_matmul, sea_abft_matmul
from repro.abft.checking import check_partitioned
from repro.engine import (
    AbftConfig,
    EncodedOperand,
    ExecutionPolicy,
    MatmulEngine,
    default_engine,
)
from repro.errors import ConfigurationError, ShapeError


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def engine():
    with MatmulEngine(AbftConfig(block_size=16)) as eng:
        yield eng


class TestPlanCache:
    def test_hit_miss_accounting(self, rng, engine):
        a = rng.uniform(-1, 1, (32, 32))
        engine.matmul(a, a)
        engine.matmul(a, a)
        engine.matmul(a, a)
        stats = engine.stats()
        assert stats.plan_misses == 1
        assert stats.plan_hits == 2
        assert stats.plan_hit_rate == pytest.approx(2 / 3)

    def test_distinct_shapes_get_distinct_plans(self, rng, engine):
        for k in (16, 32, 48):
            x = rng.uniform(-1, 1, (k, k))
            engine.matmul(x, x)
        assert engine.stats().plan_misses == 3
        assert engine.plan_cache_size == 3

    def test_distinct_configs_get_distinct_plans(self, rng, engine):
        a = rng.uniform(-1, 1, (32, 32))
        engine.matmul(a, a)
        engine.matmul(a, a, config=AbftConfig(block_size=16, omega=5.0))
        assert engine.stats().plan_misses == 2

    def test_lru_eviction_under_many_shapes(self, rng):
        engine = MatmulEngine(AbftConfig(block_size=16), plan_cache_size=2)
        mats = {k: rng.uniform(-1, 1, (k, k)) for k in (16, 32, 48)}
        for k in (16, 32, 48):
            engine.matmul(mats[k], mats[k])
        assert engine.plan_cache_size == 2
        assert engine.stats().plan_evictions == 1
        # 16 was evicted (least recently used): touching it again misses...
        engine.matmul(mats[16], mats[16])
        assert engine.stats().plan_misses == 4
        # ...while 48 stayed resident and hits.
        engine.matmul(mats[48], mats[48])
        assert engine.stats().plan_hits == 1

    def test_clear_plans(self, rng, engine):
        a = rng.uniform(-1, 1, (32, 32))
        engine.matmul(a, a)
        engine.clear_plans()
        assert engine.plan_cache_size == 0
        engine.matmul(a, a)
        assert engine.stats().plan_misses == 2


class TestBitwiseEquivalence:
    def test_engine_matches_classic_functions(self, rng):
        a = rng.uniform(-1, 1, (50, 40))
        b = rng.uniform(-1, 1, (40, 30))
        engine = MatmulEngine(AbftConfig(block_size=16))
        classic = aabft_matmul(a, b, block_size=16)
        via_engine = engine.matmul(a, b)
        assert np.array_equal(classic.c, via_engine.c)
        assert np.array_equal(classic.c_fc, via_engine.c_fc)
        assert classic.detected == via_engine.detected

    def test_batched_matches_sequential(self, rng, engine):
        a = rng.uniform(-1, 1, (32, 32))
        bs = [rng.uniform(-1, 1, (32, 32)) for _ in range(4)]
        sequential = [engine.matmul(a, b) for b in bs]
        batched = engine.execute_batch([(a, b) for b in bs])
        assert len(batched) == 4
        for s, r in zip(sequential, batched):
            assert np.array_equal(s.c, r.c)
            assert np.array_equal(s.c_fc, r.c_fc)

    def test_stacked_3d_input_via_shim(self, rng, engine):
        a = rng.uniform(-1, 1, (32, 32))
        stack = rng.uniform(-1, 1, (3, 32, 32))
        with pytest.warns(DeprecationWarning):
            batched = engine.matmul_many(a, stack)
        for i, r in enumerate(batched):
            assert np.array_equal(r.c, engine.matmul(a, stack[i]).c)

    def test_pairwise_lists(self, rng, engine):
        As = [rng.uniform(-1, 1, (16, 16)) for _ in range(3)]
        Bs = [rng.uniform(-1, 1, (16, 16)) for _ in range(3)]
        batched = engine.execute_batch(list(zip(As, Bs)))
        for a, b, r in zip(As, Bs, batched):
            assert np.array_equal(r.c, engine.matmul(a, b).c)

    def test_mismatched_batch_lengths_rejected(self, rng, engine):
        a = rng.uniform(-1, 1, (16, 16))
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ShapeError, match="batch lengths"):
                engine.matmul_many([a, a], [a, a, a])

    def test_sea_and_fixed_schemes_match(self, rng):
        a = rng.uniform(-1, 1, (32, 32))
        b = rng.uniform(-1, 1, (32, 32))
        eng_sea = MatmulEngine(AbftConfig(block_size=16, scheme="sea"))
        assert np.array_equal(
            sea_abft_matmul(a, b, block_size=16).c, eng_sea.matmul(a, b).c
        )
        eng_fix = MatmulEngine(
            AbftConfig(block_size=16, scheme="fixed", fixed_epsilon=1e-6)
        )
        assert np.array_equal(
            fixed_abft_matmul(a, b, epsilon=1e-6, block_size=16).c,
            eng_fix.matmul(a, b).c,
        )

    def test_float32_stays_float32(self, rng, engine):
        a = rng.uniform(-1, 1, (32, 32)).astype(np.float32)
        result = engine.matmul(a, a)
        assert result.c.dtype == np.float32
        assert np.array_equal(result.c, aabft_matmul(a, a, block_size=16).c)


class TestEncodedHandles:
    def test_handle_reuse_matches_raw(self, rng, engine):
        a = rng.uniform(-1, 1, (32, 32))
        bs = [rng.uniform(-1, 1, (32, 32)) for _ in range(3)]
        handle = engine.encode(a, side="a")
        assert isinstance(handle, EncodedOperand)
        for b in bs:
            assert np.array_equal(engine.matmul(handle, b).c, engine.matmul(a, b).c)
        assert engine.stats().encode_reuses == 3

    def test_handle_reuse_still_detects_faults(self, rng, engine):
        a = rng.uniform(-1, 1, (32, 32))
        b = rng.uniform(-1, 1, (32, 32))
        handle = engine.encode(a, side="a")
        result = engine.matmul(handle, b)
        assert not result.detected
        # Inject a single fault into the full-checksum result and re-check
        # with the result's own provider: the handle path must flag it.
        result.c_fc[5, 7] += 1.0
        report = check_partitioned(
            result.c_fc, result.row_layout, result.col_layout, result.provider
        )
        assert report.error_detected
        assert (5, 7) in report.located_errors

    def test_side_b_handles(self, rng, engine):
        a = rng.uniform(-1, 1, (32, 32))
        b = rng.uniform(-1, 1, (32, 32))
        hb = engine.encode(b, side="b")
        assert np.array_equal(engine.matmul(a, hb).c, engine.matmul(a, b).c)

    def test_wrong_side_rejected(self, rng, engine):
        a = rng.uniform(-1, 1, (32, 32))
        handle = engine.encode(a, side="a")
        with pytest.raises(ConfigurationError, match="side"):
            engine.matmul(a, handle)

    def test_config_mismatch_rejected(self, rng, engine):
        a = rng.uniform(-1, 1, (32, 32))
        handle = engine.encode(a, side="a")
        with pytest.raises(ConfigurationError, match="block_size"):
            engine.matmul(handle, a, config=AbftConfig(block_size=32))

    def test_dtype_mismatch_rejected(self, rng, engine):
        a32 = rng.uniform(-1, 1, (32, 32)).astype(np.float32)
        b64 = rng.uniform(-1, 1, (32, 32))
        handle = engine.encode(a32, side="a")  # encoded float32
        with pytest.raises(ConfigurationError, match="re-encode"):
            engine.matmul(handle, b64)  # pairing resolves to float64

    def test_shared_raw_operand_encoded_once(self, rng, engine):
        a = rng.uniform(-1, 1, (32, 32))
        bs = [rng.uniform(-1, 1, (32, 32)) for _ in range(4)]
        engine.execute_batch(
            [(a, b) for b in bs], policy=ExecutionPolicy(mode="serial")
        )
        assert engine.stats().encode_reuses == 4


class TestStatsAndLifecycle:
    def test_counters(self, rng, engine):
        a = rng.uniform(-1, 1, (32, 32))
        engine.matmul(a, a)
        engine.execute_batch([(a, a), (a, a)])
        stats = engine.stats()
        assert stats.calls == 3
        assert stats.batched_calls == 1
        assert stats.detections == 0
        assert stats.total_seconds > 0.0
        as_dict = stats.as_dict()
        assert as_dict["calls"] == 3
        assert "plan_hit_rate" in as_dict

    def test_reset_stats_keeps_plans(self, rng, engine):
        a = rng.uniform(-1, 1, (32, 32))
        engine.matmul(a, a)
        engine.reset_stats()
        assert engine.stats().calls == 0
        assert engine.plan_cache_size == 1

    def test_default_engine_is_a_shared_singleton(self):
        assert default_engine() is default_engine()
        assert isinstance(default_engine(), MatmulEngine)

    def test_classic_functions_route_through_default_engine(self, rng):
        a = rng.uniform(-1, 1, (48, 48))
        before = default_engine().stats().calls
        aabft_matmul(a, a, block_size=16)
        assert default_engine().stats().calls == before + 1

    def test_shape_errors(self, rng, engine):
        with pytest.raises(ShapeError):
            engine.matmul(rng.uniform(-1, 1, (4,)), rng.uniform(-1, 1, (4, 4)))
        with pytest.raises(ShapeError, match="inner dimensions"):
            engine.matmul(rng.uniform(-1, 1, (8, 4)), rng.uniform(-1, 1, (8, 4)))

    def test_bad_config_type_rejected(self):
        with pytest.raises(ConfigurationError):
            MatmulEngine(config={"block_size": 64})


class TestProtectedResultProtocol:
    def test_abft_result_satisfies_protocol(self, rng, engine):
        a = rng.uniform(-1, 1, (16, 16))
        assert isinstance(engine.matmul(a, a), ProtectedResult)

    def test_pipeline_result_satisfies_protocol(self, rng):
        from repro import AABFTPipeline, GpuSimulator

        a = rng.uniform(-1, 1, (16, 16))
        pipeline = AABFTPipeline(GpuSimulator(), block_size=16)
        assert isinstance(pipeline.run(a, a), ProtectedResult)
