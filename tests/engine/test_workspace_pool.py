"""The per-plan workspace pool: recycling rules and handle safety."""

from __future__ import annotations

import numpy as np

from repro.engine import AbftConfig, MatmulEngine
from repro.engine.plan import WorkspacePool


class TestWorkspacePool:
    def test_take_give_reuses_buffer(self):
        pool = WorkspacePool()
        buf = pool.take((8, 8))
        assert buf.shape == (8, 8) and buf.dtype == np.float64
        pool.give(buf)
        again = pool.take((8, 8))
        assert again is buf
        assert pool.takes == 2 and pool.hits == 1

    def test_keyed_by_shape_and_dtype(self):
        pool = WorkspacePool()
        pool.give(pool.take((4, 4), np.float64))
        assert pool.take((4, 4), np.float32).dtype == np.float32
        assert pool.take((4, 5)).shape == (4, 5)
        assert pool.hits == 0  # neither request matched the retained buffer

    def test_rejects_views(self):
        pool = WorkspacePool()
        backing = np.empty((8, 8))
        pool.give(backing[2:])  # a view must never resurface
        taken = pool.take((6, 8))
        assert not np.shares_memory(taken, backing)
        assert pool.hits == 0

    def test_rejects_non_contiguous(self):
        pool = WorkspacePool()
        fortran = np.asfortranarray(np.empty((8, 4)))
        pool.give(fortran)
        taken = pool.take((8, 4))
        assert taken is not fortran
        assert taken.flags.c_contiguous

    def test_rejects_oversized_buffers(self):
        pool = WorkspacePool(byte_limit=1024)
        big = np.empty((32, 32))  # 8 KiB > the 1 KiB limit
        pool.give(big)
        assert pool.take((32, 32)) is not big

    def test_bucket_capped_per_key(self):
        pool = WorkspacePool(limit_per_key=2)
        bufs = [np.empty((4, 4)) for _ in range(5)]
        for buf in bufs:
            pool.give(buf)
        retained = {id(pool.take((4, 4))) for _ in range(5)}
        assert len(retained & {id(b) for b in bufs}) == 2

    def test_give_none_is_noop(self):
        WorkspacePool().give(None)


class TestHandleSafety:
    """User-visible arrays must never be recycled into the pool."""

    def test_encode_handles_survive_warm_calls(self, small_pair, rng):
        a, b = small_pair
        engine = MatmulEngine(AbftConfig(block_size=32, p=2))
        handle = engine.encode(a, side="a")
        snapshot = handle.array.copy()
        for _ in range(6):  # enough warm calls to cycle every pool bucket
            engine.matmul(handle, rng.uniform(-1, 1, b.shape))
        assert np.array_equal(handle.array, snapshot)

    def test_results_survive_subsequent_calls(self, small_pair, rng):
        a, b = small_pair
        engine = MatmulEngine(AbftConfig(block_size=32, p=2))
        first = engine.matmul(a, b)
        c, c_fc = first.c.copy(), first.c_fc.copy()
        col_disc = first.report.column_disc.copy()
        for _ in range(6):
            engine.matmul(rng.uniform(-1, 1, a.shape), rng.uniform(-1, 1, b.shape))
        assert np.array_equal(first.c, c)
        assert np.array_equal(first.c_fc, c_fc)
        assert np.array_equal(first.report.column_disc, col_disc)

    def test_fused_batch_results_survive(self, small_pair, rng):
        a, b = small_pair
        engine = MatmulEngine(AbftConfig(block_size=32, p=2))
        bs = [rng.uniform(-1, 1, b.shape) for _ in range(4)]
        results = engine.execute_batch([(a, x) for x in bs])
        snapshots = [(r.c.copy(), r.c_fc.copy()) for r in results]
        engine.execute_batch(
            [(a, rng.uniform(-1, 1, b.shape)) for _ in range(4)]
        )
        for r, (c, c_fc) in zip(results, snapshots):
            assert np.array_equal(r.c, c)
            assert np.array_equal(r.c_fc, c_fc)

    def test_warm_calls_hit_the_pool(self, small_pair):
        a, b = small_pair
        engine = MatmulEngine(AbftConfig(block_size=32, p=2))
        engine.matmul(a, b)
        plan = next(iter(engine._plans._plans.values()))
        before = plan.pool.hits
        engine.matmul(a, b)
        assert plan.pool.hits > before


class TestConcurrency:
    """The pool is shared by concurrent tile workers of the blocked
    backend: takes/gives race, but a buffer must never be handed to two
    owners at once."""

    def test_racing_take_give_never_aliases(self):
        import threading

        pool = WorkspacePool()
        shapes = [(16, 16), (16, 16), (8, 32)]
        owners: set[int] = set()
        owners_lock = threading.Lock()
        errors: list[str] = []
        start = threading.Barrier(8)

        def worker(seed: int) -> None:
            rng = np.random.default_rng(seed)
            start.wait()
            for _ in range(200):
                shape = shapes[rng.integers(len(shapes))]
                buf = pool.take(shape)
                ident = id(buf)
                with owners_lock:
                    if ident in owners:
                        errors.append(f"buffer {ident:#x} owned twice")
                        return
                    owners.add(ident)
                buf.fill(seed)  # touch while owned
                if not np.all(buf == seed):
                    errors.append("buffer mutated by another owner")
                    return
                with owners_lock:
                    owners.remove(ident)
                pool.give(buf)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert pool.takes == 8 * 200

    def test_blocked_backend_under_threaded_engine_calls(self):
        import threading

        engine = MatmulEngine()
        cfg = AbftConfig(backend="blocked", gemm_tile=32)
        rng = np.random.default_rng(11)
        a = rng.uniform(-1, 1, (96, 64))
        b = rng.uniform(-1, 1, (64, 80))
        expected = engine.matmul(a, b, config=cfg).c_fc.tobytes()
        failures: list[str] = []

        def caller() -> None:
            for _ in range(5):
                result = engine.matmul(a, b, config=cfg)
                if result.c_fc.tobytes() != expected:
                    failures.append("bytes diverged under concurrency")

        threads = [threading.Thread(target=caller) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []
