"""The per-plan workspace pool: recycling rules and handle safety."""

from __future__ import annotations

import numpy as np

from repro.engine import AbftConfig, MatmulEngine
from repro.engine.plan import WorkspacePool


class TestWorkspacePool:
    def test_take_give_reuses_buffer(self):
        pool = WorkspacePool()
        buf = pool.take((8, 8))
        assert buf.shape == (8, 8) and buf.dtype == np.float64
        pool.give(buf)
        again = pool.take((8, 8))
        assert again is buf
        assert pool.takes == 2 and pool.hits == 1

    def test_keyed_by_shape_and_dtype(self):
        pool = WorkspacePool()
        pool.give(pool.take((4, 4), np.float64))
        assert pool.take((4, 4), np.float32).dtype == np.float32
        assert pool.take((4, 5)).shape == (4, 5)
        assert pool.hits == 0  # neither request matched the retained buffer

    def test_rejects_views(self):
        pool = WorkspacePool()
        backing = np.empty((8, 8))
        pool.give(backing[2:])  # a view must never resurface
        taken = pool.take((6, 8))
        assert not np.shares_memory(taken, backing)
        assert pool.hits == 0

    def test_rejects_non_contiguous(self):
        pool = WorkspacePool()
        fortran = np.asfortranarray(np.empty((8, 4)))
        pool.give(fortran)
        taken = pool.take((8, 4))
        assert taken is not fortran
        assert taken.flags.c_contiguous

    def test_rejects_oversized_buffers(self):
        pool = WorkspacePool(byte_limit=1024)
        big = np.empty((32, 32))  # 8 KiB > the 1 KiB limit
        pool.give(big)
        assert pool.take((32, 32)) is not big

    def test_bucket_capped_per_key(self):
        pool = WorkspacePool(limit_per_key=2)
        bufs = [np.empty((4, 4)) for _ in range(5)]
        for buf in bufs:
            pool.give(buf)
        retained = {id(pool.take((4, 4))) for _ in range(5)}
        assert len(retained & {id(b) for b in bufs}) == 2

    def test_give_none_is_noop(self):
        WorkspacePool().give(None)


class TestHandleSafety:
    """User-visible arrays must never be recycled into the pool."""

    def test_encode_handles_survive_warm_calls(self, small_pair, rng):
        a, b = small_pair
        engine = MatmulEngine(AbftConfig(block_size=32, p=2))
        handle = engine.encode(a, side="a")
        snapshot = handle.array.copy()
        for _ in range(6):  # enough warm calls to cycle every pool bucket
            engine.matmul(handle, rng.uniform(-1, 1, b.shape))
        assert np.array_equal(handle.array, snapshot)

    def test_results_survive_subsequent_calls(self, small_pair, rng):
        a, b = small_pair
        engine = MatmulEngine(AbftConfig(block_size=32, p=2))
        first = engine.matmul(a, b)
        c, c_fc = first.c.copy(), first.c_fc.copy()
        col_disc = first.report.column_disc.copy()
        for _ in range(6):
            engine.matmul(rng.uniform(-1, 1, a.shape), rng.uniform(-1, 1, b.shape))
        assert np.array_equal(first.c, c)
        assert np.array_equal(first.c_fc, c_fc)
        assert np.array_equal(first.report.column_disc, col_disc)

    def test_fused_batch_results_survive(self, small_pair, rng):
        a, b = small_pair
        engine = MatmulEngine(AbftConfig(block_size=32, p=2))
        bs = [rng.uniform(-1, 1, b.shape) for _ in range(4)]
        results = engine.matmul_fused(a, bs)
        snapshots = [(r.c.copy(), r.c_fc.copy()) for r in results]
        engine.matmul_fused(a, [rng.uniform(-1, 1, b.shape) for _ in range(4)])
        for r, (c, c_fc) in zip(results, snapshots):
            assert np.array_equal(r.c, c)
            assert np.array_equal(r.c_fc, c_fc)

    def test_warm_calls_hit_the_pool(self, small_pair):
        a, b = small_pair
        engine = MatmulEngine(AbftConfig(block_size=32, p=2))
        engine.matmul(a, b)
        plan = next(iter(engine._plans._plans.values()))
        before = plan.pool.hits
        engine.matmul(a, b)
        assert plan.pool.hits > before
