"""EngineStats-from-registry equivalence and concurrent-metering safety."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abft.checking import check_partitioned
from repro.abft.encoding import (
    encode_partitioned_columns,
    encode_partitioned_rows,
    pad_to_block_multiple,
    strip_encoding,
)
from repro.abft.providers import AABFTEpsilonProvider
from repro.bounds.probabilistic import ProbabilisticBound
from repro.bounds.upper_bound import top_p_of_columns, top_p_of_rows
from repro.engine import AbftConfig, ExecutionPolicy, MatmulEngine
from repro.fp.constants import format_for_dtype
from repro.telemetry import MetricsRegistry


@pytest.fixture
def config() -> AbftConfig:
    return AbftConfig(block_size=32, p=2)


def reference_matmul(a, b, block_size=32, p=2):
    """The pre-engine per-call path, re-derived from the primitives."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    a_pad, (rows_added, _) = pad_to_block_multiple(a, block_size, axis=0)
    b_pad, (_, cols_added) = pad_to_block_multiple(b, block_size, axis=1)
    a_cc, row_layout = encode_partitioned_columns(a_pad, block_size)
    b_rc, col_layout = encode_partitioned_rows(b_pad, block_size)
    c_fc = a_cc @ b_rc
    provider = AABFTEpsilonProvider(
        scheme=ProbabilisticBound(
            omega=3.0, fma=False, fmt=format_for_dtype(c_fc.dtype)
        ),
        row_tops=top_p_of_rows(a_cc, p),
        col_tops=top_p_of_columns(b_rc, p),
        row_layout=row_layout,
        col_layout=col_layout,
        inner_dim=a_pad.shape[1],
    )
    report = check_partitioned(c_fc, row_layout, col_layout, provider)
    return strip_encoding(c_fc, row_layout, col_layout, rows_added, cols_added), report


class TestStatsEquivalence:
    """stats() derived from registry metrics matches the old direct counters."""

    def test_counts_match_scripted_workload(self, config, small_pair):
        a, b = small_pair
        engine = MatmulEngine(config, max_workers=1)
        engine.matmul(a, b)
        engine.matmul(a, b)
        handle = engine.encode(a, side="a")
        engine.matmul(handle, b)
        engine.execute_batch(
            [(a, b)] * 3, policy=ExecutionPolicy(mode="serial")
        )

        stats = engine.stats()
        assert stats.calls == 6
        assert stats.batched_calls == 1
        # one explicit handle reuse + six batch reuses: the serial batch
        # dedups *both* repeated operands (`a` and `b` each appear three
        # times), pre-encodes each once and reuses it per pair.
        assert stats.encode_reuses == 7
        assert stats.detections == 0
        assert stats.plan_misses == 1
        assert stats.plan_hits == 5

    def test_seconds_are_registry_counters_bitwise(self, config, small_pair):
        a, b = small_pair
        engine = MatmulEngine(config, max_workers=1)
        for _ in range(3):
            engine.matmul(a, b)
        stats = engine.stats()
        reg = engine.registry
        stage = reg.counter("abft_engine_stage_seconds_total", labelnames=("stage",))
        assert stats.encode_seconds == stage.labels(stage="encode").get()
        assert stats.multiply_seconds == stage.labels(stage="multiply").get()
        assert stats.check_seconds == stage.labels(stage="check").get()
        assert stats.total_seconds == pytest.approx(
            stats.encode_seconds + stats.multiply_seconds + stats.check_seconds
        )
        hist = reg.histogram("abft_engine_stage_seconds", labelnames=("stage",))
        assert hist.labels(stage="multiply").count == 3

    def test_results_bitwise_identical_to_reference(self, config, small_pair):
        a, b = small_pair
        engine = MatmulEngine(config, max_workers=1)
        result = engine.matmul(a, b)
        ref_c, ref_report = reference_matmul(a, b)
        assert np.array_equal(result.c, ref_c)
        assert result.detected == ref_report.error_detected

    def test_reset_stats_zeroes_registry_metrics(self, config, small_pair):
        a, b = small_pair
        engine = MatmulEngine(config, max_workers=1)
        engine.matmul(a, b)
        engine.reset_stats()
        stats = engine.stats()
        assert stats.calls == 0
        assert stats.encode_seconds == 0.0
        assert stats.plan_hits == 0
        hist = engine.registry.histogram(
            "abft_engine_stage_seconds", labelnames=("stage",)
        )
        assert hist.labels(stage="encode").count == 0

    def test_stats_refreshes_plan_gauges(self, config, small_pair):
        a, b = small_pair
        engine = MatmulEngine(config, max_workers=1)
        engine.matmul(a, b)
        engine.matmul(a, b)
        engine.stats()
        gauge = engine.registry.gauge(
            "abft_engine_plan_cache", labelnames=("event",)
        )
        assert gauge.labels(event="hit").get() == 1
        assert gauge.labels(event="miss").get() == 1
        assert gauge.labels(event="cached").get() == 1


class TestSharedRegistry:
    def test_engine_accepts_external_registry(self, config, small_pair):
        a, b = small_pair
        reg = MetricsRegistry()
        engine = MatmulEngine(config, max_workers=1, registry=reg)
        engine.matmul(a, b)
        assert engine.registry is reg
        snap = reg.snapshot()
        assert snap["abft_engine_calls_total"]["values"][0]["value"] == 1.0

    def test_prometheus_scrape_agrees_with_stats(self, config, small_pair):
        a, b = small_pair
        reg = MetricsRegistry()
        engine = MatmulEngine(config, max_workers=1, registry=reg)
        engine.matmul(a, b)
        engine.matmul(a, b)
        assert engine.stats().calls == 2
        assert "abft_engine_calls_total 2.0" in reg.prometheus_text()


class TestConcurrentMetering:
    """Registry counters stay exact under threaded serial batches."""

    def test_concurrent_serial_batch(self, config, rng):
        pairs = 12
        a_items = [rng.uniform(-1, 1, (64, 64)) for _ in range(pairs)]
        b_items = [rng.uniform(-1, 1, (64, 64)) for _ in range(pairs)]
        serial = ExecutionPolicy(mode="serial")

        threaded = MatmulEngine(config, max_workers=4)
        results = threaded.execute_batch(
            list(zip(a_items, b_items)), policy=serial
        )
        stats = threaded.stats()
        assert stats.calls == pairs
        assert stats.batched_calls == 1
        assert stats.detections == 0
        hist = threaded.registry.histogram(
            "abft_engine_stage_seconds", labelnames=("stage",)
        )
        assert hist.labels(stage="check").count == pairs

        sequential = MatmulEngine(config, max_workers=1)
        expected = sequential.execute_batch(
            list(zip(a_items, b_items)), policy=serial
        )
        for res, exp in zip(results, expected):
            assert np.array_equal(res.c, exp.c)
