"""AbftConfig.dtype validation and the engine's mixed-precision contract."""

import numpy as np
import pytest

from repro.engine import AbftConfig, MatmulEngine
from repro.engine.config import DTYPE_NAMES
from repro.errors import ConfigurationError
from repro.fp.constants import bfloat16_dtype


@pytest.fixture(scope="module")
def fp16_operands():
    rng = np.random.default_rng(11)
    a = (rng.uniform(-1, 1, (48, 32)) * 0.5).astype(np.float16)
    b = (rng.uniform(-1, 1, (32, 24)) * 0.5).astype(np.float16)
    return a, b


class TestConfigDtypeField:
    def test_default_is_unset(self):
        assert AbftConfig().dtype is None

    @pytest.mark.parametrize("name", ["float32", "float64"])
    def test_full_precision_names_accepted_with_any_scheme(self, name):
        assert AbftConfig(dtype=name).dtype == name
        assert AbftConfig(dtype=name, scheme="sea").dtype == name

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown dtype"):
            AbftConfig(dtype="float8")

    def test_error_lists_the_accepted_names(self):
        with pytest.raises(ConfigurationError, match="float16"):
            AbftConfig(dtype="int32")
        assert DTYPE_NAMES == ("float16", "bfloat16", "float32", "float64")

    def test_low_precision_requires_adaptive_or_fixed_scheme(self):
        # The aabft/sea bounds model compute rounding only; fp16 storage
        # would false-positive on every clean run under them.
        with pytest.raises(ConfigurationError, match="quantisation noise"):
            AbftConfig(dtype="float16")
        with pytest.raises(ConfigurationError, match="quantisation noise"):
            AbftConfig(dtype="float16", scheme="sea")

    def test_low_precision_with_adaptive_scheme_accepted(self):
        cfg = AbftConfig(dtype="float16", scheme="adaptive")
        assert cfg.dtype == "float16"
        assert cfg.scheme == "adaptive"

    def test_low_precision_with_fixed_scheme_accepted(self):
        cfg = AbftConfig(dtype="float16", scheme="fixed", fixed_epsilon=0.5)
        assert cfg.dtype == "float16"

    @pytest.mark.skipif(
        bfloat16_dtype() is not None, reason="ml_dtypes installed"
    )
    def test_bfloat16_without_ml_dtypes_names_the_missing_dependency(self):
        with pytest.raises(ConfigurationError, match="ml_dtypes"):
            AbftConfig(dtype="bfloat16", scheme="adaptive")

    @pytest.mark.skipif(
        bfloat16_dtype() is None, reason="ml_dtypes not installed"
    )
    def test_bfloat16_with_ml_dtypes_accepted(self):
        assert AbftConfig(dtype="bfloat16", scheme="adaptive").dtype == (
            "bfloat16"
        )

    def test_describe_mentions_dtype(self):
        cfg = AbftConfig(dtype="float16", scheme="adaptive")
        assert "dtype=float16" in cfg.describe()

    def test_dtype_participates_in_equality(self):
        plain = AbftConfig(scheme="adaptive")
        fp16 = AbftConfig(scheme="adaptive", dtype="float16")
        assert plain != fp16
        assert fp16 == AbftConfig(scheme="adaptive", dtype="float16")


class TestEngineMixedPrecision:
    def test_fp16_operands_without_config_dtype_are_refused(self, fp16_operands):
        a, b = fp16_operands
        with MatmulEngine(AbftConfig(block_size=16)) as engine:
            with pytest.raises(ConfigurationError, match="silently upcast"):
                engine.matmul(a, b)

    def test_refusal_names_the_fix(self, fp16_operands):
        a, b = fp16_operands
        with MatmulEngine(AbftConfig(block_size=16)) as engine:
            with pytest.raises(ConfigurationError, match="adaptive"):
                engine.matmul(a, b)

    def test_fp16_with_adaptive_config_runs_clean(self, fp16_operands):
        a, b = fp16_operands
        cfg = AbftConfig(block_size=16, scheme="adaptive", dtype="float16")
        with MatmulEngine(cfg) as engine:
            result = engine.matmul(a, b)
        assert not result.report.error_detected
        assert result.c.shape == (48, 24)
        # Results quantise back to the declared storage dtype.
        assert result.c.dtype == np.float16

    def test_fp16_result_matches_fp32_reference_within_storage_noise(
        self, fp16_operands
    ):
        a, b = fp16_operands
        cfg = AbftConfig(block_size=16, scheme="adaptive", dtype="float16")
        with MatmulEngine(cfg) as engine:
            result = engine.matmul(a, b)
        ref = a.astype(np.float32) @ b.astype(np.float32)
        scale = float(np.abs(ref).max())
        assert float(
            np.abs(result.c.astype(np.float32) - ref).max()
        ) <= 2.0 ** -10 * max(scale, 1.0) * 4

    def test_conflicting_operand_dtype_rejected(self, fp16_operands):
        a, _ = fp16_operands
        cfg = AbftConfig(block_size=16, scheme="adaptive", dtype="float32")
        b32 = np.ones((32, 24), dtype=np.float32)
        with MatmulEngine(cfg) as engine:
            with pytest.raises(ConfigurationError, match="conflicts"):
                engine.matmul(a, b32)
