"""The engine's chaos/test-injection seam (``set_chaos_hook``)."""

import numpy as np
import pytest

from repro.engine import ExecutionPolicy, MatmulEngine
from repro.errors import ConfigurationError


@pytest.fixture
def operands():
    rng = np.random.default_rng(3)
    a = rng.uniform(-1, 1, (64, 32))
    bs = [rng.uniform(-1, 1, (32, 8)) for _ in range(4)]
    return a, bs


class TestHookContract:
    def test_non_callable_hook_rejected(self):
        engine = MatmulEngine()
        with pytest.raises(ConfigurationError, match="callable"):
            engine.set_chaos_hook("not-a-hook")

    def test_none_clears_the_hook(self, operands):
        a, bs = operands
        engine = MatmulEngine()
        events = []
        engine.set_chaos_hook(lambda event, **kw: events.append(event))
        engine.matmul(a, bs[0])
        assert events
        engine.set_chaos_hook(None)
        events.clear()
        engine.matmul(a, bs[1])
        assert not events


class TestStageEvents:
    @pytest.mark.parametrize("mode", ["serial", "fused", "pipelined"])
    def test_stage_events_fire_on_every_path(self, operands, mode):
        a, bs = operands
        engine = MatmulEngine()
        events = []
        engine.set_chaos_hook(lambda event, **kw: events.append(event))
        engine.execute_batch(
            [(a, b) for b in bs], policy=ExecutionPolicy(mode=mode)
        )
        seen = set(events)
        assert {"encode", "multiply", "check"} <= seen, (mode, seen)
        assert {"dispatch", "result"} <= seen, (mode, seen)

    def test_results_bitwise_identical_with_passive_hook(self, operands):
        a, bs = operands
        reference = [MatmulEngine().matmul(a, b).c for b in bs]
        engine = MatmulEngine()
        engine.set_chaos_hook(lambda event, **kw: None)
        for b, ref in zip(bs, reference):
            assert np.array_equal(engine.matmul(a, b).c, ref)


class TestDispatchEvents:
    def test_dispatch_raise_walks_the_never_silent_fallback(self, operands):
        a, bs = operands

        class Boom(RuntimeError):
            pass

        def hook(event, **kw):
            if event == "dispatch" and kw.get("backend") == "blocked":
                raise Boom("injected")

        from repro.engine import AbftConfig

        engine = MatmulEngine(AbftConfig(backend="blocked"))
        engine.set_chaos_hook(hook)
        result = engine.matmul(a, bs[0])
        assert result.backend == "numpy"
        assert result.backend_fallback is not None
        assert not result.detected
        assert np.allclose(result.c, a @ bs[0])

    def test_result_event_carries_the_backend(self, operands):
        a, bs = operands
        engine = MatmulEngine()
        backends = []

        def hook(event, **kw):
            if event == "result":
                backends.append(kw.get("backend"))

        engine.set_chaos_hook(hook)
        engine.matmul(a, bs[0])
        assert backends and all(isinstance(b, str) for b in backends)


class TestResultMutation:
    def test_high_mantissa_flip_is_detected(self, operands):
        a, bs = operands

        def flip(event, **kw):
            if event == "result" and kw.get("c_fc") is not None:
                view = kw["c_fc"].reshape(-1).view(np.uint64)
                view[0] ^= np.uint64(1) << np.uint64(50)

        engine = MatmulEngine()
        engine.set_chaos_hook(flip)
        result = engine.matmul(a, bs[0])
        assert result.detected
