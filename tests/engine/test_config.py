"""AbftConfig: validation, immutability, hashing, the deprecation shims."""

import numpy as np
import pytest

from repro.engine import SCHEMES, AbftConfig
from repro.errors import BoundSchemeError, ConfigurationError


class TestValidation:
    def test_defaults_match_paper(self):
        cfg = AbftConfig()
        assert cfg.block_size == 64
        assert cfg.p == 2
        assert cfg.omega == 3.0
        assert cfg.fma is False
        assert cfg.epsilon_floor == 0.0
        assert cfg.scheme == "aabft"

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            AbftConfig(scheme="huang")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"block_size": 0},
            {"p": 0},
            {"omega": 0.0},
            {"omega": float("inf")},
            {"epsilon_floor": -1.0},
        ],
    )
    def test_bad_numeric_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AbftConfig(**kwargs)

    def test_epsilon_floor_message_names_the_field(self):
        with pytest.raises(ValueError, match="epsilon_floor"):
            AbftConfig(epsilon_floor=-0.5)

    def test_fixed_scheme_requires_epsilon(self):
        with pytest.raises(ConfigurationError, match="fixed_epsilon"):
            AbftConfig(scheme="fixed")

    def test_fixed_epsilon_validated_eagerly(self):
        with pytest.raises(BoundSchemeError):
            AbftConfig(scheme="fixed", fixed_epsilon=-1.0)

    def test_all_listed_schemes_constructible(self):
        for scheme in SCHEMES:
            kwargs = {"fixed_epsilon": 1e-8} if scheme == "fixed" else {}
            assert AbftConfig(scheme=scheme, **kwargs).scheme == scheme


class TestValueSemantics:
    def test_frozen(self):
        cfg = AbftConfig()
        with pytest.raises(AttributeError):
            cfg.block_size = 32

    def test_equal_configs_hash_equal(self):
        assert AbftConfig(block_size=32) == AbftConfig(block_size=32)
        assert hash(AbftConfig(block_size=32)) == hash(AbftConfig(block_size=32))
        assert AbftConfig(block_size=32) != AbftConfig(block_size=16)

    def test_replace_revalidates(self):
        cfg = AbftConfig()
        assert cfg.replace(block_size=32).block_size == 32
        assert cfg.block_size == 64  # original untouched
        with pytest.raises(ValueError):
            cfg.replace(p=0)

    def test_describe_mentions_scheme(self):
        assert "aabft" in AbftConfig().describe()
        assert "epsilon" in AbftConfig(scheme="fixed", fixed_epsilon=1e-6).describe()


class TestDeprecationShims:
    def test_positional_tuning_args_warn(self):
        rng = np.random.default_rng(0)
        a = rng.uniform(-1, 1, (32, 32))
        from repro.abft import aabft_matmul

        with pytest.warns(DeprecationWarning, match="positionally"):
            result = aabft_matmul(a, a, 16)
        assert result.row_layout.block_size == 16

    def test_keyword_call_does_not_warn(self):
        import warnings

        rng = np.random.default_rng(0)
        a = rng.uniform(-1, 1, (32, 32))
        from repro.abft import aabft_matmul

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            aabft_matmul(a, a, block_size=16)

    def test_config_and_kwarg_override(self):
        rng = np.random.default_rng(1)
        a = rng.uniform(-1, 1, (32, 32))
        from repro.abft import aabft_matmul

        cfg = AbftConfig(block_size=32, omega=5.0)
        result = aabft_matmul(a, a, config=cfg, block_size=16)
        assert result.row_layout.block_size == 16
        assert result.provider.scheme.omega == 5.0

    def test_fixed_requires_epsilon_somewhere(self):
        rng = np.random.default_rng(2)
        a = rng.uniform(-1, 1, (16, 16))
        from repro.abft import fixed_abft_matmul

        with pytest.raises(TypeError, match="epsilon"):
            fixed_abft_matmul(a, a)
        cfg = AbftConfig(scheme="fixed", fixed_epsilon=1e-6, block_size=16)
        result = fixed_abft_matmul(a, a, config=cfg)
        assert result.provider.epsilon_value == 1e-6
