"""ProtectionPlanner: intensity rungs, coverage upgrades, per-layer configs."""

import pytest

from repro.engine import AbftConfig
from repro.errors import ConfigurationError
from repro.models import (
    PROTECTION_RUNGS,
    LayerSpec,
    ModelSpec,
    ProtectionPlanner,
    attention,
    mlp,
)
from repro.perfmodel import arithmetic_intensity


def wide_mlp():
    """fc layers land above the full threshold, the head far below it."""
    return mlp(
        name="wide", batch=256, d_in=512, hidden=512, depth=3, d_out=8
    )


class TestRungSelection:
    def test_rung_inventory_locked(self):
        assert PROTECTION_RUNGS == ("full", "sea", "unchecked")

    def test_thresholds_pick_rungs_from_intensity(self):
        planner = ProtectionPlanner(
            coverage_target=0.0, full_intensity=48.0, sea_intensity=16.0
        )
        plan = planner.plan(wide_mlp())
        fc1 = plan.assignment("fc1")
        head = plan.assignment("head")
        assert fc1.intensity >= 48.0
        assert fc1.rung == "full"
        assert fc1.scheme == "aabft"
        assert head.intensity < 16.0
        assert head.rung == "unchecked"
        assert head.scheme is None
        assert head.config is None

    def test_intensity_matches_the_public_helper(self):
        model = wide_mlp()
        plan = ProtectionPlanner(coverage_target=0.0).plan(model)
        layer = model.layer("fc1")
        assert plan.assignment("fc1").intensity == arithmetic_intensity(
            model.batch, layer.d_out, layer.d_in, dtype=layer.dtype
        )

    def test_sea_band(self):
        # batch 64 square fp32 layers: ai = 2*64*32*32 / ((64*32)*2 +
        # 32*32)*4 = 131072 / 5120*4 ... pick sizes inside [16, 48).
        model = ModelSpec("m", 96, (LayerSpec("fc", 96, 96),))
        ai = arithmetic_intensity(96, 96, 96, dtype="float32")
        assert 16.0 <= ai < 48.0
        plan = ProtectionPlanner(coverage_target=0.0).plan(model)
        assert plan.assignment("fc").rung == "sea"
        assert plan.assignment("fc").scheme == "sea"


class TestCoverageConstraint:
    def test_upgrades_until_target_met(self):
        model = wide_mlp()
        relaxed = ProtectionPlanner(coverage_target=0.0).plan(model)
        assert relaxed.assignment("head").rung == "unchecked"
        strict = ProtectionPlanner(coverage_target=1.0).plan(model)
        head = strict.assignment("head")
        assert head.rung == "sea"
        assert head.upgraded
        assert strict.coverage == 1.0
        assert strict.meets_target

    def test_upgraded_flag_only_on_promoted_layers(self):
        plan = ProtectionPlanner(coverage_target=1.0).plan(wide_mlp())
        assert not plan.assignment("fc1").upgraded

    def test_impossible_target_reported_not_silently_met(self):
        # All layers unchecked by threshold and upgrades forbidden by an
        # empty candidate set can't happen (every unchecked layer is a
        # candidate) — but a plan's meets_target must reflect reality.
        plan = ProtectionPlanner(
            coverage_target=0.0,
            full_intensity=float("inf"),
            sea_intensity=float("inf"),
        ).plan(wide_mlp())
        assert plan.coverage == 0.0
        assert plan.meets_target
        assert not plan.mixed

    def test_all_full_planner_trick(self):
        plan = ProtectionPlanner(
            coverage_target=1.0, full_intensity=0.0, sea_intensity=0.0
        ).plan(wide_mlp())
        assert all(a.rung == "full" for a in plan.assignments)
        assert plan.coverage == 1.0


class TestLowPrecisionLayers:
    def test_protected_rungs_map_to_adaptive_scheme(self):
        model = attention(name="a16", batch=64, d_model=128, dtype="float16")
        plan = ProtectionPlanner(coverage_target=1.0).plan(model)
        for a in plan.assignments:
            assert a.protected
            assert a.scheme == "adaptive"
            assert a.config.scheme == "adaptive"
            assert a.config.dtype == "float16"

    def test_fp16_layers_score_double_intensity(self):
        fp32 = attention(name="a32", batch=64, d_model=128)
        fp16 = attention(name="a16", batch=64, d_model=128, dtype="float16")
        plan32 = ProtectionPlanner(coverage_target=0.0).plan(fp32)
        plan16 = ProtectionPlanner(coverage_target=0.0).plan(fp16)
        assert plan16.assignment("wq").intensity == pytest.approx(
            2.0 * plan32.assignment("wq").intensity
        )


class TestPlanObject:
    def test_config_carries_base_tuning(self):
        base = AbftConfig(block_size=16, p=3)
        plan = ProtectionPlanner(base, coverage_target=1.0).plan(wide_mlp())
        cfg = plan.assignment("fc1").config
        assert cfg.block_size == 16
        assert cfg.p == 3

    def test_unknown_layer_lookup_raises(self):
        plan = ProtectionPlanner().plan(wide_mlp())
        with pytest.raises(ConfigurationError, match="no layer"):
            plan.assignment("missing")

    def test_to_dict_and_describe(self):
        plan = ProtectionPlanner().plan(wide_mlp())
        data = plan.to_dict()
        assert data["model"] == "wide"
        assert len(data["assignments"]) == 3
        assert {"layer", "rung", "scheme", "intensity"} <= set(
            data["assignments"][0]
        )
        text = plan.describe()
        assert "wide" in text
        assert "coverage" in text


class TestPlannerValidation:
    def test_bad_base_config_rejected(self):
        with pytest.raises(ConfigurationError, match="AbftConfig"):
            ProtectionPlanner({"block_size": 32})

    @pytest.mark.parametrize("target", [-0.1, 1.1, float("nan")])
    def test_bad_coverage_target_rejected(self, target):
        with pytest.raises(ConfigurationError, match="coverage_target"):
            ProtectionPlanner(coverage_target=target)

    def test_inverted_thresholds_rejected(self):
        with pytest.raises(ConfigurationError, match="sea_intensity"):
            ProtectionPlanner(full_intensity=16.0, sea_intensity=48.0)
