"""Property-based mixed-precision fault suite (satellite of the A-ABFT
low-precision work): across hundreds of random fp16 GEMM shapes the
variance-adaptive threshold must (a) stay silent on fault-free runs —
the V-ABFT zero-false-positive calibration — and (b) flag a critical
mantissa/exponent bit flip injected into the stored result."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abft.checking import check_partitioned
from repro.engine import AbftConfig, MatmulEngine
from repro.fp.bits import flip_bit
from repro.fp.constants import bfloat16_dtype, format_for_dtype
from repro.telemetry import MetricsRegistry

#: Small block so tiny shapes still partition into several blocks.
CFG = AbftConfig(block_size=8, p=2, scheme="adaptive", dtype="float16")

_ENGINE = None


def engine() -> MatmulEngine:
    # Module-level warm engine: plan caches persist across hypothesis
    # examples, keeping 200+ engine round-trips fast.
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = MatmulEngine(CFG, registry=MetricsRegistry())
    return _ENGINE


@pytest.fixture(scope="module", autouse=True)
def _shutdown_engine():
    yield
    global _ENGINE
    if _ENGINE is not None:
        _ENGINE.close()
        _ENGINE = None


shapes = st.tuples(
    st.integers(min_value=4, max_value=40),   # m
    st.integers(min_value=4, max_value=40),   # k
    st.integers(min_value=4, max_value=24),   # n
)


def make_operands(m, k, n, seed):
    rng = np.random.default_rng(seed)
    a = (rng.standard_normal((m, k)) / np.sqrt(k)).astype(np.float16)
    b = (rng.standard_normal((k, n)) / np.sqrt(k)).astype(np.float16)
    return a, b


@settings(max_examples=220, deadline=None)
@given(shape=shapes, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_fp16_fault_free_runs_are_clean_and_critical_flips_detected(
    shape, seed
):
    m, k, n = shape
    a, b = make_operands(m, k, n, seed)
    result = engine().matmul(a, b)

    # (a) Fault-free: the adaptive tolerance absorbs the storage
    # quantisation noise — any detection here is a calibration bug.
    assert not result.report.error_detected, (
        f"false positive on clean fp16 run, shape {shape}"
    )

    # (b) Critical flip: corrupt the largest-magnitude data element of the
    # stored result by an exponent bit (x16 or /16 — decisively outside
    # the adaptive tolerance for the block maximum) and re-check.
    c_fc = result.c_fc.copy()
    flat = int(np.argmax(np.abs(result.c)))
    row, col = divmod(flat, result.c.shape[1])
    r = result.row_layout.to_encoded_index(row)
    c = result.col_layout.to_encoded_index(col)
    fmt = format_for_dtype(c_fc.dtype)
    c_fc[r, c] = flip_bit(c_fc[r, c], fmt.mantissa_bits + 2)
    report = check_partitioned(
        c_fc, result.row_layout, result.col_layout, result.provider
    )
    assert report.error_detected, (
        f"undetected exponent flip at {(row, col)}, shape {shape}"
    )


@settings(max_examples=60, deadline=None)
@given(shape=shapes, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_fp16_top_mantissa_flip_detected(shape, seed):
    # A top-mantissa flip perturbs the value by up to 50% — weaker than an
    # exponent flip but still far outside the quantisation band at the
    # block maximum.
    m, k, n = shape
    a, b = make_operands(m, k, n, seed)
    result = engine().matmul(a, b)
    c_fc = result.c_fc.copy()
    flat = int(np.argmax(np.abs(result.c)))
    row, col = divmod(flat, result.c.shape[1])
    r = result.row_layout.to_encoded_index(row)
    c = result.col_layout.to_encoded_index(col)
    fmt = format_for_dtype(c_fc.dtype)
    c_fc[r, c] = flip_bit(c_fc[r, c], fmt.mantissa_bits - 1)
    report = check_partitioned(
        c_fc, result.row_layout, result.col_layout, result.provider
    )
    assert report.error_detected


@pytest.mark.skipif(bfloat16_dtype() is None, reason="ml_dtypes not installed")
def test_bfloat16_fault_free_runs_are_clean():
    cfg = AbftConfig(block_size=8, p=2, scheme="adaptive", dtype="bfloat16")
    bf16 = bfloat16_dtype()
    rng = np.random.default_rng(5)
    a = (rng.standard_normal((24, 16)) / 4.0).astype(bf16)
    b = (rng.standard_normal((16, 12)) / 4.0).astype(bf16)
    with MatmulEngine(cfg, registry=MetricsRegistry()) as eng:
        result = eng.matmul(a, b)
    assert not result.report.error_detected
