"""ModelRunner: verified chains, encoding reuse, injection, degradation."""

import numpy as np
import pytest

from repro.engine import AbftConfig, MatmulEngine
from repro.errors import ConfigurationError
from repro.models import (
    LayerSpec,
    ModelInjection,
    ModelInputs,
    ModelRunner,
    ModelSpec,
    ProtectionPlanner,
    attention,
    mlp,
)
from repro.telemetry import MetricsRegistry

CFG = AbftConfig(block_size=16, p=2)


@pytest.fixture(scope="module")
def engine():
    with MatmulEngine(CFG, registry=MetricsRegistry()) as eng:
        yield eng


@pytest.fixture()
def runner(engine):
    return ModelRunner(engine, registry=MetricsRegistry())


def full_plan(model):
    return ProtectionPlanner(
        CFG, coverage_target=1.0, full_intensity=0.0, sea_intensity=0.0
    ).plan(model)


def counter_value(registry, name, **labels):
    family = registry._families[name]
    return family.labels(**labels).get() if labels else family.get()


class TestEndToEnd:
    def test_fp32_mlp_verifies_against_reference(self, runner):
        model = mlp(name="m", batch=16, d_in=32, hidden=32, depth=3, d_out=8)
        result = runner.run(model, full_plan(model), verify=True)
        assert result.verified is True
        assert result.max_abs_diff is not None
        assert result.max_abs_diff <= 1e-5  # fp32 summation-order noise only
        assert result.output.shape == (16, 8)
        assert not result.detected
        assert not result.degraded

    def test_fp16_attention_verifies_and_stays_clean(self, runner):
        model = attention(name="a16", batch=16, d_model=32, dtype="float16")
        result = runner.run(model, full_plan(model), verify=True)
        assert result.verified is True
        assert result.output.dtype == np.float16
        assert not result.detected  # adaptive tolerance: no false positives

    def test_verified_is_none_unless_requested(self, runner):
        model = mlp(name="m", batch=16, d_in=32, hidden=32, depth=2)
        result = runner.run(model, full_plan(model))
        assert result.verified is None
        assert result.max_abs_diff is None

    def test_padded_batch_not_divisible_by_block(self, runner):
        model = mlp(name="m", batch=30, d_in=32, hidden=32, depth=3, d_out=8)
        result = runner.run(model, full_plan(model), verify=True)
        assert result.verified is True
        assert result.output.shape == (30, 8)

    def test_unchecked_layers_recorded_never_silent(self, runner):
        model = mlp(name="m", batch=16, d_in=32, hidden=32, depth=2)
        plan = ProtectionPlanner(
            CFG,
            coverage_target=0.0,
            full_intensity=float("inf"),
            sea_intensity=float("inf"),
        ).plan(model)
        result = runner.run(model, plan, verify=True)
        assert result.verified is True
        for run in result.layers:
            assert run.rung == "unchecked"
            assert run.scheme is None
            assert not run.protected

    def test_mismatched_plan_rejected(self, runner):
        model = mlp(name="m", batch=16, d_in=32, hidden=32, depth=2)
        other = mlp(name="other", batch=16, d_in=32, hidden=32, depth=2)
        with pytest.raises(ConfigurationError, match="was built for"):
            runner.run(model, full_plan(other))

    def test_layer_run_lookup(self, runner):
        model = mlp(name="m", batch=16, d_in=32, hidden=32, depth=2)
        result = runner.run(model, full_plan(model))
        assert result.layer_run("head").planned_rung == "full"
        with pytest.raises(ConfigurationError, match="no layer"):
            result.layer_run("missing")

    def test_to_dict_shape(self, runner):
        model = mlp(name="m", batch=16, d_in=32, hidden=32, depth=2)
        data = runner.run(model, full_plan(model), verify=True).to_dict()
        assert data["model"] == "m"
        assert data["verified"] is True
        assert len(data["layers"]) == 2
        assert {"layer", "rung", "scheme", "reused_encoding"} <= set(
            data["layers"][0]
        )


class TestEncodingReuse:
    def linear_chain(self):
        # Identity activations + uniform width: every inner boundary is
        # legal for checksum propagation.
        layers = tuple(
            LayerSpec(f"l{i}", 32, 32, activation="none") for i in range(4)
        )
        return ModelSpec("chain", 32, layers)

    def test_linear_chain_reuses_encodings(self, runner):
        model = self.linear_chain()
        result = runner.run(model, full_plan(model), verify=True)
        assert result.verified is True
        assert result.reuse_count == 3  # every layer after the first
        assert not result.layers[0].reused_encoding
        assert all(run.reused_encoding for run in result.layers[1:])

    def test_reuse_counted_in_telemetry(self, engine):
        reg = MetricsRegistry()
        runner = ModelRunner(engine, registry=reg)
        model = self.linear_chain()
        runner.run(model, full_plan(model))
        assert counter_value(reg, "abft_model_encode_reuses_total") == 3.0

    def test_relu_blocks_reuse(self, runner):
        model = mlp(name="m", batch=32, d_in=32, hidden=32, depth=4, d_out=32)
        result = runner.run(model, full_plan(model), verify=True)
        assert result.verified is True
        assert result.reuse_count == 0  # relu breaks checksum linearity

    def test_fp16_blocks_reuse(self, runner):
        layers = tuple(
            LayerSpec(f"l{i}", 32, 32, dtype="float16") for i in range(3)
        )
        model = ModelSpec("chain16", 32, layers)
        result = runner.run(model, full_plan(model), verify=True)
        assert result.verified is True
        assert result.reuse_count == 0  # storage quantisation invalidates


class TestInjection:
    def test_injected_fault_detected_on_protected_layer(self, runner):
        model = mlp(name="m", batch=16, d_in=32, hidden=32, depth=3, d_out=8)
        inject = ModelInjection(layer="fc2", row=3, col=5)
        result = runner.run(model, full_plan(model), inject=inject)
        run = result.layer_run("fc2")
        assert run.injected
        assert run.detected
        assert result.detected

    def test_injected_fault_detected_on_fp16_adaptive_layer(self, runner):
        model = attention(name="a16", batch=16, d_model=32, dtype="float16")
        inject = ModelInjection(layer="wk", row=1, col=2)
        result = runner.run(model, full_plan(model), inject=inject)
        assert result.layer_run("wk").detected

    def test_unchecked_layer_never_detects(self, runner):
        model = mlp(name="m", batch=16, d_in=32, hidden=32, depth=2)
        plan = ProtectionPlanner(
            CFG,
            coverage_target=0.0,
            full_intensity=float("inf"),
            sea_intensity=float("inf"),
        ).plan(model)
        inject = ModelInjection(layer="head", row=0, col=0)
        result = runner.run(model, plan, inject=inject)
        run = result.layer_run("head")
        assert run.injected
        assert not run.detected  # the explicit coverage hole

    def test_injection_blocks_downstream_reuse(self, runner):
        layers = tuple(
            LayerSpec(f"l{i}", 32, 32, activation="none") for i in range(3)
        )
        model = ModelSpec("chain", 32, layers)
        inject = ModelInjection(layer="l0", row=0, col=0)
        result = runner.run(model, full_plan(model), inject=inject)
        assert not result.layers[1].reused_encoding

    def test_unknown_layer_rejected_eagerly(self, runner):
        model = mlp(name="m", batch=16, d_in=32, hidden=32, depth=2)
        with pytest.raises(ConfigurationError, match="no layer"):
            runner.run(
                model, full_plan(model), inject=ModelInjection(layer="nope")
            )

    def test_bad_fault_field_rejected(self):
        with pytest.raises(ConfigurationError, match="fault_field"):
            ModelInjection(layer="fc1", fault_field="parity")

    def test_injection_telemetry_labels_detection(self, engine):
        reg = MetricsRegistry()
        runner = ModelRunner(engine, registry=reg)
        model = mlp(name="m", batch=16, d_in=32, hidden=32, depth=2)
        runner.run(
            model, full_plan(model), inject=ModelInjection(layer="fc1")
        )
        assert counter_value(
            reg, "abft_model_injections_total", layer="fc1", detected="true"
        ) == 1.0


class TestDegradation:
    def test_rung_cap_degrades_and_records(self, runner):
        model = mlp(name="m", batch=16, d_in=32, hidden=32, depth=3, d_out=8)
        result = runner.run(
            model,
            full_plan(model),
            rung_cap=lambda i, a: "unchecked" if i == 1 else "full",
        )
        capped = result.layers[1]
        assert capped.rung == "unchecked"
        assert capped.planned_rung == "full"
        assert capped.degraded
        assert result.degraded
        assert not result.layers[0].degraded

    def test_cap_never_upgrades(self, runner):
        model = mlp(name="m", batch=16, d_in=32, hidden=32, depth=2)
        plan = ProtectionPlanner(
            CFG,
            coverage_target=0.0,
            full_intensity=float("inf"),
            sea_intensity=float("inf"),
        ).plan(model)
        result = runner.run(model, plan, rung_cap=lambda i, a: "full")
        assert all(run.rung == "unchecked" for run in result.layers)
        assert not result.degraded

    def test_invalid_cap_value_rejected(self, runner):
        model = mlp(name="m", batch=16, d_in=32, hidden=32, depth=2)
        with pytest.raises(ConfigurationError, match="rung_cap"):
            runner.run(
                model, full_plan(model), rung_cap=lambda i, a: "paranoid"
            )


class TestInputs:
    def test_generation_is_deterministic(self):
        model = mlp(name="m", batch=8, d_in=16, hidden=16, depth=2)
        one = ModelInputs.generate(model, seed=5)
        two = ModelInputs.generate(model, seed=5)
        assert np.array_equal(one.x, two.x)
        for w1, w2 in zip(one.weights, two.weights):
            assert np.array_equal(w1, w2)

    def test_dtypes_follow_the_layers(self):
        model = attention(name="a16", batch=8, d_model=16, dtype="float16")
        inputs = ModelInputs.generate(model)
        assert inputs.x.dtype == np.float16
        assert all(w.dtype == np.float16 for w in inputs.weights)
