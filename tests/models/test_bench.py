"""Model benchmark: baseline comparison logic and the committed baseline."""

import json
from pathlib import Path

from repro.models import compare_to_baseline, default_baseline_path
from repro.models.bench import BENCH_MODEL_KWARGS


def payload(mixed=0.010, full=0.018, coverage=0.99, target=0.85):
    return {
        "mixed_seconds": mixed,
        "full_seconds": full,
        "mixed_vs_full_ratio": mixed / full,
        "coverage": {"target": target, "mixed": coverage},
    }


class TestCompareToBaseline:
    def test_within_tolerance_passes(self):
        base = payload()
        passed, detail = compare_to_baseline(
            payload(mixed=0.011), base, tolerance=0.5
        )
        assert passed
        assert "regressed" not in detail

    def test_slower_mixed_pass_fails(self):
        base = payload()
        passed, detail = compare_to_baseline(
            payload(mixed=0.016), base, tolerance=0.5
        )
        assert not passed

    def test_regressed_ratio_fails(self):
        base = payload()
        # Mixed absolute time still cheap, but the planner advantage
        # relative to all-full collapsed.
        slow = payload(mixed=0.012, full=0.0121)
        passed, detail = compare_to_baseline(slow, base, tolerance=0.1)
        assert not passed

    def test_missed_coverage_fails(self):
        base = payload()
        passed, detail = compare_to_baseline(
            payload(coverage=0.5), base, tolerance=0.5
        )
        assert not passed


class TestCommittedBaseline:
    def test_baseline_is_committed_and_coherent(self):
        path = default_baseline_path()
        assert path.name == "BENCH_models.json"
        data = json.loads(Path(path).read_text())
        # The hard acceptance claim is enforced at baseline-write time:
        # the planner-mixed plan must beat all-full outright.
        assert data["mixed_vs_full_ratio"] < 1.0
        assert data["mixed_seconds"] < data["full_seconds"]
        assert data["unchecked_seconds"] < data["mixed_seconds"]
        assert data["coverage"]["mixed"] >= data["coverage"]["target"]
        assert data["model"]["name"] == BENCH_MODEL_KWARGS["name"]

    def test_committed_plan_is_a_real_mix(self):
        data = json.loads(Path(default_baseline_path()).read_text())
        rungs = {a["rung"] for a in data["mixed_plan"]}
        assert len(rungs) > 1
