"""Tests of the repro.models subsystem."""
