"""ModelSpec / LayerSpec: validation, chaining, JSON round-trip, builders."""

import pytest

from repro.errors import ConfigurationError
from repro.fp.constants import bfloat16_dtype
from repro.models import ACTIVATIONS, LayerSpec, ModelSpec, attention, mlp


class TestLayerSpec:
    def test_defaults(self):
        layer = LayerSpec("fc", 8, 16)
        assert layer.dtype == "float32"
        assert layer.activation == "none"
        assert not layer.is_low_precision

    def test_flops(self):
        assert LayerSpec("fc", 8, 16).flops(4) == 2.0 * 4 * 8 * 16

    def test_low_precision_flag(self):
        assert LayerSpec("fc", 8, 16, dtype="float16").is_low_precision

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            LayerSpec("", 8, 16)

    @pytest.mark.parametrize("dims", [(0, 16), (8, -2), (8, 2.5)])
    def test_bad_dims_rejected(self, dims):
        d_in, d_out = dims
        with pytest.raises(ConfigurationError, match="positive"):
            LayerSpec("fc", d_in, d_out)

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown dtype"):
            LayerSpec("fc", 8, 16, dtype="float8")

    @pytest.mark.skipif(
        bfloat16_dtype() is not None, reason="ml_dtypes installed"
    )
    def test_bfloat16_gated_on_ml_dtypes(self):
        with pytest.raises(ConfigurationError, match="ml_dtypes"):
            LayerSpec("fc", 8, 16, dtype="bfloat16")

    def test_unknown_activation_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown activation"):
            LayerSpec("fc", 8, 16, activation="swish")

    def test_activation_inventory_locked(self):
        assert ACTIVATIONS == ("none", "relu", "gelu", "tanh")


class TestModelSpec:
    def _layers(self):
        return (
            LayerSpec("fc1", 8, 16, activation="relu"),
            LayerSpec("head", 16, 4),
        )

    def test_valid_chain(self):
        model = ModelSpec("m", 4, self._layers())
        assert model.depth == 2
        assert model.d_in == 8
        assert model.d_out == 4
        assert model.total_flops() == 2.0 * 4 * 8 * 16 + 2.0 * 4 * 16 * 4

    def test_layer_lookup(self):
        model = ModelSpec("m", 4, self._layers())
        assert model.layer("head").d_out == 4
        with pytest.raises(ConfigurationError, match="no layer"):
            model.layer("missing")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            ModelSpec("", 4, self._layers())

    @pytest.mark.parametrize("batch", [0, -1, 2.5])
    def test_bad_batch_rejected(self, batch):
        with pytest.raises(ConfigurationError, match="batch"):
            ModelSpec("m", batch, self._layers())

    def test_no_layers_rejected(self):
        with pytest.raises(ConfigurationError, match="no layers"):
            ModelSpec("m", 4, ())

    def test_duplicate_layer_names_rejected(self):
        layers = (LayerSpec("fc", 8, 8), LayerSpec("fc", 8, 8))
        with pytest.raises(ConfigurationError, match="duplicate"):
            ModelSpec("m", 4, layers)

    def test_broken_chaining_rejected(self):
        layers = (LayerSpec("fc1", 8, 16), LayerSpec("fc2", 12, 4))
        with pytest.raises(ConfigurationError, match="d_in=12"):
            ModelSpec("m", 4, layers)

    def test_json_round_trip(self):
        model = mlp(
            name="rt", batch=8, d_in=16, hidden=32, depth=3, dtype="float16"
        )
        assert ModelSpec.from_json(model.to_json()) == model

    def test_specs_are_hashable(self):
        assert len({mlp(name="a"), mlp(name="a"), mlp(name="b")}) == 2


class TestBuilders:
    def test_mlp_shape(self):
        model = mlp(name="m", batch=8, d_in=16, hidden=32, depth=4, d_out=2)
        assert [layer.name for layer in model.layers] == [
            "fc1", "fc2", "fc3", "head",
        ]
        assert model.d_in == 16
        assert model.d_out == 2
        assert all(
            layer.activation == "relu" for layer in model.layers[:-1]
        )
        assert model.layers[-1].activation == "none"

    def test_mlp_defaults_head_to_hidden_width(self):
        assert mlp(hidden=96).d_out == 96

    def test_mlp_rejects_zero_depth(self):
        with pytest.raises(ConfigurationError, match="depth"):
            mlp(depth=0)

    def test_attention_shape(self):
        model = attention(name="attn", batch=8, d_model=32)
        assert [layer.name for layer in model.layers] == [
            "wq", "wk", "wv", "wo", "ffn_up", "ffn_down",
        ]
        assert model.layer("ffn_up").d_out == 4 * 32  # default expansion
        assert model.layer("ffn_up").activation == "gelu"
        assert model.d_in == model.d_out == 32

    def test_attention_dtype_propagates_to_every_layer(self):
        model = attention(d_model=32, dtype="float16")
        assert all(layer.dtype == "float16" for layer in model.layers)
