"""ModelCampaign: per-layer coverage accounting, protected vs unchecked."""

import pytest

from repro.engine import AbftConfig, MatmulEngine
from repro.errors import ConfigurationError
from repro.models import (
    ModelCampaign,
    ModelRunner,
    ProtectionPlanner,
    mlp,
)
from repro.telemetry import MetricsRegistry

CFG = AbftConfig(block_size=16, p=2)


@pytest.fixture(scope="module")
def runner():
    with MatmulEngine(CFG, registry=MetricsRegistry()) as engine:
        yield ModelRunner(engine, registry=MetricsRegistry())


def small_model():
    return mlp(name="cm", batch=16, d_in=32, hidden=32, depth=3, d_out=8)


class TestAccounting:
    def test_protected_layers_detect_unchecked_counted_separately(self, runner):
        model = small_model()
        plan = ProtectionPlanner(
            CFG, coverage_target=1.0, full_intensity=0.0, sea_intensity=0.0
        ).plan(model)
        campaign = ModelCampaign(
            runner, trials_per_layer=2, clean_trials=1, seed=3
        )
        result = campaign.run(model, plan)
        assert result.protected_trials == 2 * model.depth
        assert result.unchecked_trials == 0
        assert result.protected_coverage == 1.0
        assert result.false_positives == 0
        assert result.clean_trials == 1

    def test_unchecked_layers_are_an_explicit_hole(self, runner):
        model = small_model()
        plan = ProtectionPlanner(
            CFG,
            coverage_target=0.0,
            full_intensity=float("inf"),
            sea_intensity=float("inf"),
        ).plan(model)
        campaign = ModelCampaign(
            runner, trials_per_layer=2, clean_trials=0, seed=3
        )
        result = campaign.run(model, plan)
        assert result.protected_trials == 0
        assert result.unchecked_trials == 2 * model.depth
        # Nothing protected ran, and the hole is never averaged in.
        assert result.protected_coverage == 0.0
        for cov in result.layers:
            assert cov.detected == 0
            assert cov.coverage == 0.0

    def test_layer_lookup_and_to_dict(self, runner):
        model = small_model()
        campaign = ModelCampaign(
            runner, trials_per_layer=1, clean_trials=0, seed=3
        )
        result = campaign.run(model)
        cov = result.layer_coverage("fc1")
        assert cov.trials == 1
        with pytest.raises(ConfigurationError, match="no layer"):
            result.layer_coverage("missing")
        data = result.to_dict()
        assert data["model"] == "cm"
        assert len(data["layers"]) == model.depth
        assert {"protected_coverage", "false_positives", "clean_trials"} <= (
            set(data)
        )


class TestValidation:
    def test_zero_trials_rejected(self):
        with pytest.raises(ConfigurationError, match="trials_per_layer"):
            ModelCampaign(trials_per_layer=0)

    def test_negative_clean_trials_rejected(self):
        with pytest.raises(ConfigurationError, match="clean_trials"):
            ModelCampaign(clean_trials=-1)
