"""Scientific-application workloads + the structured-cancellation edge case."""

import numpy as np
import pytest

from repro.abft.multiply import aabft_matmul, sea_abft_matmul
from repro.bounds.probabilistic import sum_sigma_bound
from repro.workloads.applications import (
    APPLICATION_SUITES,
    graph_laplacian,
    poisson_2d,
    wishart_covariance,
)


class TestPoisson:
    def test_structure(self):
        m = poisson_2d(64)  # 8x8 grid exactly
        assert m.shape == (64, 64)
        assert np.all(np.diag(m) == 4.0)
        assert np.allclose(m, m.T)
        # Diagonally dominant => positive definite.
        assert np.all(np.linalg.eigvalsh(m) > 0)

    def test_non_square_grid_padding(self):
        m = poisson_2d(70)  # 8x8 grid + 6 identity rows
        assert m.shape == (70, 70)
        assert np.all(np.diag(m)[64:] == 1.0)
        assert np.linalg.matrix_rank(m) == 70

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_2d(0)


class TestGraphLaplacian:
    @pytest.mark.parametrize(
        "model", ["watts_strogatz", "barabasi_albert", "erdos_renyi"]
    )
    def test_laplacian_properties(self, model, rng):
        lap = graph_laplacian(96, rng, model)
        assert lap.shape == (96, 96)
        # Row sums of a Laplacian are exactly zero (integer arithmetic).
        assert np.all(lap.sum(axis=1) == 0.0)
        assert np.allclose(lap, lap.T)

    def test_unknown_model(self, rng):
        with pytest.raises(ValueError):
            graph_laplacian(16, rng, "configuration")


class TestWishart:
    def test_spd(self, rng):
        cov = wishart_covariance(48, rng)
        assert np.allclose(cov, cov.T)
        assert np.all(np.linalg.eigvalsh(cov) > 0)

    def test_oversampling_validation(self, rng):
        with pytest.raises(ValueError):
            wishart_covariance(8, rng, oversampling=0.5)


class TestProtectedMultiplicationOnApplications:
    @pytest.mark.parametrize("suite", APPLICATION_SUITES, ids=lambda s: s.name)
    def test_no_false_positives_partitioned(self, suite, rng):
        """Fault-free protected products of realistic operators must pass
        with the paper-faithful bounds (partitioned encoding)."""
        pair = suite.generate(192, rng)
        assert not aabft_matmul(pair.a, pair.b, block_size=64).detected
        assert not sea_abft_matmul(pair.a, pair.b, block_size=64).detected

    @pytest.mark.parametrize("suite", APPLICATION_SUITES, ids=lambda s: s.name)
    def test_detects_corruption(self, suite, rng):
        pair = suite.generate(128, rng)
        result = aabft_matmul(pair.a, pair.b, block_size=64)
        scale = float(np.abs(result.c).max())
        corrupted = result.c_fc.copy()
        corrupted[5, 9] += max(1e-3, 1e-6 * scale)
        from repro.abft.checking import check_partitioned

        report = check_partitioned(
            corrupted, result.row_layout, result.col_layout, result.provider
        )
        assert report.error_detected

    def test_integer_laplacian_exact_cancellation_is_benign(self, rng):
        """Full-encoding checksum rows of an (integer) Laplacian are exactly
        zero — and so is all the arithmetic, so no false positives even
        without a floor."""
        lap = graph_laplacian(128, rng)
        result = aabft_matmul(lap, lap, block_size=128)
        assert not result.detected


class TestCancellationLimitation:
    """Mean-centred (non-integer) data drives checksum vectors to ~zero:
    the paper-faithful bound collapses while reference-summation rounding
    does not — a documented limitation, fixed by the epsilon floor."""

    @pytest.fixture
    def centred_pair(self, rng):
        a = rng.uniform(-1, 1, (128, 128))
        a -= a.mean(axis=0, keepdims=True)
        b = rng.uniform(-1, 1, (128, 128))
        return a, b

    def test_paper_faithful_bound_false_positives(self, centred_pair):
        a, b = centred_pair
        result = aabft_matmul(a, b, block_size=128)
        assert result.detected  # the limitation, demonstrated
        assert all(f.axis == "column" for f in result.report.findings)

    def test_epsilon_floor_restores_correctness(self, centred_pair):
        a, b = centred_pair
        c_scale = float(np.abs(a @ b).max())
        floor = 3.0 * sum_sigma_bound(128, c_scale, 53)
        result = aabft_matmul(a, b, block_size=128, epsilon_floor=floor)
        assert not result.detected

        corrupted = result.c_fc.copy()
        corrupted[5, 9] += 1e-6
        from repro.abft.checking import check_partitioned

        report = check_partitioned(
            corrupted, result.row_layout, result.col_layout, result.provider
        )
        assert report.error_detected  # sensitivity preserved

    def test_partitioned_encoding_mitigates(self, centred_pair):
        """Block checksums of mean-centred data do not cancel (only the
        full column sums do), so the paper's partitioned setting is far
        less exposed."""
        a, b = centred_pair
        result = aabft_matmul(a, b, block_size=32)
        assert not result.detected

    def test_floor_validation(self, centred_pair):
        a, b = centred_pair
        with pytest.raises(ValueError, match="epsilon_floor"):
            aabft_matmul(a, b, block_size=32, epsilon_floor=-1.0)
