"""Workload generators: uniform ranges, Eq. 47 dynamic matrices, suites."""

import numpy as np
import pytest

from repro.workloads.dynamic import (
    dynamic_matrix,
    dynamic_pair,
    dynamic_spectrum,
    random_orthogonal,
)
from repro.workloads.generators import (
    MatrixPair,
    reciprocal_matrix,
    uniform_matrix,
    uniform_pair,
)
from repro.workloads.suites import (
    PAPER_MATRIX_SIZES,
    PAPER_SUITES,
    SUITE_DYNAMIC_K2,
    SUITE_UNIT,
    suite_by_name,
)


class TestUniform:
    def test_range_respected(self, rng):
        m = uniform_matrix(50, 60, rng, -100.0, 100.0)
        assert m.shape == (50, 60)
        assert m.min() >= -100.0
        assert m.max() <= 100.0
        assert abs(m.mean()) < 5.0

    def test_pair_shapes(self, rng):
        pair = uniform_pair(32, rng)
        assert pair.m == pair.n == pair.q == 32

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            uniform_matrix(0, 5, rng)
        with pytest.raises(ValueError):
            uniform_matrix(5, 5, rng, low=1.0, high=-1.0)

    def test_deterministic_given_seed(self):
        m1 = uniform_matrix(8, 8, np.random.default_rng(3))
        m2 = uniform_matrix(8, 8, np.random.default_rng(3))
        assert np.array_equal(m1, m2)


class TestDynamicSpectrum:
    def test_span_is_kappa(self):
        s = dynamic_spectrum(64, 256.0)
        assert s[0] == 1.0
        assert s[-1] == pytest.approx(256.0)
        assert np.all(np.diff(s) > 0)

    def test_kappa_one_is_flat(self):
        assert np.allclose(dynamic_spectrum(16, 1.0), 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            dynamic_spectrum(0, 2.0)
        with pytest.raises(ValueError):
            dynamic_spectrum(4, 0.5)


class TestRandomOrthogonal:
    def test_orthogonality(self, rng):
        q = random_orthogonal(32, rng)
        assert np.allclose(q @ q.T, np.eye(32), atol=1e-12)

    def test_haar_sign_fix_determinism(self):
        q1 = random_orthogonal(16, np.random.default_rng(4))
        q2 = random_orthogonal(16, np.random.default_rng(4))
        assert np.array_equal(q1, q2)


class TestDynamicMatrix:
    def test_gaussian_magnitude_grows_with_kappa(self, rng):
        small = dynamic_matrix(64, rng, kappa=2.0)
        large = dynamic_matrix(64, rng, kappa=256.0)
        assert np.abs(large).mean() > np.abs(small).mean()

    def test_gaussian_element_scale(self, rng):
        """Element std is sqrt(sum sigma_k^2) ~ sqrt(n * avg kappa^2xi);
        the Table IV magnitude reproduction relies on this scale."""
        n = 128
        m = dynamic_matrix(n, rng, kappa=2.0)
        sigma = dynamic_spectrum(n, 2.0)
        expected_std = np.sqrt(np.sum(sigma**2))
        assert m.std() == pytest.approx(expected_std, rel=0.2)

    def test_alpha_scales_by_powers_of_ten(self, rng):
        m0 = dynamic_matrix(32, np.random.default_rng(5), alpha=0.0)
        m2 = dynamic_matrix(32, np.random.default_rng(5), alpha=2.0)
        assert np.allclose(m2, 100.0 * m0)

    def test_orthogonal_variant_has_condition_kappa(self, rng):
        m = dynamic_matrix(48, rng, kappa=100.0, factors="orthogonal")
        assert np.linalg.cond(m) == pytest.approx(100.0, rel=1e-6)

    def test_unknown_factors(self, rng):
        with pytest.raises(ValueError, match="factors"):
            dynamic_matrix(8, rng, factors="unitary")

    def test_pair(self, rng):
        pair = dynamic_pair(16, rng, kappa=4.0)
        assert isinstance(pair, MatrixPair)
        assert not np.array_equal(pair.a, pair.b)


class TestReciprocalMatrix:
    def test_mantissas_follow_benford(self, rng):
        from repro.fp.distribution import mantissa_histogram_distance

        m = reciprocal_matrix(100, 100, rng)
        assert mantissa_histogram_distance(m) < 0.05


class TestSuites:
    def test_paper_sizes(self):
        assert PAPER_MATRIX_SIZES[0] == 512
        assert PAPER_MATRIX_SIZES[-1] == 8192
        assert len(PAPER_MATRIX_SIZES) == 9

    def test_three_bound_quality_suites(self):
        assert [s.name for s in PAPER_SUITES] == [
            "uniform_unit",
            "uniform_hundred",
            "dynamic_k2",
        ]

    def test_suite_generation(self, rng):
        pair = SUITE_UNIT.generate(32, rng)
        assert pair.a.shape == (32, 32)
        assert np.abs(pair.a).max() <= 1.0

    def test_dynamic_suite_params(self, rng):
        assert SUITE_DYNAMIC_K2.params == {"alpha": 0.0, "kappa": 2.0}

    def test_lookup(self):
        assert suite_by_name("uniform_unit") is SUITE_UNIT
        with pytest.raises(KeyError, match="available"):
            suite_by_name("gaussian")
