"""Result persistence: JSON round trips of experiment outputs."""

import pytest

from repro.analysis.io import (
    campaign_to_dict,
    dicts_to_rows,
    load_results,
    rows_to_dicts,
    save_results,
)
from repro.experiments.table1 import run_table1
from repro.faults.campaign import CampaignConfig, FaultCampaign
from repro.workloads import SUITE_UNIT


class TestRowRoundTrips:
    def test_table1(self, tmp_path):
        rows = run_table1((512, 1024))
        path = save_results(tmp_path / "t1.json", "table1", rows)
        kind, loaded = load_results(path)
        assert kind == "table1"
        assert loaded == rows

    def test_bound_quality(self, tmp_path, rng):
        from repro.experiments.bound_quality import measure_bound_quality

        rows = [measure_bound_quality(SUITE_UNIT, 128, rng, num_samples=8)]
        path = save_results(tmp_path / "bq.json", "bound_quality", rows)
        _, loaded = load_results(path)
        assert loaded == rows

    def test_figure4_enum_round_trip(self, tmp_path):
        from repro.experiments.figure4 import run_figure4

        cells = run_figure4((SUITE_UNIT,), (128,), injections_per_cell=10, seed=1)
        path = save_results(tmp_path / "f4.json", "figure4", cells)
        _, loaded = load_results(path)
        assert loaded == cells

    def test_coverage_float_keys(self, tmp_path, rng):
        from repro.experiments.coverage import measure_coverage

        rows = [measure_coverage(SUITE_UNIT, 128, rng, num_samples=8)]
        path = save_results(tmp_path / "cov.json", "coverage", rows)
        _, loaded = load_results(path)
        assert loaded == rows
        assert 3.0 in loaded[0].coverage

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown row kind"):
            rows_to_dicts("table9", [])
        with pytest.raises(ValueError, match="unknown row kind"):
            dicts_to_rows("table9", [])


class TestCampaignPersistence:
    def test_campaign_export(self, tmp_path):
        config = CampaignConfig(
            n=128, suite=SUITE_UNIT, num_injections=20, block_size=64, seed=4
        )
        result = FaultCampaign(config).run()
        path = save_results(tmp_path / "camp.json", "campaign", result)
        kind, loaded = load_results(path)
        assert kind == "campaign"
        assert loaded["config"]["suite"] == "uniform_unit"
        assert len(loaded["records"]) == 20
        assert loaded["rates"]["aabft"] == pytest.approx(
            result.detection_rate("aabft"), nan_ok=True
        )
        # Records carry the decision-relevant fields.
        record = loaded["records"][0]
        assert set(record) >= {"site", "delta", "critical", "detected"}

    def test_dict_shape(self):
        config = CampaignConfig(
            n=128, suite=SUITE_UNIT, num_injections=5, block_size=64, seed=5
        )
        result = FaultCampaign(config).run()
        d = campaign_to_dict(result)
        assert d["config"]["fault_model"] == "flip"
        assert isinstance(d["false_positive_free"], dict)


class TestVersioning:
    def test_version_mismatch_rejected(self, tmp_path):
        import json

        bad = tmp_path / "old.json"
        bad.write_text(json.dumps({"kind": "table1", "version": 0, "data": []}))
        with pytest.raises(ValueError, match="version"):
            load_results(bad)
