"""Metrics, stats helpers and table rendering."""

import math

import numpy as np
import pytest

from repro.analysis.metrics import (
    bound_tightness_ratio,
    confusion_counts,
    detection_metrics,
)
from repro.analysis.stats import (
    bootstrap_ci,
    geometric_mean,
    mean_abs,
    order_of_magnitude_gap,
)
from repro.analysis.tables import format_sci, render_table


class TestTables:
    def test_render_aligns_columns(self):
        text = render_table(["a", "bb"], [[1, 2], [333, 4]], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert len({len(l) for l in lines[1:]}) == 1

    def test_row_width_validation(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a"], [[1, 2]])

    def test_format_sci(self):
        assert format_sci(1.675e-11) == "1.68e-11"
        assert format_sci(float("nan")) == "n/a"


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean(np.array([1.0, 100.0])) == pytest.approx(10.0)

    def test_geometric_mean_validation(self):
        with pytest.raises(ValueError):
            geometric_mean(np.array([]))
        with pytest.raises(ValueError):
            geometric_mean(np.array([1.0, 0.0]))

    def test_mean_abs(self):
        assert mean_abs(np.array([-2.0, 2.0])) == 2.0

    def test_order_of_magnitude_gap(self):
        assert order_of_magnitude_gap(1e-9, 1e-11) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            order_of_magnitude_gap(-1.0, 1.0)

    def test_bootstrap_ci_contains_mean(self, rng):
        data = rng.normal(5.0, 1.0, 400)
        lo, hi = bootstrap_ci(data, rng)
        assert lo < data.mean() < hi
        assert hi - lo < 0.5

    def test_bootstrap_validation(self, rng):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]), rng)
        with pytest.raises(ValueError):
            bootstrap_ci(np.ones(3), rng, confidence=1.5)


class TestTightness:
    def test_ratio_of_constant_factor(self):
        errors = np.array([1e-14, 2e-14, 4e-14])
        bounds = 100.0 * errors
        assert bound_tightness_ratio(bounds, errors) == pytest.approx(100.0)

    def test_zero_errors_excluded(self):
        errors = np.array([0.0, 1e-14])
        bounds = np.array([1e-12, 1e-12])
        assert bound_tightness_ratio(bounds, errors) == pytest.approx(100.0)

    def test_all_zero_errors_rejected(self):
        with pytest.raises(ValueError):
            bound_tightness_ratio(np.ones(2), np.zeros(2))


class TestConfusion:
    def test_counts(self):
        deltas = np.array([1.0, 1.0, 0.01, 0.01])
        detected = np.array([True, False, True, False])
        counts = confusion_counts(deltas, detected, critical_threshold=0.1)
        assert counts == {
            "true_positive": 1,
            "false_negative": 1,
            "benign_flagged": 1,
            "benign_passed": 1,
        }


class TestDetectionMetrics:
    def test_from_campaign(self):
        from repro.faults.campaign import CampaignConfig, FaultCampaign
        from repro.workloads import SUITE_UNIT

        config = CampaignConfig(
            n=128, suite=SUITE_UNIT, num_injections=40, block_size=64, seed=21
        )
        result = FaultCampaign(config).run()
        metrics = detection_metrics(result, "aabft")
        assert metrics.total_injections == 40
        assert metrics.critical + metrics.false_negatives >= metrics.detected_critical
        assert 0.0 <= metrics.detection_rate <= 1.0
        assert metrics.detection_rate == result.detection_rate("aabft")

    def test_empty_denominator_is_nan(self):
        from repro.analysis.metrics import DetectionMetrics

        m = DetectionMetrics("x", 0, 0, 0, 0)
        assert math.isnan(m.detection_rate)
